// fcqss — baselines/lin_synthesis.hpp
// The comparison baseline from the paper's Sec. 1: B. Lin's software
// synthesis from process-based specifications (DAC'98) via an intermediate
// SAFE Petri net.  "This approach is based on the strong assumption that the
// Petri Net is safe, i.e. buffers can store at most one data unit...  it
// makes impossible to handle multirate specifications, like FFT computations
// and downsampling.  Moreover, safeness excludes the possibility to use
// source and sink transitions."
//
// This module implements the essence of that method — unfold the (finite,
// because safe) reachability graph into a state-machine program — so the
// paper's applicability comparison can be demonstrated concretely:
//   * safe nets synthesize (but the code grows with the state count),
//   * multirate nets (Fig. 2, Fig. 4) are rejected as not safe,
//   * nets with source transitions (every reactive spec) are rejected.
#ifndef FCQSS_BASELINES_LIN_SYNTHESIS_HPP
#define FCQSS_BASELINES_LIN_SYNTHESIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::baselines {

/// Why Lin-style synthesis rejected the input.
enum class lin_failure {
    none,
    /// The net has source transitions (unbounded environment input): outside
    /// the method's model.
    has_source_transitions,
    /// Not 1-bounded: some reachable marking puts 2+ tokens in a place —
    /// the multirate case the paper highlights.
    not_safe,
    /// The state space hit the exploration budget.
    state_space_too_large,
};

[[nodiscard]] std::string to_string(lin_failure f);

/// One state of the synthesized machine.
struct lin_state {
    /// (transition fired, successor state) — 0 or 1 entries means straight-
    /// line code; more means a run-time branch.
    std::vector<std::pair<pn::transition_id, std::size_t>> successors;
};

/// The synthesized state machine.
struct lin_program {
    lin_failure failure = lin_failure::none;
    std::vector<lin_state> states;

    [[nodiscard]] bool ok() const noexcept { return failure == lin_failure::none; }
    /// Code-size proxy: one dispatch per state plus one statement per edge.
    [[nodiscard]] std::size_t code_size() const;
};

struct lin_options {
    std::size_t max_states = 100000;
};

/// Runs the baseline synthesis.
[[nodiscard]] lin_program lin_synthesize(const pn::petri_net& net,
                                         const lin_options& options = {});

/// Renders the machine as C (switch over the state variable).
[[nodiscard]] std::string emit_lin_c(const pn::petri_net& net,
                                     const lin_program& program);

} // namespace fcqss::baselines

#endif // FCQSS_BASELINES_LIN_SYNTHESIS_HPP
