#include "pipeline/net_generator.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "base/error.hpp"
#include "base/prng.hpp"
#include "pn/builder.hpp"

namespace fcqss::pipeline {

const char* to_string(net_family family)
{
    switch (family) {
    case net_family::marked_graph:
        return "mg";
    case net_family::free_choice:
        return "fc";
    case net_family::choice_heavy:
        return "choice";
    case net_family::client_server:
        return "client";
    case net_family::layered_pipeline:
        return "layered";
    case net_family::bursty_multirate:
        return "bursty";
    }
    return "?";
}

namespace {

// Grows one net: layered chains below each source, every path ending in a
// sink transition so the net is consistent (and schedulable) by design.
class grower {
public:
    grower(pn::net_builder& builder, prng& rng, const generator_options& options)
        : builder_(builder), rng_(rng), options_(options)
    {
        switch (options_.family) {
        case net_family::marked_graph:
            choice_percent_ = 0;
            fork_percent_ = 30;
            break;
        case net_family::free_choice:
            choice_percent_ = options_.choice_percent;
            fork_percent_ = 20;
            break;
        case net_family::choice_heavy:
            choice_percent_ = 70;
            fork_percent_ = 10;
            break;
        case net_family::client_server:
        case net_family::layered_pipeline:
        case net_family::bursty_multirate:
            // The production-shaped families are built by dedicated
            // builders below; the grower only serves defect injection.
            choice_percent_ = 0;
            fork_percent_ = 0;
            break;
        }
    }

    void grow(pn::transition_id from, int depth_left)
    {
        if (depth_left <= 0) {
            return; // `from` stays a sink transition
        }
        const auto roll = static_cast<int>(rng_.below(100));
        if (roll < choice_percent_) {
            grow_choice(from, depth_left);
        } else if (roll < choice_percent_ + fork_percent_) {
            grow_fork_join(from, depth_left);
        } else {
            grow_chain(from, depth_left);
        }
    }

    /// Splices a free-choice violation into the finished structure: a fresh
    /// transition consuming from both a choice place and a private place, so
    /// one consumer of the choice no longer has a singleton preset.
    void inject_defect()
    {
        pn::place_id choice = first_choice_;
        if (!choice.valid()) {
            // Families without choices (marked graphs): manufacture one.
            const auto src = builder_.add_transition(fresh("t_defect_src"));
            extra_sources_.push_back(src);
            choice = builder_.add_place(fresh("c_defect"));
            builder_.add_arc(src, choice);
            const auto alt = builder_.add_transition(fresh("t_defect_alt"));
            builder_.add_arc(choice, alt);
        }
        const auto env = builder_.add_transition(fresh("t_defect_env"));
        extra_sources_.push_back(env);
        const auto gate = builder_.add_place(fresh("p_defect_gate"));
        builder_.add_arc(env, gate);
        const auto join = builder_.add_transition(fresh("t_defect_join"));
        builder_.add_arc(gate, join);
        builder_.add_arc(choice, join);
    }

    /// Source transitions created outside the main source loop (by defect
    /// injection), so source_credit can bound them too.
    [[nodiscard]] const std::vector<pn::transition_id>& extra_sources() const noexcept
    {
        return extra_sources_;
    }

private:
    std::string fresh(const char* prefix)
    {
        return std::string(prefix) + std::to_string(serial_++);
    }

    std::int64_t weight() { return rng_.range(1, options_.max_weight); }

    void maybe_load_tokens(pn::place_id p)
    {
        if (options_.token_load > 0 && rng_.below(100) < 30) {
            builder_.set_initial_tokens(p, rng_.range(1, options_.token_load));
        }
    }

    void grow_chain(pn::transition_id from, int depth_left)
    {
        const auto p = builder_.add_place(fresh("p"));
        const auto u = builder_.add_transition(fresh("t"));
        // Any (produce, consume) weight pair stays balanced: the minimal
        // T-invariant scales both sides of the edge.
        builder_.add_arc(from, p, weight());
        builder_.add_arc(p, u, weight());
        maybe_load_tokens(p);
        grow(u, depth_left - 1);
    }

    void grow_choice(pn::transition_id from, int depth_left)
    {
        const auto p = builder_.add_place(fresh("c"));
        if (!first_choice_.valid()) {
            first_choice_ = p;
        }
        const std::int64_t w = weight();
        builder_.add_arc(from, p, w);
        const int alternatives =
            static_cast<int>(rng_.range(2, std::max(2, options_.max_alternatives)));
        for (int i = 0; i < alternatives; ++i) {
            const auto alt = builder_.add_transition(fresh("t"));
            builder_.add_arc(p, alt, w); // equal conflict: identical Pre vectors
            grow(alt, depth_left - 1);
        }
    }

    void grow_fork_join(pn::transition_id from, int depth_left)
    {
        const auto pa = builder_.add_place(fresh("p"));
        const auto pb = builder_.add_place(fresh("p"));
        const auto u = builder_.add_transition(fresh("t"));
        const std::int64_t wa = weight();
        const std::int64_t wb = weight();
        // Matched weights on both legs keep the join balanced one-to-one.
        builder_.add_arc(from, pa, wa);
        builder_.add_arc(from, pb, wb);
        builder_.add_arc(pa, u, wa);
        builder_.add_arc(pb, u, wb);
        maybe_load_tokens(pa);
        grow(u, depth_left - 1);
    }

    pn::net_builder& builder_;
    prng& rng_;
    const generator_options& options_;
    int choice_percent_ = 0;
    int fork_percent_ = 0;
    int serial_ = 0;
    pn::place_id first_choice_;
    std::vector<pn::transition_id> extra_sources_;
};

// -- Production-shaped families ---------------------------------------------
//
// Built whole instead of grown: their shapes (shared resource pools, staged
// fan-out/fan-in, bursty buffers) do not decompose into the per-source
// layered growth above.  Token-load sprinkling matches grower semantics
// (30% of eligible places, 1..token_load tokens) so the knob reads the same
// across all six families.

void maybe_load(pn::net_builder& builder, prng& rng, const generator_options& options,
                pn::place_id p)
{
    if (options.token_load > 0 && rng.below(100) < 30) {
        builder.set_initial_tokens(p, rng.range(1, options.token_load));
    }
}

/// The ATM app generalized: `sources` request classes contend for one
/// shared pool of `depth` tellers.  grab_m consumes a request *and* a
/// teller, done_m returns the teller — a join on a shared place, so the
/// family is non-free-choice by design (the synthesis path must reject it;
/// the engines explore it like any other net).
void build_client_server(pn::net_builder& builder, prng& rng,
                         const generator_options& options,
                         std::vector<pn::transition_id>& sources)
{
    const auto pool =
        builder.add_place("tellers", std::max(1, options.depth));
    for (int m = 0; m < options.sources; ++m) {
        const std::string id = std::to_string(m);
        const auto src = builder.add_transition("req_src" + id);
        sources.push_back(src);
        const auto req = builder.add_place("req" + id);
        builder.add_arc(src, req);
        const auto grab = builder.add_transition("grab" + id);
        builder.add_arc(req, grab);
        builder.add_arc(pool, grab);
        const auto work = builder.add_place("work" + id);
        builder.add_arc(grab, work);
        const auto done = builder.add_transition("done" + id);
        builder.add_arc(work, done);
        builder.add_arc(done, pool);
        const auto resp = builder.add_place("resp" + id);
        builder.add_arc(done, resp);
        const auto reply = builder.add_transition("reply" + id);
        builder.add_arc(resp, reply);
        maybe_load(builder, rng, options, req);
        maybe_load(builder, rng, options, resp);
    }
}

/// Staged dataflow: `depth` alternating fan-out/fan-in layers per source.
/// Every place keeps exactly one producer and one consumer with matched
/// weights, so the family is a weight-consistent marked graph —
/// schedulable by design, with levels far wider than the chain-shaped mg
/// family.
void build_layered_pipeline(pn::net_builder& builder, prng& rng,
                            const generator_options& options,
                            std::vector<pn::transition_id>& sources)
{
    int serial = 0;
    for (int s = 0; s < options.sources; ++s) {
        std::vector<pn::transition_id> stage{
            builder.add_transition("stage_src" + std::to_string(s))};
        sources.push_back(stage.front());
        for (int layer = 0; layer < options.depth; ++layer) {
            if (stage.size() == 1) {
                // Fan out: one transition feeds `width` parallel branches.
                const auto width = static_cast<int>(
                    rng.range(2, std::max(2, options.max_alternatives)));
                std::vector<pn::transition_id> next;
                next.reserve(static_cast<std::size_t>(width));
                for (int i = 0; i < width; ++i) {
                    const std::string id = std::to_string(serial++);
                    const auto p = builder.add_place("lp" + id);
                    const auto t = builder.add_transition("lt" + id);
                    const std::int64_t w = rng.range(1, options.max_weight);
                    builder.add_arc(stage.front(), p, w);
                    builder.add_arc(p, t, w);
                    maybe_load(builder, rng, options, p);
                    next.push_back(t);
                }
                stage = std::move(next);
            } else {
                // Fan in: every branch joins into one transition.
                const auto join =
                    builder.add_transition("lj" + std::to_string(serial++));
                for (const pn::transition_id t : stage) {
                    const auto p = builder.add_place("lp" + std::to_string(serial++));
                    const std::int64_t w = rng.range(1, options.max_weight);
                    builder.add_arc(t, p, w);
                    builder.add_arc(p, join, w);
                }
                stage.assign(1, join);
            }
        }
    }
}

/// Bursty multirate feeds: each source emits bursts of 2*max_weight tokens
/// into a buffer drained one at a time, followed by a chain of
/// rate-changing stages (independent produce/consume weights).  Consistent
/// by construction; the rate mismatches stress multirate scheduling.
void build_bursty_multirate(pn::net_builder& builder, prng& rng,
                            const generator_options& options,
                            std::vector<pn::transition_id>& sources)
{
    const std::int64_t burst = std::max<std::int64_t>(2, 2 * options.max_weight);
    int serial = 0;
    for (int s = 0; s < options.sources; ++s) {
        const std::string id = std::to_string(s);
        const auto src = builder.add_transition("burst_src" + id);
        sources.push_back(src);
        const auto buffer = builder.add_place("buf" + id);
        builder.add_arc(src, buffer, burst);
        auto prev = builder.add_transition("drain" + id);
        builder.add_arc(buffer, prev);
        maybe_load(builder, rng, options, buffer);
        for (int stage = 0; stage < options.depth; ++stage) {
            const std::string sid = std::to_string(serial++);
            const auto p = builder.add_place("bp" + sid);
            const auto t = builder.add_transition("bt" + sid);
            builder.add_arc(prev, p, rng.range(1, options.max_weight));
            builder.add_arc(p, t, rng.range(1, options.max_weight));
            maybe_load(builder, rng, options, p);
            prev = t;
        }
    }
}

} // namespace

net_generator::net_generator(std::uint64_t seed, generator_options options)
    : seed_(seed), options_(options), state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
    if (options_.sources < 1 || options_.depth < 1 || options_.max_weight < 1 ||
        options_.max_alternatives < 2) {
        throw model_error("net_generator: sources/depth/max_weight must be >= 1 "
                          "and max_alternatives >= 2");
    }
    if (options_.choice_percent < 0 || options_.choice_percent > 100 ||
        options_.defect_percent < 0 || options_.defect_percent > 100) {
        throw model_error("net_generator: percentages must be in [0, 100]");
    }
    if (options_.source_credit < 0) {
        throw model_error("net_generator: source_credit must be >= 0");
    }
}

pn::petri_net net_generator::next()
{
    prng rng(state_);
    const std::string name = std::string("gen_") + to_string(options_.family) + "_s" +
                             std::to_string(seed_) + "_n" + std::to_string(generated_);
    pn::net_builder builder(name);
    grower g(builder, rng, options_);
    std::vector<pn::transition_id> sources;
    sources.reserve(static_cast<std::size_t>(options_.sources));
    switch (options_.family) {
    case net_family::client_server:
        build_client_server(builder, rng, options_, sources);
        break;
    case net_family::layered_pipeline:
        build_layered_pipeline(builder, rng, options_, sources);
        break;
    case net_family::bursty_multirate:
        build_bursty_multirate(builder, rng, options_, sources);
        break;
    default:
        // The paper-shaped families: layered random growth below each
        // source (byte-identical to the pre-production-family generator).
        for (int s = 0; s < options_.sources; ++s) {
            const auto source = builder.add_transition("src" + std::to_string(s));
            sources.push_back(source);
            g.grow(source, options_.depth);
        }
        break;
    }
    if (options_.defect_percent > 0 &&
        rng.below(100) < static_cast<std::uint64_t>(options_.defect_percent)) {
        g.inject_defect();
    }
    if (options_.source_credit > 0) {
        // Credit places go in after the structure is grown (no extra PRNG
        // draws), so the same seed yields the same net modulo the credits.
        // Defect-injected sources are included: one uncredited source would
        // keep the whole net unbounded.
        sources.insert(sources.end(), g.extra_sources().begin(),
                       g.extra_sources().end());
        for (std::size_t s = 0; s < sources.size(); ++s) {
            const auto credit = builder.add_place("credit" + std::to_string(s),
                                                  options_.source_credit);
            builder.add_arc(credit, sources[s]);
        }
    }
    state_ = rng.state() ^ (0x9e3779b97f4a7c15ULL + generated_);
    if (state_ == 0) {
        state_ = 0x9e3779b97f4a7c15ULL;
    }
    ++generated_;
    return std::move(builder).build();
}

std::vector<pn::petri_net> net_generator::make(std::size_t count)
{
    std::vector<pn::petri_net> nets;
    nets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        nets.push_back(next());
    }
    return nets;
}

} // namespace fcqss::pipeline
