#include "pipeline/service.hpp"

#include <array>
#include <chrono>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "pnio/parser.hpp"
#include "pnio/writer.hpp"

namespace fcqss::pipeline {

const char* to_string(submit_status status)
{
    switch (status) {
    case submit_status::accepted:
        return "accepted";
    case submit_status::overloaded:
        return "overloaded";
    case submit_status::draining:
        return "draining";
    }
    return "?";
}

std::uint64_t content_hash(const pn::petri_net& net)
{
    const std::string canonical = pnio::write_net(net);
    std::uint64_t hash = 14695981039346656037ULL; // FNV-1a 64
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

namespace {

using clock = std::chrono::steady_clock;

double micros_since(clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(clock::now() - start).count();
}

/// Per-stage service latency histograms, resolved once (names must outlive
/// the process; get_histogram dedups by name).
obs::histogram& stage_histogram(pipeline_stage stage)
{
    static const std::array<obs::histogram*, stage_count> histograms = [] {
        std::array<obs::histogram*, stage_count> resolved{};
        for (std::size_t i = 0; i < stage_count; ++i) {
            resolved[i] = &obs::get_histogram(
                std::string("svc.stage.") + to_string(static_cast<pipeline_stage>(i)) +
                    ".micros",
                "us");
        }
        return resolved;
    }();
    return *histograms[static_cast<std::size_t>(stage)];
}

} // namespace

service::service(service_options options)
    : options_([&] {
          // A service reply without the code would force clients to re-run
          // codegen; retain it whenever codegen runs at all.
          options.pipeline.keep_code = options.pipeline.generate_code;
          // run_one runs on service workers; its own pool must stay unused.
          options.pipeline.jobs = 1;
          return options;
      }()),
      pipe_(options_.pipeline), pool_(options_.jobs, options_.max_queue)
{
}

service::~service()
{
    drain();
}

service::submit_result service::submit(net_source source, reply_callback on_reply,
                                       service_stage_callback on_stage)
{
    // Admission and shutdown decide against one consistent state: under
    // done_mutex_, either drain() already set draining_ (reject here, no
    // side effects) or this request raises outstanding_ first — which
    // blocks drain()'s quiescence wait, and therefore pool_.close(), until
    // the request resolves.  Splitting this into two separate draining_
    // reads would let a submit race drain into counting the request as
    // overloaded_ and reporting the wrong rejection reason.
    {
        std::lock_guard lock(done_mutex_);
        if (draining_) {
            return {submit_status::draining, 0};
        }
        ++outstanding_;
    }
    const request_id id = next_id_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t submit_ns = obs::now_ns();
    const bool queued = pool_.try_submit(
        [this, id, source = std::move(source), on_reply = std::move(on_reply),
         on_stage = std::move(on_stage), submit_ns]() mutable {
            run_request(id, std::move(source), std::move(on_reply),
                        std::move(on_stage), submit_ns);
        });
    if (!queued) {
        finish_one();
        // We were admitted, so the pool cannot have been closed under us
        // (drain is still blocked on our outstanding_ count): a failed
        // try_submit always means the queue is full.
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        if (obs::stats_enabled()) {
            static obs::counter& rejected =
                obs::get_counter("svc.rejected.overloaded");
            rejected.add(1);
        }
        return {submit_status::overloaded, 0};
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::stats_enabled()) {
        static obs::counter& accepted = obs::get_counter("svc.submitted");
        static obs::gauge& depth = obs::get_gauge("svc.queue.depth_hwm", "requests");
        accepted.add(1);
        depth.set_max(static_cast<double>(pool_.queue_depth()));
    }
    return {submit_status::accepted, id};
}

void service::run_request(request_id id, net_source source, reply_callback on_reply,
                          service_stage_callback on_stage, std::uint64_t submit_ns)
{
    // -- resolve the net (the service's own parse step: the dedupe key is a
    // content hash of the *parsed* net, so parsing precedes admission to
    // the dedupe table, and parse failures never dedupe) -------------------
    std::optional<pn::petri_net> parsed;
    double parse_micros = 0;
    if (!source.prebuilt) {
        const auto start = clock::now();
        try {
            parsed = source.is_path
                         ? pnio::load_net(source.text, options_.pipeline.limits)
                         : pnio::parse_net(source.text, options_.pipeline.limits);
            parse_micros = micros_since(start);
        } catch (...) {
            auto failure = std::make_shared<pipeline_result>();
            failure->name = source.name;
            failure->status = status_of_current_exception(failure->diagnosis);
            failure->timings.micros[static_cast<std::size_t>(pipeline_stage::parse)] =
                micros_since(start);
            parse_failures_.fetch_add(1, std::memory_order_relaxed);
            deliver({id, std::move(on_reply), submit_ns}, std::move(failure), false,
                    false);
            return;
        }
    }
    const pn::petri_net& net = source.prebuilt ? *source.prebuilt : *parsed;
    const std::uint64_t hash = content_hash(net);

    // -- dedupe admission --------------------------------------------------
    {
        std::unique_lock lock(dedupe_mutex_);
        if (const auto hit = cache_.find(hash); hit != cache_.end()) {
            const std::shared_ptr<const pipeline_result> result = hit->second;
            lock.unlock();
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            if (obs::stats_enabled()) {
                static obs::counter& hits = obs::get_counter("svc.dedupe.cache_hits");
                hits.add(1);
            }
            deliver({id, std::move(on_reply), submit_ns}, result, true, true);
            return;
        }
        if (const auto running = inflight_.find(hash); running != inflight_.end()) {
            running->second.waiters.push_back({id, std::move(on_reply), submit_ns});
            inflight_hits_.fetch_add(1, std::memory_order_relaxed);
            if (obs::stats_enabled()) {
                static obs::counter& hits =
                    obs::get_counter("svc.dedupe.inflight_hits");
                hits.add(1);
            }
            return; // the leader replies for us
        }
        inflight_.emplace(hash, inflight{});
    }

    // -- leader: run the synthesis ----------------------------------------
    syntheses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::stats_enabled()) {
        static obs::counter& runs = obs::get_counter("svc.synth.runs");
        runs.add(1);
    }
    const stage_observer bridge = [&](pipeline_stage stage,
                                      const pipeline_result& partial) {
        if (obs::stats_enabled()) {
            stage_histogram(stage).record(static_cast<std::uint64_t>(
                partial.timings[stage] > 0 ? partial.timings[stage] : 0));
        }
        if (on_stage) {
            on_stage(id, stage, partial);
        }
    };
    // run_one below receives a prebuilt net and so never observes the parse
    // stage itself — stream the service-side parse here, after the dedupe
    // registration, so followers can already attach while clients see the
    // full staged flow starting at parse.
    {
        pipeline_result partial;
        partial.name = source.name;
        partial.timings.micros[static_cast<std::size_t>(pipeline_stage::parse)] =
            parse_micros;
        bridge(pipeline_stage::parse, partial);
    }
    const net_source run_source =
        source.prebuilt ? std::move(source) : net_source::from_net(std::move(*parsed));
    pipeline_result result = pipe_.run_one(run_source, bridge);
    // The service parsed up front; charge that time to the parse stage so
    // timings stay comparable with the one-shot path.
    result.timings.micros[static_cast<std::size_t>(pipeline_stage::parse)] +=
        parse_micros;
    const auto shared = std::make_shared<const pipeline_result>(std::move(result));

    // -- complete: publish to the cache, collect attached waiters ----------
    std::vector<waiter> waiters;
    {
        std::lock_guard lock(dedupe_mutex_);
        const auto running = inflight_.find(hash);
        waiters = std::move(running->second.waiters);
        inflight_.erase(running);
        if (options_.result_cache > 0) {
            cache_.emplace(hash, shared);
            cache_order_.push_back(hash);
            while (cache_.size() > options_.result_cache) {
                cache_.erase(cache_order_.front());
                cache_order_.pop_front();
            }
        }
    }
    deliver({id, std::move(on_reply), submit_ns}, shared, false, false);
    for (waiter& attached : waiters) {
        deliver(attached, shared, true, false);
    }
}

void service::deliver(const waiter& to, std::shared_ptr<const pipeline_result> result,
                      bool deduplicated, bool cached)
{
    synthesis_reply reply;
    reply.request = to.id;
    reply.result = std::move(result);
    reply.deduplicated = deduplicated;
    reply.cached = cached;
    to.on_reply(reply);
    replied_.fetch_add(1, std::memory_order_relaxed);
    if (obs::stats_enabled()) {
        static obs::counter& replies = obs::get_counter("svc.replies");
        static obs::histogram& latency =
            obs::get_histogram("svc.request.micros", "us");
        replies.add(1);
        latency.record((obs::now_ns() - to.submit_ns) / 1000);
    }
    finish_one();
}

void service::finish_one()
{
    std::lock_guard lock(done_mutex_);
    if (--outstanding_ == 0) {
        all_done_.notify_all();
    }
}

void service::drain()
{
    {
        std::unique_lock lock(done_mutex_);
        draining_ = true;
        all_done_.wait(lock, [this] { return outstanding_ == 0; });
    }
    pool_.close();
}

service::stats_snapshot service::stats() const
{
    stats_snapshot snapshot;
    snapshot.submitted = submitted_.load(std::memory_order_relaxed);
    snapshot.replied = replied_.load(std::memory_order_relaxed);
    snapshot.syntheses = syntheses_.load(std::memory_order_relaxed);
    snapshot.inflight_hits = inflight_hits_.load(std::memory_order_relaxed);
    snapshot.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    snapshot.overloaded = overloaded_.load(std::memory_order_relaxed);
    snapshot.parse_failures = parse_failures_.load(std::memory_order_relaxed);
    return snapshot;
}

} // namespace fcqss::pipeline
