// fcqss — pipeline/synthesis_pipeline.hpp
// Batch orchestration of the whole synthesis flow.  One net runs through the
// staged pipeline
//
//   parse -> classify (net_class) -> structural (invariants / rank)
//         -> schedule (qss) -> partition (tasks) -> codegen (C)
//
// and produces a pipeline_result: final status, per-stage wall times, the
// diagnosis for rejected nets, and size metrics for generated code.  Stages
// short-circuit: a net that fails to parse never reaches classify, a
// non-free-choice net never reaches the scheduler, an unschedulable net
// carries the qss_result diagnosis instead of code.  run() drives a whole
// vector of sources through a fixed-size thread pool (exec::executor);
// every net is processed independently and failures are confined to their
// own result, so one bad net never poisons the batch and per-net statuses
// are identical no matter how many worker threads ran.
#ifndef FCQSS_PIPELINE_SYNTHESIS_PIPELINE_HPP
#define FCQSS_PIPELINE_SYNTHESIS_PIPELINE_HPP

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/task_codegen.hpp"
#include "pn/net_class.hpp"
#include "pn/petri_net.hpp"
#include "pnio/lexer.hpp"
#include "qss/scheduler.hpp"

namespace fcqss::pipeline {

/// Final disposition of one net.
enum class pipeline_status {
    ok,              ///< synthesized end to end
    load_failed,     ///< file could not be read
    parse_failed,    ///< `.pn` text was syntactically invalid
    invalid_model,   ///< parsed but structurally malformed
    not_free_choice, ///< outside the class the QSS algorithm accepts
    not_schedulable, ///< in class, but no valid schedule exists
    resource_limit,  ///< a configured bound (allocation cap, ...) was hit
    failed,          ///< unexpected internal error (isolated to this net)
};

[[nodiscard]] const char* to_string(pipeline_status status);

/// Inverse of to_string; nullopt for unknown spellings.  Together with
/// wire_code / status_from_wire this makes the status a stable wire type:
/// both the textual and the numeric form round-trip, and tests pin the
/// mapping so neither can silently drift.
[[nodiscard]] std::optional<pipeline_status>
parse_pipeline_status(std::string_view spelling) noexcept;

/// Stable numeric wire code of a status.  Used identically as the CLI exit
/// code of single-net commands and as the "code" field of service replies.
/// 0 is success; 1 (generic error) and 2 (usage error) stay reserved for
/// the CLI; the mapping is append-only and never renumbered.
[[nodiscard]] int wire_code(pipeline_status status) noexcept;

/// Inverse of wire_code; nullopt for unassigned codes.
[[nodiscard]] std::optional<pipeline_status> status_from_wire(int code) noexcept;

/// Maps the in-flight exception to the status run_one would record for it,
/// appending its message to `diagnosis`.  Exposed so other entry points
/// that run pipeline work (the resident service parsing client bytes)
/// classify failures exactly like the batch path.  Must be called from
/// within a catch block.
[[nodiscard]] pipeline_status status_of_current_exception(std::string& diagnosis);

/// Pipeline stages, in execution order (indices into stage timings).
enum class pipeline_stage { parse, classify, structural, schedule, partition, codegen };

inline constexpr std::size_t stage_count = 6;

[[nodiscard]] const char* to_string(pipeline_stage stage);

/// One unit of batch input: a named `.pn` text, a file path, or an already
/// built net (the generator path — no parsing involved).
struct net_source {
    std::string name;
    std::string text;
    bool is_path = false;
    std::shared_ptr<const pn::petri_net> prebuilt;

    [[nodiscard]] static net_source from_text(std::string name, std::string text);
    [[nodiscard]] static net_source from_file(std::string path);
    [[nodiscard]] static net_source from_net(pn::petri_net net);
};

/// Per-stage wall-clock times; a stage that never ran stays at 0.
struct stage_timings {
    std::array<double, stage_count> micros{};

    [[nodiscard]] double operator[](pipeline_stage s) const
    {
        return micros[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] double total() const;
};

/// Everything the pipeline learned about one net.
struct pipeline_result {
    std::size_t index = 0; ///< position in the input batch
    std::string name;
    pipeline_status status = pipeline_status::failed;
    /// Why the net stopped short of `ok` (free-choice violation, the
    /// qss_result diagnosis, the exception message, ...).  Empty on success.
    std::string diagnosis;

    // Classify / structural facts (valid once those stages ran).
    pn::net_class klass = pn::net_class::general;
    std::size_t places = 0;
    std::size_t transitions = 0;
    std::size_t arcs = 0;
    bool consistent = false;

    // Scheduling facts.
    std::size_t allocations = 0;
    std::size_t cycles = 0;
    std::size_t tasks = 0;
    /// Machine-readable rejection class when status == not_schedulable
    /// (reduction_failure::none otherwise); wire_code(qss_failure) rides the
    /// service protocol next to the human-readable diagnosis.
    qss::reduction_failure qss_failure = qss::reduction_failure::none;

    // Codegen facts.
    std::size_t code_bytes = 0;
    int code_lines = 0;
    /// The emitted C, retained only when pipeline_options::keep_code.
    std::string code;

    stage_timings timings;

    [[nodiscard]] bool ok() const { return status == pipeline_status::ok; }
};

/// Aggregate of one run() call.
struct batch_report {
    std::vector<pipeline_result> results; ///< in input order
    std::size_t jobs = 1;                 ///< worker threads used
    double wall_micros = 0;               ///< end-to-end batch wall time

    [[nodiscard]] std::size_t count(pipeline_status status) const;
    [[nodiscard]] double nets_per_second() const;
    /// Sum of a stage's time across all nets (CPU time, not wall time).
    [[nodiscard]] double stage_micros(pipeline_stage stage) const;
    /// Human-readable multi-line summary.
    [[nodiscard]] std::string summary() const;
};

struct pipeline_options {
    /// Worker threads; 0 picks std::thread::hardware_concurrency().
    std::size_t jobs = 0;
    /// Stop after the schedule/partition stages instead of emitting C.
    bool generate_code = true;
    /// Run the structural stage (invariant consistency).  Off saves the
    /// Farkas enumeration when only schedulability matters.
    bool structural_analysis = true;
    /// Retain the emitted C text in each result (memory-heavy on batches).
    bool keep_code = false;
    /// Bounds on parsed text inputs; trips become status resource_limit.
    pnio::parse_limits limits{};
    qss::scheduler_options scheduler{};
    cgen::codegen_options codegen{};
};

/// Per-stage progress callback: invoked after each stage completes (in
/// stage order, on the thread running the net) with the result so far.
/// `partial` is only valid for the duration of the call.  Stages that
/// reject their net (classify, schedule) still report before the run
/// stops with the status already set; a stage that throws reports
/// nothing — the failure arrives in the final result only.  This is how
/// the service streams the structural verdict long before codegen lands.
using stage_observer =
    std::function<void(pipeline_stage stage, const pipeline_result& partial)>;

class synthesis_pipeline {
public:
    explicit synthesis_pipeline(pipeline_options options = {});

    [[nodiscard]] const pipeline_options& options() const noexcept { return options_; }

    /// Runs one source through every stage on the calling thread.  Never
    /// throws for per-net problems; the status/diagnosis carry them.  The
    /// observer, when given, sees every stage that ran.
    [[nodiscard]] pipeline_result run_one(const net_source& source,
                                          const stage_observer& observer = {}) const;

    /// Runs the whole batch on the thread pool; results come back in input
    /// order regardless of completion order.
    [[nodiscard]] batch_report run(const std::vector<net_source>& sources) const;

    /// Convenience: batch over `.pn` files.
    [[nodiscard]] batch_report run_files(const std::vector<std::string>& paths) const;

private:
    pipeline_options options_;
};

} // namespace fcqss::pipeline

#endif // FCQSS_PIPELINE_SYNTHESIS_PIPELINE_HPP
