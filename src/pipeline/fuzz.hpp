// fcqss — pipeline/fuzz.hpp
// The standing differential fuzz discipline: seeded base nets from every
// generator family, mutated by pn/mutator.hpp, driven through the full
// verdict matrix
//
//   {sequential, parallel} x {none, stubborn-deadlock, stubborn-ltl_x}
//
// under tight exploration budgets, plus one synthesis-pipeline pass.  The
// invariants checked per mutant:
//
//   engine agreement     for each reduction strength, the parallel engine's
//                        state space is bit-identical to the sequential one
//                        (states, edges, token spans, truncation) — the
//                        repo-wide determinism guarantee.
//   reduction soundness  a stubborn-reduced exploration never visits more
//                        states than the full one (both untruncated), every
//                        definite has-deadlock verdict agrees across all
//                        six cells, and untruncated cells agree on the
//                        exact set of reachable dead markings.
//   rejection, not UB    the synthesis path (classify -> structural -> QSS
//                        -> codegen) either succeeds or rejects with a
//                        typed status; pipeline_status::failed (an escaped
//                        internal error) is a finding, and crashes/UB
//                        surface under the sanitizer CI jobs.
//
// A disagreement is auto-shrunk by replaying subsets of the mutation plan
// (greedy delta-debugging over pn::apply_mutations, which is pure) and
// written out as a minimized `.pn` reproducer for tests/corpus/.
//
// Everything is deterministic: seed k always produces the same base net,
// the same mutant, and the same verdicts, on every platform.
#ifndef FCQSS_PIPELINE_FUZZ_HPP
#define FCQSS_PIPELINE_FUZZ_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/net_generator.hpp"
#include "pn/mutator.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pipeline {

struct fuzz_options {
    /// Mutant seeds are seed_begin, seed_begin + 1, ... (one mutant each).
    std::uint64_t seed_begin = 1;
    std::size_t seeds = 100;
    /// Families to cycle through (mutant i uses families[i % size]).
    /// Empty means all six.
    std::vector<net_family> families{};
    /// Mutation-plan knobs (mutations per mutant, weight/token ranges).
    pn::mutation_options mutation{};
    /// Per-cell exploration budget.  Tight on purpose: mutants are routinely
    /// unbounded, and truncation is part of the surface under test.
    std::size_t max_states = 4000;
    std::int64_t max_tokens_per_place = 64;
    /// Resident marking-arena budget per cell (0 = unlimited, all in RAM).
    /// Non-zero routes every cell through the mmap spill path, so the fuzz
    /// matrix doubles as a differential test of the external-memory store.
    std::size_t max_bytes = 0;
    /// Thread count of the parallel-engine column.
    std::size_t threads = 2;
    /// Scheduler allocation budget for the synthesis pass on each mutant.
    std::size_t max_allocations = 512;
    /// Run the synthesis pipeline on each mutant (off explores only).
    bool run_synthesis = true;
    /// Shrink disagreements to a minimal mutation subset before reporting.
    bool shrink = true;
};

/// One verified disagreement, minimized and reproducible.
struct fuzz_finding {
    std::uint64_t seed = 0;
    net_family family = net_family::free_choice;
    std::string net_name;
    /// What disagreed (matrix cell names and the differing quantities).
    std::string reason;
    /// The minimized mutant as a `.pn` document — drop it in tests/corpus/.
    std::string reproducer;
    /// Mutations surviving the shrink (0 = the base net itself disagrees).
    std::size_t mutations_applied = 0;
    std::size_t shrink_steps = 0;
};

struct fuzz_report {
    std::size_t mutants = 0;
    std::size_t matrix_runs = 0;
    std::vector<fuzz_finding> findings;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Runs the verdict matrix on one net; returns a disagreement description,
/// empty when every invariant holds.  This is the exact check the fuzz loop
/// applies to every mutant — exposed so the corpus replay test and the
/// shrinker share it.
[[nodiscard]] std::string check_verdict_matrix(const pn::petri_net& net,
                                               const fuzz_options& options = {});

/// The fuzz loop: generate, mutate, check, shrink.  `on_finding`, when
/// given, is invoked for each finding as it is minimized (the CLI streams
/// reproducers to disk this way).  obs counters: fuzz.mutants,
/// fuzz.matrix_runs, fuzz.disagreements, fuzz.shrink_steps.
[[nodiscard]] fuzz_report
run_fuzz(const fuzz_options& options = {},
         const std::function<void(const fuzz_finding&)>& on_finding = {});

} // namespace fcqss::pipeline

#endif // FCQSS_PIPELINE_FUZZ_HPP
