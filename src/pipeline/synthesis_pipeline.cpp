#include "pipeline/synthesis_pipeline.hpp"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

#include <array>

#include "base/error.hpp"
#include "base/strings.hpp"
#include "codegen/c_emitter.hpp"
#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "pn/invariants.hpp"
#include "pn/structure.hpp"
#include "pnio/parser.hpp"
#include "qss/task_partition.hpp"

namespace fcqss::pipeline {

const char* to_string(pipeline_status status)
{
    switch (status) {
    case pipeline_status::ok:
        return "ok";
    case pipeline_status::load_failed:
        return "load-failed";
    case pipeline_status::parse_failed:
        return "parse-failed";
    case pipeline_status::invalid_model:
        return "invalid-model";
    case pipeline_status::not_free_choice:
        return "not-free-choice";
    case pipeline_status::not_schedulable:
        return "not-schedulable";
    case pipeline_status::resource_limit:
        return "resource-limit";
    case pipeline_status::failed:
        return "failed";
    }
    return "?";
}

std::optional<pipeline_status> parse_pipeline_status(std::string_view spelling) noexcept
{
    static constexpr pipeline_status all[] = {
        pipeline_status::ok,           pipeline_status::load_failed,
        pipeline_status::parse_failed, pipeline_status::invalid_model,
        pipeline_status::not_free_choice, pipeline_status::not_schedulable,
        pipeline_status::resource_limit, pipeline_status::failed,
    };
    for (const pipeline_status s : all) {
        if (spelling == to_string(s)) {
            return s;
        }
    }
    return std::nullopt;
}

int wire_code(pipeline_status status) noexcept
{
    // Append-only: these numbers are CLI exit codes and protocol fields.
    // 1 and 2 stay reserved (generic error / usage error).
    switch (status) {
    case pipeline_status::ok: return 0;
    case pipeline_status::load_failed: return 3;
    case pipeline_status::parse_failed: return 4;
    case pipeline_status::invalid_model: return 5;
    case pipeline_status::not_free_choice: return 6;
    case pipeline_status::not_schedulable: return 7;
    case pipeline_status::resource_limit: return 8;
    case pipeline_status::failed: return 9;
    }
    return 9;
}

std::optional<pipeline_status> status_from_wire(int code) noexcept
{
    switch (code) {
    case 0: return pipeline_status::ok;
    case 3: return pipeline_status::load_failed;
    case 4: return pipeline_status::parse_failed;
    case 5: return pipeline_status::invalid_model;
    case 6: return pipeline_status::not_free_choice;
    case 7: return pipeline_status::not_schedulable;
    case 8: return pipeline_status::resource_limit;
    case 9: return pipeline_status::failed;
    default: return std::nullopt;
    }
}

pipeline_status status_of_current_exception(std::string& diagnosis)
{
    try {
        throw;
    } catch (const parse_error& e) {
        diagnosis = e.what();
        return pipeline_status::parse_failed;
    } catch (const model_error& e) {
        diagnosis = e.what();
        return pipeline_status::invalid_model;
    } catch (const domain_error& e) {
        // The scheduler's own class check tripped (shouldn't happen after
        // classify, but a stage must never leak exceptions into the batch).
        diagnosis = e.what();
        return pipeline_status::not_free_choice;
    } catch (const io_error& e) {
        diagnosis = e.what();
        return pipeline_status::load_failed;
    } catch (const resource_limit_error& e) {
        diagnosis = e.what();
        return pipeline_status::resource_limit;
    } catch (const std::exception& e) {
        diagnosis = e.what();
        return pipeline_status::failed;
    } catch (...) {
        diagnosis = "unknown exception";
        return pipeline_status::failed;
    }
}

const char* to_string(pipeline_stage stage)
{
    switch (stage) {
    case pipeline_stage::parse:
        return "parse";
    case pipeline_stage::classify:
        return "classify";
    case pipeline_stage::structural:
        return "structural";
    case pipeline_stage::schedule:
        return "schedule";
    case pipeline_stage::partition:
        return "partition";
    case pipeline_stage::codegen:
        return "codegen";
    }
    return "?";
}

net_source net_source::from_text(std::string name, std::string text)
{
    net_source source;
    source.name = std::move(name);
    source.text = std::move(text);
    return source;
}

net_source net_source::from_file(std::string path)
{
    net_source source;
    source.name = path;
    source.text = std::move(path);
    source.is_path = true;
    return source;
}

net_source net_source::from_net(pn::petri_net net)
{
    net_source source;
    source.name = net.name();
    source.prebuilt = std::make_shared<const pn::petri_net>(std::move(net));
    return source;
}

double stage_timings::total() const
{
    double sum = 0;
    for (const double m : micros) {
        sum += m;
    }
    return sum;
}

std::size_t batch_report::count(pipeline_status status) const
{
    std::size_t n = 0;
    for (const pipeline_result& r : results) {
        if (r.status == status) {
            ++n;
        }
    }
    return n;
}

double batch_report::nets_per_second() const
{
    if (wall_micros <= 0) {
        return 0;
    }
    return static_cast<double>(results.size()) / (wall_micros * 1e-6);
}

double batch_report::stage_micros(pipeline_stage stage) const
{
    double sum = 0;
    for (const pipeline_result& r : results) {
        sum += r.timings[stage];
    }
    return sum;
}

std::string batch_report::summary() const
{
    char line[256];
    std::string out;
    std::snprintf(line, sizeof line,
                  "batch: %zu nets, %zu jobs, %.1f ms wall, %.1f nets/sec\n",
                  results.size(), jobs, wall_micros / 1000.0, nets_per_second());
    out += line;
    static constexpr pipeline_status kStatuses[] = {
        pipeline_status::ok,           pipeline_status::load_failed,
        pipeline_status::parse_failed, pipeline_status::invalid_model,
        pipeline_status::not_free_choice, pipeline_status::not_schedulable,
        pipeline_status::resource_limit, pipeline_status::failed,
    };
    for (const pipeline_status s : kStatuses) {
        if (const std::size_t n = count(s)) {
            std::snprintf(line, sizeof line, "  %-16s %zu\n", to_string(s), n);
            out += line;
        }
    }
    for (std::size_t i = 0; i < stage_count; ++i) {
        const auto stage = static_cast<pipeline_stage>(i);
        if (const double micros = stage_micros(stage); micros > 0) {
            std::snprintf(line, sizeof line, "  stage %-10s %.1f ms\n",
                          to_string(stage), micros / 1000.0);
            out += line;
        }
    }
    return out;
}

namespace {

using clock = std::chrono::steady_clock;

/// Span names must be string literals (obs stores the pointer).
const char* stage_span_name(pipeline_stage stage)
{
    switch (stage) {
    case pipeline_stage::parse:
        return "stage.parse";
    case pipeline_stage::classify:
        return "stage.classify";
    case pipeline_stage::structural:
        return "stage.structural";
    case pipeline_stage::schedule:
        return "stage.schedule";
    case pipeline_stage::partition:
        return "stage.partition";
    case pipeline_stage::codegen:
        return "stage.codegen";
    }
    return "stage.?";
}

/// Cumulative per-stage obs counters, resolved once (thread-safe static
/// init) so every stage_timer destruction is one guarded add.
obs::counter& stage_counter(pipeline_stage stage)
{
    static const std::array<obs::counter*, stage_count> counters = [] {
        std::array<obs::counter*, stage_count> resolved{};
        for (std::size_t i = 0; i < stage_count; ++i) {
            resolved[i] = &obs::get_counter(
                std::string("pipeline.stage.") +
                    to_string(static_cast<pipeline_stage>(i)) + ".micros",
                "us");
        }
        return resolved;
    }();
    return *counters[static_cast<std::size_t>(stage)];
}

/// Charges elapsed wall time to one stage of a result, including when the
/// stage exits by throwing — a batch full of malformed inputs must still
/// attribute its time to the parse stage.  The same interval feeds the
/// result's timings (API, always), the pipeline.stage.* counters (stats) and
/// one trace span (tracing), so all three sinks agree per stage.
class stage_timer {
public:
    stage_timer(pipeline_result& result, pipeline_stage stage)
        : result_(result), stage_(stage), span_(stage_span_name(stage)),
          start_(clock::now())
    {
    }

    ~stage_timer()
    {
        const double micros =
            std::chrono::duration<double, std::micro>(clock::now() - start_).count();
        result_.timings.micros[static_cast<std::size_t>(stage_)] += micros;
        if (obs::stats_enabled()) {
            stage_counter(stage_).add(
                micros > 0 ? static_cast<std::uint64_t>(micros) : 0);
        }
    }

private:
    pipeline_result& result_;
    pipeline_stage stage_;
    obs::span span_;
    clock::time_point start_;
};

/// Runs `body` and charges its wall time (normal or throwing) to `stage`.
template <typename Fn>
auto timed(pipeline_result& result, pipeline_stage stage, Fn&& body)
{
    const stage_timer timer(result, stage);
    return body();
}

} // namespace

synthesis_pipeline::synthesis_pipeline(pipeline_options options)
    : options_(std::move(options))
{
}

pipeline_result synthesis_pipeline::run_one(const net_source& source,
                                            const stage_observer& observer) const
{
    pipeline_result result;
    result.name = source.name;
    const auto report = [&](pipeline_stage stage) {
        if (observer) {
            observer(stage, result);
        }
    };
    try {
        // -- parse ----------------------------------------------------------
        std::optional<pn::petri_net> parsed;
        if (!source.prebuilt) {
            parsed = timed(result, pipeline_stage::parse, [&] {
                return source.is_path ? pnio::load_net(source.text, options_.limits)
                                      : pnio::parse_net(source.text, options_.limits);
            });
            report(pipeline_stage::parse);
        }
        const pn::petri_net& net = source.prebuilt ? *source.prebuilt : *parsed;
        if (result.name.empty()) {
            result.name = net.name();
        }

        // -- classify -------------------------------------------------------
        const bool in_class = timed(result, pipeline_stage::classify, [&] {
            result.klass = pn::classify(net);
            const pn::net_statistics stats = pn::statistics(net);
            result.places = stats.places;
            result.transitions = stats.transitions;
            result.arcs = stats.arcs;
            if (!pn::is_free_choice(net)) {
                result.diagnosis = pn::describe_free_choice_violation(net);
                return false;
            }
            if (!pn::is_equal_conflict_free_choice(net)) {
                result.diagnosis = "free-choice but not equal-conflict: consumers "
                                   "of some choice place differ in weight";
                return false;
            }
            return true;
        });
        if (!in_class) {
            result.status = pipeline_status::not_free_choice;
            report(pipeline_stage::classify);
            return result;
        }
        report(pipeline_stage::classify);

        // -- structural -----------------------------------------------------
        if (options_.structural_analysis) {
            timed(result, pipeline_stage::structural, [&] {
                result.consistent = pn::is_consistent(net);
            });
            report(pipeline_stage::structural);
        }

        // -- schedule -------------------------------------------------------
        const qss::qss_result schedule = timed(result, pipeline_stage::schedule, [&] {
            return qss::quasi_static_schedule(net, options_.scheduler);
        });
        result.allocations = schedule.allocations_enumerated;
        result.cycles = schedule.entries.size();
        result.qss_failure = schedule.failure;
        if (!schedule.schedulable) {
            result.diagnosis = schedule.diagnosis;
            result.status = pipeline_status::not_schedulable;
            report(pipeline_stage::schedule);
            return result;
        }
        report(pipeline_stage::schedule);

        // -- partition ------------------------------------------------------
        const qss::task_partition partition =
            timed(result, pipeline_stage::partition,
                  [&] { return qss::partition_tasks(net, schedule); });
        result.tasks = partition.tasks.size();
        report(pipeline_stage::partition);

        // -- codegen --------------------------------------------------------
        if (options_.generate_code) {
            timed(result, pipeline_stage::codegen, [&] {
                const cgen::generated_program program =
                    cgen::generate_program(net, schedule, partition, options_.codegen);
                std::string code = cgen::emit_c(program);
                result.code_bytes = code.size();
                result.code_lines = count_nonblank_lines(code);
                if (options_.keep_code) {
                    result.code = std::move(code);
                }
            });
            report(pipeline_stage::codegen);
        }
        result.status = pipeline_status::ok;
        return result;
    } catch (...) {
        result.status = status_of_current_exception(result.diagnosis);
    }
    return result;
}

batch_report synthesis_pipeline::run(const std::vector<net_source>& sources) const
{
    obs::span batch_span("pipeline.batch", "nets",
                         static_cast<std::int64_t>(sources.size()));
    batch_report report;
    report.results.resize(sources.size());

    exec::executor pool(options_.jobs);
    report.jobs = pool.jobs();

    const auto start = clock::now();
    pool.for_each_index(sources.size(), [&](std::size_t i) {
        pipeline_result result = run_one(sources[i]);
        result.index = i;
        report.results[i] = std::move(result);
    });
    report.wall_micros =
        std::chrono::duration<double, std::micro>(clock::now() - start).count();
    if (obs::stats_enabled()) {
        obs::get_counter("pipeline.nets").add(report.results.size());
        obs::get_counter("pipeline.ok").add(report.count(pipeline_status::ok));
    }
    batch_span.arg("ok", static_cast<std::int64_t>(report.count(pipeline_status::ok)));
    return report;
}

batch_report synthesis_pipeline::run_files(const std::vector<std::string>& paths) const
{
    std::vector<net_source> sources;
    sources.reserve(paths.size());
    for (const std::string& path : paths) {
        sources.push_back(net_source::from_file(path));
    }
    return run(sources);
}

} // namespace fcqss::pipeline
