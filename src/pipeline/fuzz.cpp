#include "pipeline/fuzz.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "pipeline/synthesis_pipeline.hpp"
#include "pn/reachability.hpp"
#include "pn/state_space.hpp"
#include "pnio/writer.hpp"

namespace fcqss::pipeline {

namespace {

using tokens_vec = std::vector<std::int64_t>;

/// What one matrix cell concluded.  "Definite" verdicts survive truncation:
/// a dead state found in a truncated (even reduced) exploration is a real
/// reachable deadlock; "no deadlock" is only definite on a full graph.
struct cell_verdict {
    std::size_t states = 0;
    std::size_t edges = 0;
    bool truncated = false;
    std::set<tokens_vec> dead; ///< reachable dead markings in the fragment

    [[nodiscard]] bool definite_deadlock() const { return !dead.empty(); }
    [[nodiscard]] bool definite_deadlock_free() const
    {
        return dead.empty() && !truncated;
    }
};

const char* strength_name(pn::reduction_kind kind, pn::reduction_strength strength)
{
    if (kind == pn::reduction_kind::none) {
        return "none";
    }
    return strength == pn::reduction_strength::ltl_x ? "ltlx" : "deadlock";
}

/// Bit-identity check between the sequential cell and one parallel cell
/// (`cell` names it, e.g. "par/ltlx" or "par-unord/deadlock"); any
/// difference is a disagreement by itself.
std::string compare_spaces(const pn::state_space& seq, const pn::state_space& par,
                           const std::string& cell)
{
    const std::string where = "[seq vs " + cell + "] ";
    if (seq.state_count() != par.state_count()) {
        return where + "state counts differ: " + std::to_string(seq.state_count()) +
               " vs " + std::to_string(par.state_count());
    }
    if (seq.edge_count() != par.edge_count()) {
        return where + "edge counts differ: " + std::to_string(seq.edge_count()) +
               " vs " + std::to_string(par.edge_count());
    }
    if (seq.truncated() != par.truncated()) {
        return where + "truncation verdicts differ";
    }
    for (pn::state_id s = 0; s < static_cast<pn::state_id>(seq.state_count()); ++s) {
        const auto seq_tokens = seq.tokens(s);
        const auto par_tokens = par.tokens(s);
        if (!std::equal(seq_tokens.begin(), seq_tokens.end(), par_tokens.begin(),
                        par_tokens.end())) {
            return where + "state " + std::to_string(s) + " markings differ";
        }
        const auto seq_edges = seq.successors(s);
        const auto par_edges = par.successors(s);
        if (!std::equal(seq_edges.begin(), seq_edges.end(), par_edges.begin(),
                        par_edges.end())) {
            return where + "state " + std::to_string(s) + " edges differ";
        }
    }
    return {};
}

cell_verdict verdict_of(const pn::petri_net& net, const pn::state_space& space)
{
    cell_verdict v;
    v.states = space.state_count();
    v.edges = space.edge_count();
    v.truncated = space.truncated();
    for (const pn::state_id s : pn::deadlock_states(net, space)) {
        const auto span = space.tokens(s);
        v.dead.insert(tokens_vec(span.begin(), span.end()));
    }
    return v;
}

} // namespace

std::string check_verdict_matrix(const pn::petri_net& net, const fuzz_options& options)
{
    struct strength_config {
        pn::reduction_kind kind;
        pn::reduction_strength strength;
    };
    constexpr strength_config configs[] = {
        {pn::reduction_kind::none, pn::reduction_strength::deadlock},
        {pn::reduction_kind::stubborn, pn::reduction_strength::deadlock},
        {pn::reduction_kind::stubborn, pn::reduction_strength::ltl_x},
    };

    cell_verdict verdicts[std::size(configs)];
    for (std::size_t c = 0; c < std::size(configs); ++c) {
        pn::reachability_options explore;
        explore.max_markings = options.max_states;
        explore.max_tokens_per_place = options.max_tokens_per_place;
        explore.max_bytes = options.max_bytes;
        explore.reduction = configs[c].kind;
        explore.strength = configs[c].strength;
        explore.threads = 1;
        const pn::state_space seq = pn::explore_space(net, explore);
        explore.threads = options.threads > 1 ? options.threads : 2;
        const pn::state_space par = pn::explore_space(net, explore);
        const char* name = strength_name(configs[c].kind, configs[c].strength);
        if (std::string reason = compare_spaces(seq, par, std::string("par/") + name);
            !reason.empty()) {
            return reason;
        }
        // The unordered cell: barrier-free exploration plus the renumber
        // pass must still be bit-identical to the sequential engine.
        explore.order = pn::exploration_order::unordered;
        const pn::state_space unord = pn::explore_space(net, explore);
        if (std::string reason =
                compare_spaces(seq, unord, std::string("par-unord/") + name);
            !reason.empty()) {
            return reason;
        }
        verdicts[c] = verdict_of(net, seq);
    }

    // Reduction soundness against the full exploration (cell 0).
    const cell_verdict& full = verdicts[0];
    for (std::size_t c = 1; c < std::size(configs); ++c) {
        const cell_verdict& reduced = verdicts[c];
        const char* name = strength_name(configs[c].kind, configs[c].strength);
        if (!full.truncated && !reduced.truncated &&
            reduced.states > full.states) {
            return std::string("[") + name + "] reduced exploration visited " +
                   std::to_string(reduced.states) + " states, full only " +
                   std::to_string(full.states);
        }
    }

    // Deadlock agreement across every pair of cells.
    for (std::size_t a = 0; a < std::size(configs); ++a) {
        for (std::size_t b = a + 1; b < std::size(configs); ++b) {
            const char* name_a = strength_name(configs[a].kind, configs[a].strength);
            const char* name_b = strength_name(configs[b].kind, configs[b].strength);
            const cell_verdict& va = verdicts[a];
            const cell_verdict& vb = verdicts[b];
            if ((va.definite_deadlock() && vb.definite_deadlock_free()) ||
                (vb.definite_deadlock() && va.definite_deadlock_free())) {
                return std::string("[") + name_a + " vs " + name_b +
                       "] definite has-deadlock verdicts disagree";
            }
            if (!va.truncated && !vb.truncated && va.dead != vb.dead) {
                return std::string("[") + name_a + " vs " + name_b +
                       "] dead-marking sets differ: " + std::to_string(va.dead.size()) +
                       " vs " + std::to_string(vb.dead.size());
            }
        }
    }

    // The synthesis path must reject, never leak an internal error (crashes
    // and UB are caught by running this harness under the sanitizers).
    if (options.run_synthesis) {
        pipeline_options popts;
        popts.jobs = 1;
        popts.scheduler.max_allocations = options.max_allocations;
        const synthesis_pipeline pipe(popts);
        const pipeline_result result = pipe.run_one(net_source::from_net(net));
        if (result.status == pipeline_status::failed) {
            return "[synthesis] internal error escaped a stage: " + result.diagnosis;
        }
    }
    return {};
}

namespace {

/// Base-net knobs per family: small, credit-bounded, with token load and a
/// defect fraction so the base stream already straddles accept/reject.
generator_options base_options(net_family family)
{
    generator_options options;
    options.family = family;
    options.sources = 2;
    options.depth = 3;
    options.token_load = 1;
    options.defect_percent = 25;
    options.source_credit = 1;
    return options;
}

const std::vector<net_family>& all_families()
{
    static const std::vector<net_family> families = {
        net_family::marked_graph,    net_family::free_choice,
        net_family::choice_heavy,    net_family::client_server,
        net_family::layered_pipeline, net_family::bursty_multirate,
    };
    return families;
}

} // namespace

fuzz_report run_fuzz(const fuzz_options& options,
                     const std::function<void(const fuzz_finding&)>& on_finding)
{
    obs::counter& mutants_counter = obs::get_counter("fuzz.mutants");
    obs::counter& matrix_counter = obs::get_counter("fuzz.matrix_runs");
    obs::counter& disagreement_counter = obs::get_counter("fuzz.disagreements");
    obs::counter& shrink_counter = obs::get_counter("fuzz.shrink_steps");

    const std::vector<net_family>& families =
        options.families.empty() ? all_families() : options.families;

    fuzz_report report;
    for (std::size_t i = 0; i < options.seeds; ++i) {
        const std::uint64_t seed = options.seed_begin + i;
        const net_family family = families[i % families.size()];
        net_generator generator(seed, base_options(family));
        const pn::petri_net base = generator.next();

        const std::vector<pn::mutation> plan =
            pn::plan_mutations(base, seed, options.mutation);
        pn::mutation_result mutant = pn::apply_mutations(base, plan);
        ++report.mutants;
        mutants_counter.add(1);

        std::string reason = check_verdict_matrix(mutant.net, options);
        ++report.matrix_runs;
        matrix_counter.add(1);
        if (reason.empty()) {
            continue;
        }
        disagreement_counter.add(1);

        fuzz_finding finding;
        finding.seed = seed;
        finding.family = family;
        finding.net_name = mutant.net.name();

        // Greedy delta-debugging: drop one applied mutation at a time,
        // keeping any subset that still disagrees.  apply_mutations is pure,
        // so every candidate replays deterministically.
        std::vector<pn::mutation> surviving = std::move(mutant.applied);
        if (options.shrink) {
            bool improved = true;
            while (improved) {
                improved = false;
                for (std::size_t drop = 0; drop < surviving.size(); ++drop) {
                    std::vector<pn::mutation> candidate;
                    candidate.reserve(surviving.size() - 1);
                    for (std::size_t k = 0; k < surviving.size(); ++k) {
                        if (k != drop) {
                            candidate.push_back(surviving[k]);
                        }
                    }
                    const pn::mutation_result reduced =
                        pn::apply_mutations(base, candidate);
                    ++finding.shrink_steps;
                    shrink_counter.add(1);
                    ++report.matrix_runs;
                    matrix_counter.add(1);
                    std::string reduced_reason =
                        check_verdict_matrix(reduced.net, options);
                    if (!reduced_reason.empty()) {
                        surviving = std::move(candidate);
                        reason = std::move(reduced_reason);
                        improved = true;
                        break;
                    }
                }
            }
        }

        const pn::mutation_result minimized = pn::apply_mutations(base, surviving);
        finding.reason = std::move(reason);
        finding.reproducer = pnio::write_net(minimized.net);
        finding.mutations_applied = minimized.applied.size();
        if (on_finding) {
            on_finding(finding);
        }
        report.findings.push_back(std::move(finding));
    }
    return report;
}

} // namespace fcqss::pipeline
