// fcqss — pipeline/service.hpp
// The resident synthesis service: the submit()/callback redesign of the
// batch pipeline's public API.  Where synthesis_pipeline::run() takes one
// closed vector of sources and blocks until the whole batch is done, a
// service stays up, accepts work one request at a time from any thread,
// and replies through callbacks — the shape a long-lived daemon (pn_tool
// serve), an embedding application, or a benchmark driving an open-loop
// request trace all need.
//
// Semantics:
//
//   submission    submit() hands one net_source plus a reply callback to
//                 the worker pool.  Admission is bounded: when the job
//                 queue is full the submission is rejected immediately
//                 with submit_status::overloaded (explicit backpressure —
//                 the caller retries or sheds load; nothing blocks).
//
//   dedupe        Work is deduplicated by a content hash of the *parsed*
//                 net (its canonical `.pn` serialization), not of the
//                 submitted bytes: a thousand clients submitting the same
//                 net — even formatted or commented differently — cost one
//                 synthesis and a thousand replies.  Requests that arrive
//                 while the synthesis is in flight attach to it; requests
//                 that arrive after it completed are served from a bounded
//                 FIFO result cache.  Replies carry `deduplicated` /
//                 `cached` so clients and benches can observe the hit
//                 class.
//
//   streaming     An optional stage callback streams per-stage progress of
//                 the actual synthesis (parse early, the classify/
//                 structural verdicts next, C code last).  Only the
//                 request that runs the synthesis streams; attached
//                 duplicates receive the final reply only.
//
//   drain         drain() stops intake (subsequent submissions return
//                 submit_status::draining), waits until every accepted
//                 request has replied, and joins the workers.  The
//                 destructor drains implicitly.
//
// Every callback runs on a worker thread; callbacks must be thread-safe
// against each other and must not call back into submit()/drain().
// Results are bit-identical to the one-shot synthesis_pipeline::run()
// path for the same nets (differentially tested) — the service only
// re-schedules the same staged flow.
#ifndef FCQSS_PIPELINE_SERVICE_HPP
#define FCQSS_PIPELINE_SERVICE_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/work_pool.hpp"
#include "pipeline/synthesis_pipeline.hpp"

namespace fcqss::pipeline {

struct service_options {
    /// Worker threads; 0 picks std::thread::hardware_concurrency().
    std::size_t jobs = 0;
    /// Bound on queued-but-unstarted requests; admission past it is
    /// rejected with submit_status::overloaded.
    std::size_t max_queue = 256;
    /// Completed syntheses kept for dedupe (FIFO eviction); 0 disables the
    /// cache (in-flight dedupe still applies).
    std::size_t result_cache = 1024;
    /// The staged flow's configuration (scheduler caps, parse limits, ...).
    /// keep_code is forced on: a service reply without the code is useless.
    pipeline_options pipeline{};
};

/// Outcome of a submit() call (not of the synthesis — that arrives in the
/// reply callback).
enum class submit_status {
    accepted,   ///< queued; exactly one reply will follow
    overloaded, ///< queue full — backpressure, retry later
    draining,   ///< drain() started; no new work accepted
};

[[nodiscard]] const char* to_string(submit_status status);

/// Identifies one accepted submission in replies and stage events.
using request_id = std::uint64_t;

/// Terminal answer for one accepted submission.
struct synthesis_reply {
    request_id request = 0;
    /// The full pipeline result (status, diagnosis, timings, code when
    /// keep_code).  Shared: deduplicated requests alias one result.
    std::shared_ptr<const pipeline_result> result;
    bool deduplicated = false; ///< another request's synthesis produced this
    bool cached = false;       ///< served from the completed-result cache
};

using reply_callback = std::function<void(const synthesis_reply&)>;

/// Per-stage progress of the request actually running the synthesis.
/// `partial` is valid only for the duration of the call.
using service_stage_callback = std::function<void(
    request_id request, pipeline_stage stage, const pipeline_result& partial)>;

class service {
public:
    explicit service(service_options options = {});

    /// Drains (blocking) if drain() has not run yet.
    ~service();

    service(const service&) = delete;
    service& operator=(const service&) = delete;

    struct submit_result {
        submit_status status = submit_status::overloaded;
        request_id id = 0; ///< valid only when status == accepted
    };

    /// Thread-safe.  When accepted, `on_reply` is invoked exactly once, on
    /// a worker thread; `on_stage` streams stage progress if the request
    /// runs the synthesis itself (dedupe leaders only).
    submit_result submit(net_source source, reply_callback on_reply,
                         service_stage_callback on_stage = {});

    /// Stops intake, waits for every accepted request to reply, joins the
    /// workers.  Idempotent and safe to call from concurrent threads.
    void drain();

    /// Monotonic totals since construction (exact, independent of obs
    /// toggles).  The obs counters svc.* mirror these when stats are on.
    struct stats_snapshot {
        std::uint64_t submitted = 0;      ///< accepted submissions
        std::uint64_t replied = 0;        ///< replies delivered
        std::uint64_t syntheses = 0;      ///< pipelines actually run
        std::uint64_t inflight_hits = 0;  ///< dedupe: attached to running work
        std::uint64_t cache_hits = 0;     ///< dedupe: served from the cache
        std::uint64_t overloaded = 0;     ///< rejections for queue depth
        std::uint64_t parse_failures = 0; ///< inputs that never produced a net
    };

    [[nodiscard]] stats_snapshot stats() const;

    [[nodiscard]] const service_options& options() const noexcept { return options_; }
    [[nodiscard]] std::size_t jobs() const noexcept { return pool_.jobs(); }
    /// Requests admitted but not yet picked up by a worker.
    [[nodiscard]] std::size_t queue_depth() const { return pool_.queue_depth(); }

private:
    struct waiter {
        request_id id = 0;
        reply_callback on_reply;
        std::uint64_t submit_ns = 0;
    };

    /// One running synthesis other requests can attach to.
    struct inflight {
        std::vector<waiter> waiters;
    };

    void run_request(request_id id, net_source source, reply_callback on_reply,
                     service_stage_callback on_stage, std::uint64_t submit_ns);
    void deliver(const waiter& to, std::shared_ptr<const pipeline_result> result,
                 bool deduplicated, bool cached);
    void finish_one();

    service_options options_;
    synthesis_pipeline pipe_;
    exec::work_pool pool_;

    std::mutex dedupe_mutex_;
    std::unordered_map<std::uint64_t, inflight> inflight_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const pipeline_result>> cache_;
    std::deque<std::uint64_t> cache_order_; // FIFO eviction

    std::mutex done_mutex_;
    std::condition_variable all_done_;
    std::size_t outstanding_ = 0; // accepted, not yet replied
    /// Guarded by done_mutex_: admission (submit) and shutdown (drain)
    /// decide against one consistent {draining_, outstanding_} state, so a
    /// submit racing drain is either rejected as draining with no side
    /// effects or fully admitted before the quiescence wait can pass.
    bool draining_ = false;
    std::atomic<request_id> next_id_{1};

    // stats() totals; relaxed atomics, exact under snapshot.
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> replied_{0};
    std::atomic<std::uint64_t> syntheses_{0};
    std::atomic<std::uint64_t> inflight_hits_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> overloaded_{0};
    std::atomic<std::uint64_t> parse_failures_{0};
};

/// The dedupe key: a 64-bit FNV-1a hash of the net's canonical `.pn`
/// serialization (pnio::write_net).  Exposed for tests and tooling that
/// want to predict dedupe behaviour.
[[nodiscard]] std::uint64_t content_hash(const pn::petri_net& net);

} // namespace fcqss::pipeline

#endif // FCQSS_PIPELINE_SERVICE_HPP
