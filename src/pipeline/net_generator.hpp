// fcqss — pipeline/net_generator.hpp
// Seeded random workload generator for batch synthesis: produces streams of
// free-choice nets (plus marked-graph and choice-heavy variants) far beyond
// the seven paper figures, so benches and tests can sweep scenario space.
// Construction follows the schedulable-by-design recipe of the paper nets —
// layered chains below source transitions, equal-conflict choices whose
// alternatives all drain to sinks, weight-matched fork/joins — with two
// knobs that deliberately leave that safe region: `token_load` sprinkles
// initial tokens over chain places, and `defect_percent` injects a
// free-choice violation (an asymmetric join on a choice place) into a
// fraction of the nets so batch runs exercise the pipeline's rejection
// paths.  Everything is driven by one xorshift* PRNG: the same seed and
// options always reproduce byte-identical nets, independent of platform.
#ifndef FCQSS_PIPELINE_NET_GENERATOR_HPP
#define FCQSS_PIPELINE_NET_GENERATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pipeline {

/// Structural family of a generated net.  The first three are paper-shaped
/// (layered growth below sources); the last three model production traffic
/// — request/response servers, staged dataflow, bursty multirate feeds —
/// so batch runs and the fuzz harness sweep system-shaped scenarios too.
enum class net_family {
    /// No conflicts at all: chains and fork/joins only (SDF-shaped).
    marked_graph,
    /// The default mix: choices, fork/joins, and plain chains.
    free_choice,
    /// Conflict-dominated: most places become choice clusters, with up to
    /// four alternatives each — stresses the allocation enumeration.
    choice_heavy,
    /// The ATM app generalized: `sources` request classes contending for a
    /// shared pool of tellers (a resource place holding `depth` tokens).
    /// The shared pool makes the net deliberately non-free-choice — the
    /// production shape every synthesis stage must reject cleanly — while
    /// the engines still explore its (finite, credit-bounded) state space.
    client_server,
    /// Staged dataflow: `depth` alternating fan-out/fan-in layers of width
    /// up to `max_alternatives`.  Every place keeps one producer and one
    /// consumer, so the family is a marked graph — schedulable by design,
    /// with much wider levels than the chain-shaped mg family.
    layered_pipeline,
    /// Bursty multirate feeds: each source emits bursts of `max_weight`
    /// tokens into a buffer drained one token at a time through a chain of
    /// rate-changing stages (weight-a in, weight-b out).  Consistent by
    /// construction, with rate mismatches the scheduler must cover.
    bursty_multirate,
};

[[nodiscard]] const char* to_string(net_family family);

struct generator_options {
    net_family family = net_family::free_choice;
    /// Independent environment inputs (source transitions).
    int sources = 2;
    /// Layers of processing grown below each source.
    int depth = 4;
    /// Probability (percent) that a grown place becomes a choice cluster.
    /// Ignored for marked_graph (0) and choice_heavy (70).
    int choice_percent = 35;
    /// Upper bound on choice-cluster fan-out (alternatives per choice).
    int max_alternatives = 3;
    /// Arc weights drawn uniformly from [1, max_weight].
    int max_weight = 2;
    /// When > 0, chain places receive up to this many initial tokens (30%
    /// of them).  Token load shifts the markings the schedule cycles
    /// through without changing the net's structure.
    int token_load = 0;
    /// Percent of generated nets given a deliberate free-choice violation,
    /// so a batch contains nets every pipeline stage must reject cleanly.
    int defect_percent = 0;
    /// When > 0, every source transition consumes from a private credit
    /// place seeded with this many tokens, so it fires at most that often.
    /// Without credit the families are unbounded (sources fire freely) and
    /// full exploration never terminates; with it the state space is finite
    /// and genuinely deadlocks once the credit drains — the workload the
    /// stubborn-reduction differentials and benches need.  0 (the default)
    /// keeps the classic unbounded sources, byte-identical to before.
    int source_credit = 0;
};

/// Deterministic stream of random nets.  next() advances the stream; two
/// generators built with the same seed and options yield identical
/// sequences.  Net names encode seed and stream position
/// ("gen_fc_s42_n3"), so results stay attributable inside a big batch.
class net_generator {
public:
    explicit net_generator(std::uint64_t seed, generator_options options = {});

    /// Generates the next net in the stream.
    [[nodiscard]] pn::petri_net next();

    /// Convenience: the next `count` nets.
    [[nodiscard]] std::vector<pn::petri_net> make(std::size_t count);

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    [[nodiscard]] const generator_options& options() const noexcept { return options_; }
    /// Nets generated so far (the stream position).
    [[nodiscard]] std::size_t generated() const noexcept { return generated_; }

private:
    std::uint64_t seed_;
    generator_options options_;
    std::uint64_t state_;
    std::size_t generated_ = 0;
};

} // namespace fcqss::pipeline

#endif // FCQSS_PIPELINE_NET_GENERATOR_HPP
