#include "sdf/static_schedule.hpp"

#include "base/error.hpp"

namespace fcqss::sdf {

std::string to_string(schedule_failure f)
{
    switch (f) {
    case schedule_failure::none: return "none";
    case schedule_failure::inconsistent_rates: return "inconsistent rates";
    case schedule_failure::deadlock: return "deadlock";
    }
    return "unknown";
}

static_schedule compute_static_schedule(const sdf_graph& graph)
{
    static_schedule schedule;
    schedule.repetitions = repetition_vector(graph);
    if (!schedule.repetitions.consistent()) {
        schedule.failure = schedule_failure::inconsistent_rates;
        return schedule;
    }

    const std::size_t n = graph.actor_count();
    std::vector<std::int64_t> remaining = schedule.repetitions.counts;
    std::vector<std::int64_t> tokens(graph.channel_count());
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        tokens[c] = graph.channel_at(c).initial_tokens;
    }

    // Per-actor incoming/outgoing channels for the firing rule.
    std::vector<std::vector<channel_id>> in_channels(n);
    std::vector<std::vector<channel_id>> out_channels(n);
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        const channel& ch = graph.channel_at(c);
        out_channels[ch.producer].push_back(c);
        in_channels[ch.consumer].push_back(c);
    }

    const auto fireable = [&](actor_id a) {
        if (remaining[a] == 0) {
            return false;
        }
        for (channel_id c : in_channels[a]) {
            if (tokens[c] < graph.channel_at(c).consumption) {
                return false;
            }
        }
        return true;
    };

    std::int64_t total_firings = 0;
    for (std::int64_t q : remaining) {
        total_firings += q;
    }
    schedule.firing_order.reserve(static_cast<std::size_t>(total_firings));

    while (total_firings > 0) {
        bool fired = false;
        for (actor_id a = 0; a < n; ++a) {
            if (!fireable(a)) {
                continue;
            }
            for (channel_id c : in_channels[a]) {
                tokens[c] -= graph.channel_at(c).consumption;
            }
            for (channel_id c : out_channels[a]) {
                tokens[c] += graph.channel_at(c).production;
            }
            --remaining[a];
            --total_firings;
            schedule.firing_order.push_back(a);
            fired = true;
            break;
        }
        if (!fired) {
            schedule.failure = schedule_failure::deadlock;
            for (actor_id a = 0; a < n; ++a) {
                if (remaining[a] > 0) {
                    schedule.stalled_actors.push_back(a);
                }
            }
            return schedule;
        }
    }

    // A completed period must restore every channel to its delay count.
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        require_internal(tokens[c] == graph.channel_at(c).initial_tokens,
                         "static_schedule: period did not restore channel state");
    }
    return schedule;
}

std::string to_string(const sdf_graph& graph, const static_schedule& schedule)
{
    std::string text;
    for (std::size_t i = 0; i < schedule.firing_order.size(); ++i) {
        if (i != 0) {
            text += ' ';
        }
        text += graph.actor_name(schedule.firing_order[i]);
    }
    return text;
}

} // namespace fcqss::sdf
