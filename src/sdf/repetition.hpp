// fcqss — sdf/repetition.hpp
// The SDF balance equations: q[producer] * production = q[consumer] *
// consumption for every channel.  The minimal positive integer solution q is
// the repetition vector — the paper's "minimal vector in the one-dimensional
// T-invariant space" for marked graphs (Sec. 2).
#ifndef FCQSS_SDF_REPETITION_HPP
#define FCQSS_SDF_REPETITION_HPP

#include <optional>
#include <vector>

#include "sdf/sdf_graph.hpp"

namespace fcqss::sdf {

/// Outcome of solving the balance equations.
struct repetition_result {
    /// Minimal positive firing counts per actor; empty when inconsistent.
    std::vector<std::int64_t> counts;
    /// For inconsistent graphs: a channel witnessing the rate mismatch.
    std::optional<channel_id> inconsistent_channel;

    [[nodiscard]] bool consistent() const noexcept { return !counts.empty(); }
};

/// Solves the balance equations by rational propagation over each weakly
/// connected component, then scales to the least integer solution.
/// Sample-rate-inconsistent graphs (Lee's terminology) yield
/// inconsistent_channel instead of counts.
[[nodiscard]] repetition_result repetition_vector(const sdf_graph& graph);

} // namespace fcqss::sdf

#endif // FCQSS_SDF_REPETITION_HPP
