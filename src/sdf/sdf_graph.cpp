#include "sdf/sdf_graph.hpp"

#include "base/error.hpp"
#include "pn/builder.hpp"
#include "pn/net_class.hpp"

namespace fcqss::sdf {

actor_id sdf_graph::add_actor(const std::string& name)
{
    if (name.empty()) {
        throw model_error("sdf_graph: empty actor name");
    }
    for (const std::string& existing : actor_names_) {
        if (existing == name) {
            throw model_error("sdf_graph: duplicate actor name '" + name + "'");
        }
    }
    actor_names_.push_back(name);
    return actor_names_.size() - 1;
}

channel_id sdf_graph::add_channel(actor_id producer, actor_id consumer,
                                  std::int64_t production, std::int64_t consumption,
                                  std::int64_t initial_tokens)
{
    if (producer >= actor_count() || consumer >= actor_count()) {
        throw model_error("sdf_graph: channel endpoint out of range");
    }
    if (production <= 0 || consumption <= 0) {
        throw model_error("sdf_graph: rates must be positive");
    }
    if (initial_tokens < 0) {
        throw model_error("sdf_graph: negative initial tokens");
    }
    channels_.push_back({producer, consumer, production, consumption, initial_tokens});
    return channels_.size() - 1;
}

const std::string& sdf_graph::actor_name(actor_id a) const
{
    if (a >= actor_count()) {
        throw model_error("sdf_graph: actor id out of range");
    }
    return actor_names_[a];
}

const channel& sdf_graph::channel_at(channel_id c) const
{
    if (c >= channel_count()) {
        throw model_error("sdf_graph: channel id out of range");
    }
    return channels_[c];
}

pn::petri_net to_petri_net(const sdf_graph& graph)
{
    pn::net_builder builder(graph.name());
    std::vector<pn::transition_id> transitions;
    transitions.reserve(graph.actor_count());
    for (actor_id a = 0; a < graph.actor_count(); ++a) {
        transitions.push_back(builder.add_transition(graph.actor_name(a)));
    }
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        const channel& ch = graph.channel_at(c);
        const pn::place_id place = builder.add_place(
            "ch" + std::to_string(c) + "_" + graph.actor_name(ch.producer) + "_" +
                graph.actor_name(ch.consumer),
            ch.initial_tokens);
        builder.add_arc(transitions[ch.producer], place, ch.production);
        builder.add_arc(place, transitions[ch.consumer], ch.consumption);
    }
    return std::move(builder).build();
}

sdf_graph from_marked_graph(const pn::petri_net& net)
{
    if (!pn::is_marked_graph(net)) {
        throw domain_error("from_marked_graph: '" + net.name() +
                           "' is not a marked graph");
    }
    sdf_graph graph(net.name());
    for (pn::transition_id t : net.transitions()) {
        graph.add_actor(net.transition_name(t));
    }
    for (pn::place_id p : net.places()) {
        const auto& producers = net.producers(p);
        const auto& consumers = net.consumers(p);
        if (producers.size() != 1 || consumers.size() != 1) {
            throw domain_error("from_marked_graph: place '" + net.place_name(p) +
                               "' must have exactly one producer and one consumer");
        }
        graph.add_channel(producers.front().transition.index(),
                          consumers.front().transition.index(),
                          producers.front().weight, consumers.front().weight,
                          net.initial_tokens(p));
    }
    return graph;
}

} // namespace fcqss::sdf
