// fcqss — sdf/buffer_bounds.hpp
// Channel buffer sizing for a static schedule.  Quasi-static and static
// scheduling "can bound the maximum size of those queues and ensure correct
// execution on an embedded system with a finite amount of physical memory"
// (Sec. 1); this module computes those bounds for the static case.
#ifndef FCQSS_SDF_BUFFER_BOUNDS_HPP
#define FCQSS_SDF_BUFFER_BOUNDS_HPP

#include <cstdint>
#include <vector>

#include "sdf/static_schedule.hpp"

namespace fcqss::sdf {

/// Maximum simultaneous token count per channel while executing one period
/// of `schedule` — the buffer capacity a code generator must allocate.
/// Requires schedule.ok().
[[nodiscard]] std::vector<std::int64_t> buffer_bounds(const sdf_graph& graph,
                                                      const static_schedule& schedule);

/// Total memory over all channels, each token occupying `token_bytes`.
[[nodiscard]] std::int64_t total_buffer_bytes(const std::vector<std::int64_t>& bounds,
                                              std::int64_t token_bytes);

} // namespace fcqss::sdf

#endif // FCQSS_SDF_BUFFER_BOUNDS_HPP
