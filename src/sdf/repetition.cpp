#include "sdf/repetition.hpp"

#include <deque>

#include "base/error.hpp"
#include "linalg/checked.hpp"
#include "linalg/rational.hpp"

namespace fcqss::sdf {

using linalg::rational;

repetition_result repetition_vector(const sdf_graph& graph)
{
    const std::size_t n = graph.actor_count();
    repetition_result result;
    if (n == 0) {
        return result;
    }

    // Adjacency: for each actor the incident channels.
    std::vector<std::vector<channel_id>> incident(n);
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        const channel& ch = graph.channel_at(c);
        incident[ch.producer].push_back(c);
        if (ch.consumer != ch.producer) {
            incident[ch.consumer].push_back(c);
        }
    }

    // Propagate rational firing ratios across each weakly connected
    // component, seeding each component's first actor with ratio 1, then
    // scale that component to its least strictly positive integer solution.
    std::vector<std::optional<rational>> ratio(n);
    std::vector<std::int64_t> counts(n, 0);
    for (std::size_t seed = 0; seed < n; ++seed) {
        if (ratio[seed].has_value()) {
            continue;
        }
        std::vector<std::size_t> component{seed};
        ratio[seed] = rational(1);
        std::deque<std::size_t> frontier{seed};
        while (!frontier.empty()) {
            const std::size_t a = frontier.front();
            frontier.pop_front();
            for (channel_id c : incident[a]) {
                const channel& ch = graph.channel_at(c);
                if (ch.producer == ch.consumer) {
                    // Self-loop: consistent iff production == consumption.
                    if (ch.production != ch.consumption) {
                        result.inconsistent_channel = c;
                        result.counts.clear();
                        return result;
                    }
                    continue;
                }
                // Balance: q[prod] * production == q[cons] * consumption.
                const std::size_t known = a;
                const std::size_t other = (ch.producer == a) ? ch.consumer : ch.producer;
                rational implied;
                if (ch.producer == known) {
                    implied = *ratio[known] * rational(ch.production, ch.consumption);
                } else {
                    implied = *ratio[known] * rational(ch.consumption, ch.production);
                }
                if (!ratio[other].has_value()) {
                    ratio[other] = implied;
                    component.push_back(other);
                    frontier.push_back(other);
                } else if (*ratio[other] != implied) {
                    result.inconsistent_channel = c;
                    result.counts.clear();
                    return result;
                }
            }
        }

        std::int64_t denominator_lcm = 1;
        for (std::size_t a : component) {
            denominator_lcm = linalg::lcm64(denominator_lcm, ratio[a]->den());
        }
        std::int64_t numerator_gcd = 0;
        for (std::size_t a : component) {
            counts[a] =
                linalg::checked_mul(ratio[a]->num(), denominator_lcm / ratio[a]->den());
            require_internal(counts[a] > 0, "repetition_vector: non-positive count");
            numerator_gcd = linalg::gcd64(numerator_gcd, counts[a]);
        }
        if (numerator_gcd > 1) {
            for (std::size_t a : component) {
                counts[a] /= numerator_gcd;
            }
        }
    }
    result.counts = std::move(counts);
    return result;
}

} // namespace fcqss::sdf
