// fcqss — sdf/looped_schedule.hpp
// Looped schedules: the compact form of static SDF schedules used by code
// generators since Lee/Messerschmitt — "(4 t1)(2 t2)(1 t3)" instead of the
// flat "t1 t1 t1 t1 t2 t2 t3".  Loop compression trades code size against
// buffer memory: a single-appearance schedule has minimal code (every actor
// appears once) but batches whole bursts, while the flat interleaving
// minimizes buffers.  This is the static-scheduling end of the code/buffer
// tradeoff the paper's Sec. 6 proposes exploring.
#ifndef FCQSS_SDF_LOOPED_SCHEDULE_HPP
#define FCQSS_SDF_LOOPED_SCHEDULE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/static_schedule.hpp"

namespace fcqss::sdf {

/// One element of a looped schedule: either a single actor firing or a loop
/// of `count` repetitions of a body.
struct schedule_node {
    /// Loop trip count; 1 for a plain firing.
    std::int64_t count = 1;
    /// Actor fired when body is empty.
    actor_id actor = 0;
    /// Non-empty = nested loop body.
    std::vector<schedule_node> body;
};

/// A looped schedule.
struct looped_schedule {
    std::vector<schedule_node> nodes;

    /// Number of actor lexemes (the code-size proxy): a single-appearance
    /// schedule has exactly one per actor.
    [[nodiscard]] std::size_t appearance_count() const;
};

/// Compresses a flat firing order by repeated run-length/periodic-block
/// detection.  flatten(compress(s)) == s for every input.
[[nodiscard]] looped_schedule compress(const std::vector<actor_id>& firing_order);

/// Expands a looped schedule back to the flat firing order.
[[nodiscard]] std::vector<actor_id> flatten(const looped_schedule& schedule);

/// Builds the single-appearance schedule "(q0 a0)(q1 a1)..." along a
/// topological order of the graph.  Valid for acyclic SDF graphs (and for
/// graphs whose cycles carry enough initial tokens to fire each actor's
/// full burst); returns an empty schedule when no valid SAS order exists.
[[nodiscard]] looped_schedule single_appearance_schedule(const sdf_graph& graph);

/// True when executing the looped schedule from the initial channel state
/// never underflows a channel and ends where it started.
[[nodiscard]] bool is_admissible(const sdf_graph& graph, const looped_schedule& schedule);

/// Peak channel fills while executing the looped schedule.
[[nodiscard]] std::vector<std::int64_t>
looped_buffer_bounds(const sdf_graph& graph, const looped_schedule& schedule);

/// Renders e.g. "(4 t1) (2 t2) t3".
[[nodiscard]] std::string to_string(const sdf_graph& graph,
                                    const looped_schedule& schedule);

} // namespace fcqss::sdf

#endif // FCQSS_SDF_LOOPED_SCHEDULE_HPP
