// fcqss — sdf/static_schedule.hpp
// Fully static (compile-time) scheduling of SDF graphs, Sec. 2: compute the
// repetition vector, then simulate token flow to produce a periodic
// admissible sequential schedule — a *finite complete cycle* that returns
// every channel to its initial token count.
#ifndef FCQSS_SDF_STATIC_SCHEDULE_HPP
#define FCQSS_SDF_STATIC_SCHEDULE_HPP

#include <optional>
#include <string>
#include <vector>

#include "sdf/repetition.hpp"
#include "sdf/sdf_graph.hpp"

namespace fcqss::sdf {

/// Why static scheduling failed.
enum class schedule_failure {
    none,
    /// Balance equations have no positive solution (rate mismatch).
    inconsistent_rates,
    /// Simulation stalled before completing the repetition vector —
    /// insufficient delays on a cycle.
    deadlock,
};

[[nodiscard]] std::string to_string(schedule_failure f);

/// A static schedule: one period of actor firings.
struct static_schedule {
    std::vector<actor_id> firing_order;
    repetition_result repetitions;
    schedule_failure failure = schedule_failure::none;
    /// When failure == deadlock: the actors still owing firings at the stall.
    std::vector<actor_id> stalled_actors;

    [[nodiscard]] bool ok() const noexcept { return failure == schedule_failure::none; }
};

/// Computes one period.  Firing policy is deterministic (lowest actor id
/// among fireable actors with remaining firings), which reproduces the
/// paper's Fig. 2 schedule t1 t1 t1 t1 t2 t2 t3.
[[nodiscard]] static_schedule compute_static_schedule(const sdf_graph& graph);

/// Renders e.g. "a a b" using actor names.
[[nodiscard]] std::string to_string(const sdf_graph& graph,
                                    const static_schedule& schedule);

} // namespace fcqss::sdf

#endif // FCQSS_SDF_STATIC_SCHEDULE_HPP
