#include "sdf/looped_schedule.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "graph/digraph.hpp"
#include "graph/traversal.hpp"
#include "sdf/repetition.hpp"

namespace fcqss::sdf {

namespace {

std::size_t appearance_count_of(const std::vector<schedule_node>& nodes)
{
    std::size_t count = 0;
    for (const schedule_node& node : nodes) {
        count += node.body.empty() ? 1 : appearance_count_of(node.body);
    }
    return count;
}

void flatten_into(const std::vector<schedule_node>& nodes, std::vector<actor_id>& out)
{
    for (const schedule_node& node : nodes) {
        for (std::int64_t i = 0; i < node.count; ++i) {
            if (node.body.empty()) {
                out.push_back(node.actor);
            } else {
                flatten_into(node.body, out);
            }
        }
    }
}

bool nodes_equal(const schedule_node& a, const schedule_node& b)
{
    if (a.count != b.count || a.body.size() != b.body.size()) {
        return false;
    }
    if (a.body.empty()) {
        return b.body.empty() && a.actor == b.actor;
    }
    for (std::size_t i = 0; i < a.body.size(); ++i) {
        if (!nodes_equal(a.body[i], b.body[i])) {
            return false;
        }
    }
    return true;
}

// One compression pass: merge maximal runs of equal adjacent blocks of
// period 1..max_period into loops.  Returns whether anything changed.
bool compress_pass(std::vector<schedule_node>& nodes)
{
    for (std::size_t period = 1; period <= nodes.size() / 2; ++period) {
        for (std::size_t start = 0; start + 2 * period <= nodes.size(); ++start) {
            // Count repetitions of the block [start, start+period).
            std::size_t repeats = 1;
            while (start + (repeats + 1) * period <= nodes.size()) {
                bool same = true;
                for (std::size_t k = 0; k < period && same; ++k) {
                    same = nodes_equal(nodes[start + k],
                                       nodes[start + repeats * period + k]);
                }
                if (!same) {
                    break;
                }
                ++repeats;
            }
            if (repeats < 2) {
                continue;
            }
            schedule_node loop;
            loop.count = static_cast<std::int64_t>(repeats);
            if (period == 1 && nodes[start].body.empty()) {
                // Collapse runs of a single actor without nesting.
                loop.actor = nodes[start].actor;
                loop.count *= nodes[start].count;
            } else {
                loop.body.assign(
                    nodes.begin() + static_cast<std::ptrdiff_t>(start),
                    nodes.begin() + static_cast<std::ptrdiff_t>(start + period));
            }
            nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(start),
                        nodes.begin() +
                            static_cast<std::ptrdiff_t>(start + repeats * period));
            nodes.insert(nodes.begin() + static_cast<std::ptrdiff_t>(start),
                         std::move(loop));
            return true;
        }
    }
    return false;
}

} // namespace

std::size_t looped_schedule::appearance_count() const
{
    return appearance_count_of(nodes);
}

looped_schedule compress(const std::vector<actor_id>& firing_order)
{
    looped_schedule schedule;
    for (actor_id a : firing_order) {
        schedule_node node;
        node.actor = a;
        schedule.nodes.push_back(node);
    }
    while (compress_pass(schedule.nodes)) {
    }
    return schedule;
}

std::vector<actor_id> flatten(const looped_schedule& schedule)
{
    std::vector<actor_id> out;
    flatten_into(schedule.nodes, out);
    return out;
}

looped_schedule single_appearance_schedule(const sdf_graph& graph)
{
    looped_schedule schedule;
    const repetition_result repetitions = repetition_vector(graph);
    if (!repetitions.consistent()) {
        return schedule;
    }

    // Topological order over the actor dependency graph, ignoring channels
    // with enough delay to cover the consumer's whole burst.
    graph::digraph deps(graph.actor_count());
    for (const channel& ch : graph.channels()) {
        if (ch.producer == ch.consumer) {
            continue;
        }
        const std::int64_t needed =
            repetitions.counts[ch.consumer] * ch.consumption;
        if (ch.initial_tokens >= needed) {
            continue; // the delay alone feeds one full period
        }
        deps.add_edge(ch.producer, ch.consumer);
    }
    const auto order = graph::topological_order(deps);
    if (!order.has_value()) {
        return schedule; // cyclic without sufficient delays: no SAS this way
    }
    for (std::size_t v : *order) {
        schedule_node node;
        node.actor = v;
        node.count = repetitions.counts[v];
        schedule.nodes.push_back(node);
    }
    if (!is_admissible(graph, schedule)) {
        schedule.nodes.clear();
    }
    return schedule;
}

bool is_admissible(const sdf_graph& graph, const looped_schedule& schedule)
{
    std::vector<std::int64_t> tokens(graph.channel_count());
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        tokens[c] = graph.channel_at(c).initial_tokens;
    }
    for (actor_id a : flatten(schedule)) {
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.consumer == a) {
                tokens[c] -= ch.consumption;
                if (tokens[c] < 0) {
                    return false;
                }
            }
        }
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.producer == a) {
                tokens[c] += ch.production;
            }
        }
    }
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        if (tokens[c] != graph.channel_at(c).initial_tokens) {
            return false;
        }
    }
    return true;
}

std::vector<std::int64_t> looped_buffer_bounds(const sdf_graph& graph,
                                               const looped_schedule& schedule)
{
    if (!is_admissible(graph, schedule)) {
        throw domain_error("looped_buffer_bounds: schedule is not admissible");
    }
    std::vector<std::int64_t> tokens(graph.channel_count());
    std::vector<std::int64_t> peaks(graph.channel_count());
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        tokens[c] = graph.channel_at(c).initial_tokens;
        peaks[c] = tokens[c];
    }
    for (actor_id a : flatten(schedule)) {
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.consumer == a) {
                tokens[c] -= ch.consumption;
            }
        }
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.producer == a) {
                tokens[c] += ch.production;
                peaks[c] = std::max(peaks[c], tokens[c]);
            }
        }
    }
    return peaks;
}

namespace {

void render(const sdf_graph& graph, const std::vector<schedule_node>& nodes,
            std::string& out)
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i != 0) {
            out += ' ';
        }
        const schedule_node& node = nodes[i];
        if (node.body.empty()) {
            if (node.count == 1) {
                out += graph.actor_name(node.actor);
            } else {
                out += "(" + std::to_string(node.count) + " " +
                       graph.actor_name(node.actor) + ")";
            }
        } else {
            out += "(" + std::to_string(node.count) + " ";
            render(graph, node.body, out);
            out += ")";
        }
    }
}

} // namespace

std::string to_string(const sdf_graph& graph, const looped_schedule& schedule)
{
    std::string out;
    render(graph, schedule.nodes, out);
    return out;
}

} // namespace fcqss::sdf
