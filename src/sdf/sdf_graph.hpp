// fcqss — sdf/sdf_graph.hpp
// Synchronous Dataflow graphs (Lee/Messerschmitt).  SDF graphs are the
// paper's fully-static special case: they "can be mapped into Marked Graphs
// where actors are transitions and arcs places" (Sec. 2).
#ifndef FCQSS_SDF_SDF_GRAPH_HPP
#define FCQSS_SDF_SDF_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::sdf {

/// Index of an actor within an sdf_graph.
using actor_id = std::size_t;
/// Index of a channel within an sdf_graph.
using channel_id = std::size_t;

/// A FIFO channel: `producer` writes `production` tokens per firing,
/// `consumer` reads `consumption` tokens per firing; `initial_tokens` are
/// the delays present before the first firing.
struct channel {
    actor_id producer = 0;
    actor_id consumer = 0;
    std::int64_t production = 1;
    std::int64_t consumption = 1;
    std::int64_t initial_tokens = 0;
};

/// A static-rate dataflow graph.
class sdf_graph {
public:
    explicit sdf_graph(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    actor_id add_actor(const std::string& name);

    /// Adds a channel; rates must be positive, delays non-negative.
    channel_id add_channel(actor_id producer, actor_id consumer, std::int64_t production,
                           std::int64_t consumption, std::int64_t initial_tokens = 0);

    [[nodiscard]] std::size_t actor_count() const noexcept { return actor_names_.size(); }
    [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }

    [[nodiscard]] const std::string& actor_name(actor_id a) const;
    [[nodiscard]] const channel& channel_at(channel_id c) const;
    [[nodiscard]] const std::vector<channel>& channels() const noexcept
    {
        return channels_;
    }

private:
    std::string name_;
    std::vector<std::string> actor_names_;
    std::vector<channel> channels_;
};

/// Maps an SDF graph onto the equivalent marked-graph Petri net: one
/// transition per actor, one place per channel, arc weights = rates,
/// initial marking = delays.
[[nodiscard]] pn::petri_net to_petri_net(const sdf_graph& graph);

/// Inverse view: interprets a marked-graph net as an SDF graph.  Each place
/// must have exactly one producer and one consumer; places violating this
/// (sources/sinks) are rejected with domain_error.
[[nodiscard]] sdf_graph from_marked_graph(const pn::petri_net& net);

} // namespace fcqss::sdf

#endif // FCQSS_SDF_SDF_GRAPH_HPP
