#include "sdf/buffer_bounds.hpp"

#include "base/error.hpp"
#include "linalg/checked.hpp"

namespace fcqss::sdf {

std::vector<std::int64_t> buffer_bounds(const sdf_graph& graph,
                                        const static_schedule& schedule)
{
    if (!schedule.ok()) {
        throw domain_error("buffer_bounds: schedule is not valid");
    }
    std::vector<std::int64_t> tokens(graph.channel_count());
    std::vector<std::int64_t> bounds(graph.channel_count());
    for (channel_id c = 0; c < graph.channel_count(); ++c) {
        tokens[c] = graph.channel_at(c).initial_tokens;
        bounds[c] = tokens[c];
    }

    for (actor_id a : schedule.firing_order) {
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.consumer == a) {
                tokens[c] -= ch.consumption;
                require_internal(tokens[c] >= 0, "buffer_bounds: negative channel fill");
            }
        }
        for (channel_id c = 0; c < graph.channel_count(); ++c) {
            const channel& ch = graph.channel_at(c);
            if (ch.producer == a) {
                tokens[c] += ch.production;
                if (tokens[c] > bounds[c]) {
                    bounds[c] = tokens[c];
                }
            }
        }
    }
    return bounds;
}

std::int64_t total_buffer_bytes(const std::vector<std::int64_t>& bounds,
                                std::int64_t token_bytes)
{
    std::int64_t total = 0;
    for (std::int64_t b : bounds) {
        total = linalg::checked_add(total, linalg::checked_mul(b, token_bytes));
    }
    return total;
}

} // namespace fcqss::sdf
