#include "svc/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fcqss::svc {

json json::array()
{
    json value;
    value.kind_ = kind::array;
    return value;
}

json json::object()
{
    json value;
    value.kind_ = kind::object;
    return value;
}

bool json::as_bool(bool fallback) const
{
    return kind_ == kind::boolean ? bool_ : fallback;
}

double json::as_number(double fallback) const
{
    return kind_ == kind::number ? number_ : fallback;
}

const std::string& json::as_string() const
{
    static const std::string empty;
    return kind_ == kind::string ? string_ : empty;
}

const json* json::find(std::string_view key) const
{
    for (const member& field : members_) {
        if (field.first == key) {
            return &field.second;
        }
    }
    return nullptr;
}

void json::set(std::string_view key, json value)
{
    kind_ = kind::object;
    for (member& field : members_) {
        if (field.first == key) {
            field.second = std::move(value);
            return;
        }
    }
    members_.emplace_back(std::string(key), std::move(value));
}

void json::push_back(json value)
{
    kind_ = kind::array;
    items_.push_back(std::move(value));
}

void append_escaped(std::string& out, std::string_view text)
{
    for (const char c : text) {
        const auto byte = static_cast<unsigned char>(c);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (byte < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", byte);
                out += buffer;
            } else {
                out += c; // UTF-8 bytes pass through verbatim
            }
        }
    }
}

namespace {

void append_number(std::string& out, double value)
{
    if (!std::isfinite(value)) {
        out += "null"; // JSON has no inf/nan
        return;
    }
    // Integers (the common case: ids, codes, counts) render without a
    // fractional part; everything else gets round-trippable precision.
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.0f", value);
        out += buffer;
    } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", value);
        out += buffer;
    }
}

void append_value(std::string& out, const json& value)
{
    switch (value.type()) {
    case json::kind::null:
        out += "null";
        break;
    case json::kind::boolean:
        out += value.as_bool() ? "true" : "false";
        break;
    case json::kind::number:
        append_number(out, value.as_number());
        break;
    case json::kind::string:
        out += '"';
        append_escaped(out, value.as_string());
        out += '"';
        break;
    case json::kind::array: {
        out += '[';
        bool first = true;
        for (const json& item : value.items()) {
            if (!first) {
                out += ',';
            }
            first = false;
            append_value(out, item);
        }
        out += ']';
        break;
    }
    case json::kind::object: {
        out += '{';
        bool first = true;
        for (const auto& [key, field] : value.members()) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += '"';
            append_escaped(out, key);
            out += "\":";
            append_value(out, field);
        }
        out += '}';
        break;
    }
    }
}

class parser {
public:
    parser(std::string_view text, std::size_t max_depth)
        : text_(text), max_depth_(max_depth)
    {
    }

    json run()
    {
        json value = parse_value(0);
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw json_error("json: " + message + " at byte " + std::to_string(pos_));
    }

    void skip_whitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    json parse_value(std::size_t depth)
    {
        if (depth > max_depth_) {
            fail("nesting deeper than " + std::to_string(max_depth_));
        }
        skip_whitespace();
        const char c = peek();
        switch (c) {
        case '{':
            return parse_object(depth);
        case '[':
            return parse_array(depth);
        case '"':
            return json(parse_string());
        case 't':
            if (consume_literal("true")) {
                return json(true);
            }
            fail("invalid literal");
        case 'f':
            if (consume_literal("false")) {
                return json(false);
            }
            fail("invalid literal");
        case 'n':
            if (consume_literal("null")) {
                return json(nullptr);
            }
            fail("invalid literal");
        default:
            return parse_number();
        }
    }

    json parse_object(std::size_t depth)
    {
        expect('{');
        json value = json::object();
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skip_whitespace();
            if (peek() != '"') {
                fail("expected object key");
            }
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            json field = parse_value(depth + 1);
            // First binding wins: a malicious duplicate cannot shadow a
            // field already validated.
            if (value.find(key) == nullptr) {
                value.set(key, std::move(field));
            }
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == '}') {
                ++pos_;
                return value;
            }
            fail("expected ',' or '}' in object");
        }
    }

    json parse_array(std::size_t depth)
    {
        expect('[');
        json value = json::array();
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.push_back(parse_value(depth + 1));
            skip_whitespace();
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == ']') {
                ++pos_;
                return value;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char escape = text_[pos_++];
            switch (escape) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u':
                append_codepoint(out, parse_hex4());
                break;
            default:
                pos_ -= 2;
                fail("invalid escape");
            }
        }
    }

    unsigned parse_hex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) {
                fail("unterminated \\u escape");
            }
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                --pos_;
                fail("invalid \\u escape digit");
            }
        }
        return code;
    }

    static void append_codepoint(std::string& out, unsigned code)
    {
        // BMP only; surrogates encode as-is into the replacement range is
        // out of scope for a machine protocol — emit UTF-8 for the unit.
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    json parse_number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
            fail("invalid value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos_ = start;
            fail("invalid number");
        }
        return json(value);
    }

    std::string_view text_;
    std::size_t max_depth_;
    std::size_t pos_ = 0;
};

} // namespace

std::string json::dump() const
{
    std::string out;
    append_value(out, *this);
    return out;
}

json json::parse(std::string_view text, std::size_t max_depth)
{
    return parser(text, max_depth).run();
}

} // namespace fcqss::svc
