#include "svc/protocol.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "pn/net_class.hpp"
#include "pnio/parser.hpp"
#include "qss/schedulability.hpp"

namespace fcqss::svc {

namespace {

json event_header(std::string_view event, const std::string& client_id)
{
    json reply = json::object();
    reply.set("event", event);
    if (!client_id.empty()) {
        reply.set("id", client_id);
    }
    return reply;
}

} // namespace

json done_event(const std::string& client_id, const pipeline::synthesis_reply& reply,
                bool include_code)
{
    const pipeline::pipeline_result& result = *reply.result;
    json event = event_header("done", client_id);
    event.set("request", reply.request);
    event.set("name", result.name);
    event.set("status", pipeline::to_string(result.status));
    event.set("code", pipeline::wire_code(result.status));
    event.set("deduplicated", reply.deduplicated);
    event.set("cached", reply.cached);
    if (!result.diagnosis.empty()) {
        event.set("diagnosis", result.diagnosis);
    }
    if (result.status == pipeline::pipeline_status::not_schedulable) {
        event.set("qss_failure", qss::to_string(result.qss_failure));
        event.set("qss_code", qss::wire_code(result.qss_failure));
    }
    event.set("class", pn::to_string(result.klass));
    event.set("places", result.places);
    event.set("transitions", result.transitions);
    event.set("arcs", result.arcs);
    event.set("allocations", result.allocations);
    event.set("cycles", result.cycles);
    event.set("tasks", result.tasks);
    event.set("code_bytes", result.code_bytes);
    event.set("code_lines", result.code_lines);
    event.set("micros", result.timings.total());
    if (include_code && !result.code.empty()) {
        event.set("c", result.code);
    }
    return event;
}

session::session(pipeline::service& service, line_sink sink, session_options options)
    : service_(service), sink_(std::move(sink)), options_(options)
{
}

void session::send_error(std::string_view message)
{
    json event = json::object();
    event.set("event", "error");
    event.set("message", message);
    sink_(event.dump());
}

void session::send_bye()
{
    json event = json::object();
    event.set("event", "bye");
    sink_(event.dump());
}

void session::wait_idle()
{
    std::unique_lock lock(idle_mutex_);
    idle_.wait(lock, [this] { return open_requests_ == 0; });
}

void session::finish_request()
{
    std::lock_guard lock(idle_mutex_);
    if (--open_requests_ == 0) {
        idle_.notify_all();
    }
}

session_verdict session::handle_line(std::string_view line)
{
    // Blank lines are keep-alives, not requests.
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
        return session_verdict::keep_open;
    }

    json request;
    try {
        request = json::parse(line, options_.max_json_depth);
    } catch (const json_error& error) {
        send_error(error.what());
        return session_verdict::keep_open;
    }
    if (!request.is_object()) {
        send_error("request must be a JSON object");
        return session_verdict::keep_open;
    }
    const json* op = request.find("op");
    if (op == nullptr || op->type() != json::kind::string) {
        send_error("request needs a string \"op\" field");
        return session_verdict::keep_open;
    }

    const std::string& name = op->as_string();
    if (name == "synthesize") {
        handle_synthesize(request);
        return session_verdict::keep_open;
    }
    if (name == "explore") {
        handle_explore(request);
        return session_verdict::keep_open;
    }
    const json* id = request.find("id");
    const std::string client_id = id != nullptr ? id->as_string() : std::string();
    if (name == "ping") {
        sink_(event_header("pong", client_id).dump());
        return session_verdict::keep_open;
    }
    if (name == "stats") {
        const pipeline::service::stats_snapshot stats = service_.stats();
        json event = event_header("stats", client_id);
        event.set("submitted", stats.submitted);
        event.set("replied", stats.replied);
        event.set("syntheses", stats.syntheses);
        event.set("inflight_hits", stats.inflight_hits);
        event.set("cache_hits", stats.cache_hits);
        event.set("overloaded", stats.overloaded);
        event.set("parse_failures", stats.parse_failures);
        event.set("queue_depth", service_.queue_depth());
        sink_(event.dump());
        return session_verdict::keep_open;
    }
    if (name == "shutdown") {
        return session_verdict::shutdown;
    }
    send_error("unknown op \"" + name + "\"");
    return session_verdict::keep_open;
}

void session::handle_explore(const json& request)
{
    const json* id = request.find("id");
    const std::string client_id = id != nullptr ? id->as_string() : std::string();
    const json* net_text = request.find("net");
    const json* path = request.find("path");
    const bool has_net = net_text != nullptr && net_text->type() == json::kind::string;
    const bool has_path = path != nullptr && path->type() == json::kind::string;
    if (has_net == has_path) {
        send_error("explore needs exactly one of \"net\" or \"path\"");
        return;
    }
    if (has_path && !options_.allow_paths) {
        send_error("path requests are disabled on this transport");
        return;
    }

    // Client knobs clamp against the server's ceilings — they can only make
    // the run cheaper.  threads and max_bytes come from the server policy
    // untouched: a remote client must not widen the worker pool or the
    // resident-memory budget.
    pn::reachability_options explore = options_.explore;
    if (const json* max_states = request.find("max_states");
        max_states != nullptr && max_states->as_number() >= 1) {
        explore.max_markings = std::min(
            explore.max_markings, static_cast<std::size_t>(max_states->as_number()));
    }
    if (const json* max_tokens = request.find("max_tokens");
        max_tokens != nullptr && max_tokens->as_number() >= 1) {
        explore.max_tokens_per_place =
            std::min(explore.max_tokens_per_place,
                     static_cast<std::int64_t>(max_tokens->as_number()));
    }
    if (const json* order = request.find("order"); order != nullptr) {
        if (order->as_string() == "ordered") {
            explore.order = pn::exploration_order::ordered;
        } else if (order->as_string() == "unordered") {
            explore.order = pn::exploration_order::unordered;
        } else {
            send_error("explore \"order\" must be \"ordered\" or \"unordered\"");
            return;
        }
    }
    if (const json* reduce = request.find("reduce"); reduce != nullptr) {
        if (reduce->as_string() == "none") {
            explore.reduction = pn::reduction_kind::none;
        } else if (reduce->as_string() == "stubborn") {
            explore.reduction = pn::reduction_kind::stubborn;
            explore.strength = pn::reduction_strength::deadlock;
        } else if (reduce->as_string() == "stubborn-ltlx") {
            explore.reduction = pn::reduction_kind::stubborn;
            explore.strength = pn::reduction_strength::ltl_x;
        } else {
            send_error("explore \"reduce\" must be \"none\", \"stubborn\" or "
                       "\"stubborn-ltlx\"");
            return;
        }
    }

    // Synchronous on purpose: the reply is a single small event and the
    // budgets above bound the work, so there is nothing to stream and no
    // worker pool to involve.
    try {
        const pn::petri_net net =
            has_path ? pnio::load_net(path->as_string())
                     : pnio::parse_net(net_text->as_string());
        const pn::state_space space = pn::explore_space(net, explore);
        json event = event_header("explored", client_id);
        event.set("states", space.state_count());
        event.set("edges", space.edge_count());
        event.set("truncated", space.truncated());
        event.set("deadlock", pn::find_deadlock(net, space).has_value());
        event.set("fallback", space.unordered_fallback());
        sink_(event.dump());
    } catch (const std::exception& error) {
        send_error(error.what());
    }
}

void session::handle_synthesize(const json& request)
{
    const json* id = request.find("id");
    const std::string client_id = id != nullptr ? id->as_string() : std::string();
    const json* net = request.find("net");
    const json* path = request.find("path");
    const bool has_net = net != nullptr && net->type() == json::kind::string;
    const bool has_path = path != nullptr && path->type() == json::kind::string;
    if (has_net == has_path) {
        send_error("synthesize needs exactly one of \"net\" or \"path\"");
        return;
    }
    if (has_path && !options_.allow_paths) {
        send_error("path requests are disabled on this transport");
        return;
    }

    const json* name = request.find("name");
    std::string display = name != nullptr ? name->as_string() : std::string();
    pipeline::net_source source =
        has_path ? pipeline::net_source::from_file(path->as_string())
                 : pipeline::net_source::from_text(
                       display.empty() ? (client_id.empty()
                                              ? "net-" + std::to_string(
                                                             ++anonymous_serial_)
                                              : client_id)
                                       : display,
                       net->as_string());
    if (has_path && !display.empty()) {
        source.name = display;
    }

    const bool stream =
        request.find("stream") != nullptr && request.find("stream")->as_bool();

    // The sink and client id outlive the submission: service callbacks run
    // on worker threads after this frame returns.  wait_idle() keeps the
    // session itself alive past the last reply.
    const auto shared_id = std::make_shared<const std::string>(client_id);
    const bool include_code = options_.include_code;
    line_sink sink = sink_;

    // A worker can finish the request before submit() even returns here;
    // callbacks wait on this gate so the "accepted" event always reaches
    // the wire before any stage/done event for the same request.
    const auto announced = std::make_shared<std::promise<void>>();
    const std::shared_future<void> gate = announced->get_future().share();

    {
        std::lock_guard lock(idle_mutex_);
        ++open_requests_;
    }
    pipeline::reply_callback on_reply =
        [this, sink, shared_id, include_code,
         gate](const pipeline::synthesis_reply& reply) {
            gate.wait();
            sink(done_event(*shared_id, reply, include_code).dump());
            finish_request();
        };
    pipeline::service_stage_callback on_stage;
    if (stream) {
        on_stage = [sink, shared_id, gate](pipeline::request_id req,
                                           pipeline::pipeline_stage stage,
                                           const pipeline::pipeline_result& partial) {
            gate.wait();
            json event = event_header("stage", *shared_id);
            event.set("request", req);
            event.set("stage", pipeline::to_string(stage));
            event.set("micros", partial.timings[stage]);
            // Mid-run results hold the default status; only a stage that
            // rejected its net has a meaningful verdict to stream early.
            if (partial.status == pipeline::pipeline_status::not_free_choice ||
                partial.status == pipeline::pipeline_status::not_schedulable) {
                event.set("status", pipeline::to_string(partial.status));
                event.set("code", pipeline::wire_code(partial.status));
            }
            sink(event.dump());
        };
    }

    const pipeline::service::submit_result submitted = service_.submit(
        std::move(source), std::move(on_reply), std::move(on_stage));
    if (submitted.status == pipeline::submit_status::accepted) {
        json event = event_header("accepted", client_id);
        event.set("request", submitted.id);
        sink_(event.dump());
    } else {
        finish_request(); // no reply will come for a rejected submission
        json event = event_header("rejected", client_id);
        event.set("reason", pipeline::to_string(submitted.status));
        sink_(event.dump());
    }
    announced->set_value(); // open the gate: stage/done events may flow now
}

} // namespace fcqss::svc
