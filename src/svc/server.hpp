// fcqss — svc/server.hpp
// Transports for the service protocol.  Two ways to run the daemon:
//
//   serve_stdio()  one session over a pair of file descriptors (stdin/
//                  stdout for `pn_tool serve`; pipes in tests).  Returns
//                  when the peer closes its end or sends {"op":"shutdown"};
//                  either way the service drains before the function
//                  returns, so every accepted request has replied.
//
//   serve_tcp()    a listening socket on 127.0.0.1; one reader thread per
//                  connection, all sharing the same pipeline::service (and
//                  therefore one dedupe table and one bounded queue).  A
//                  shutdown request from any connection stops the listener
//                  and drains.  Path-based synthesize requests are refused
//                  on TCP.
//
// Output discipline: every event is written as one atomic line (a single
// write() of "...\n") under a per-connection mutex — worker-thread done
// events never interleave bytes with reader-thread accepted events.
// Input discipline: lines longer than max_line_bytes are discarded with
// an error event (the remainder of the oversized line is skimmed, the
// connection survives) — an adversarial client cannot balloon memory.
#ifndef FCQSS_SVC_SERVER_HPP
#define FCQSS_SVC_SERVER_HPP

#include <cstddef>

#include "pipeline/service.hpp"
#include "svc/protocol.hpp"

namespace fcqss::svc {

struct server_options {
    session_options session{};
    /// Bound on one request line; longer lines become error events.
    std::size_t max_line_bytes = 16u << 20;
};

/// Runs one protocol session over raw descriptors; blocks until EOF or
/// shutdown, then drains `service`.  Returns 0 on clean shutdown/EOF,
/// 1 on descriptor I/O failure.
int serve_stdio(pipeline::service& service, int in_fd, int out_fd,
                const server_options& options = {});

/// Listens on 127.0.0.1:`port` (port 0 picks a free port; the bound port
/// is reported through `bound_port` when non-null before accepting).
/// Blocks until a client sends shutdown, then drains.  Returns 0 on clean
/// shutdown, 1 when the socket could not be created/bound.
int serve_tcp(pipeline::service& service, unsigned short port,
              const server_options& options = {},
              unsigned short* bound_port = nullptr);

} // namespace fcqss::svc

#endif // FCQSS_SVC_SERVER_HPP
