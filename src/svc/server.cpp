#include "svc/server.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fcqss::svc {

namespace {

/// Writes one "line\n" atomically with respect to other writers on the
/// same sink (the per-sink mutex serializes whole lines, and the payload
/// is assembled first so one write() call usually suffices).
class line_writer {
public:
    explicit line_writer(int fd) : fd_(fd) {}

    bool write_line(const std::string& line)
    {
        std::string payload = line;
        payload += '\n';
        std::lock_guard lock(mutex_);
        std::size_t sent = 0;
        while (sent < payload.size()) {
            const ssize_t n =
                ::write(fd_, payload.data() + sent, payload.size() - sent);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                failed_.store(true, std::memory_order_relaxed);
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    [[nodiscard]] bool failed() const
    {
        return failed_.load(std::memory_order_relaxed);
    }

private:
    int fd_;
    std::mutex mutex_;
    std::atomic<bool> failed_{false};
};

/// A request line can carry a whole `.pn` net, so lines are buffered up to
/// options.max_line_bytes; past that the rest of the line is skimmed and
/// the client gets one error event instead of an OOM.
class line_reader {
public:
    line_reader(int fd, std::size_t max_line_bytes)
        : fd_(fd), max_line_bytes_(max_line_bytes)
    {
    }

    enum class status { line, oversized, eof, error };

    status next(std::string& line)
    {
        line.clear();
        bool oversized = false;
        while (true) {
            while (scan_ < buffer_.size()) {
                const char c = buffer_[scan_++];
                if (c == '\n') {
                    // Shift out the consumed prefix in one move per line.
                    buffer_.erase(0, scan_);
                    scan_ = 0;
                    return oversized ? status::oversized : status::line;
                }
                if (!oversized) {
                    line += c;
                    if (line.size() > max_line_bytes_) {
                        line.clear();
                        oversized = true;
                    }
                }
            }
            buffer_.clear();
            scan_ = 0;
            char chunk[65536];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n == 0) {
                return status::eof; // a final unterminated line is dropped
            }
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                return status::error;
            }
            buffer_.assign(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    int fd_;
    std::size_t max_line_bytes_;
    std::string buffer_;
    std::size_t scan_ = 0;
};

/// SIGPIPE would kill the daemon when a client disconnects mid-reply;
/// writes report EPIPE instead.
void ignore_sigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

/// Drives one session over a reader/writer pair until EOF, I/O failure,
/// or a shutdown request.  Returns the verdict of the last handled line.
session_verdict pump(session& sess, line_reader& reader, const line_writer& writer)
{
    std::string line;
    while (true) {
        switch (reader.next(line)) {
        case line_reader::status::line:
            if (sess.handle_line(line) == session_verdict::shutdown) {
                return session_verdict::shutdown;
            }
            break;
        case line_reader::status::oversized:
            sess.send_error("request line too long");
            break;
        case line_reader::status::eof:
        case line_reader::status::error:
            return session_verdict::keep_open;
        }
        if (writer.failed()) {
            return session_verdict::keep_open; // peer gone; stop reading
        }
    }
}

} // namespace

int serve_stdio(pipeline::service& service, int in_fd, int out_fd,
                const server_options& options)
{
    ignore_sigpipe();
    line_writer writer(out_fd);
    session sess(service, [&writer](const std::string& line) {
        writer.write_line(line);
    }, options.session);

    line_reader reader(in_fd, options.max_line_bytes);
    const session_verdict verdict = pump(sess, reader, writer);

    // EOF and shutdown end the same way: no further intake from this
    // transport, every accepted request replies, then the stream closes.
    service.drain();
    if (verdict == session_verdict::shutdown) {
        sess.send_bye();
    }
    return writer.failed() ? 1 : 0;
}

int serve_tcp(pipeline::service& service, unsigned short port,
              const server_options& options, unsigned short* bound_port)
{
    ignore_sigpipe();

    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        return 1;
    }
    const int reuse = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port);
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listener, 16) != 0) {
        ::close(listener);
        return 1;
    }
    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t length = sizeof bound;
        if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                          &length) == 0) {
            *bound_port = ntohs(bound.sin_port);
        }
    }

    // Remote peers must not read the server's filesystem.
    server_options tcp_options = options;
    tcp_options.session.allow_paths = false;

    std::atomic<bool> stopping{false};
    std::vector<std::jthread> connections; // touched by the accept loop only

    while (true) {
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR && !stopping.load(std::memory_order_acquire)) {
                continue;
            }
            break; // listener was shut down by the shutdown connection
        }
        if (stopping.load(std::memory_order_acquire)) {
            ::close(conn);
            continue;
        }
        connections.emplace_back([&service, &stopping, listener, conn,
                                  tcp_options] {
            line_writer writer(conn);
            session sess(service, [&writer](const std::string& line) {
                writer.write_line(line);
            }, tcp_options.session);
            line_reader reader(conn, tcp_options.max_line_bytes);
            const session_verdict verdict = pump(sess, reader, writer);
            if (verdict == session_verdict::shutdown) {
                stopping.store(true, std::memory_order_release);
                ::shutdown(listener, SHUT_RDWR); // wake the accept loop
                service.drain();
                sess.send_bye();
            }
            // In-flight replies still target this fd; closing before they
            // land would hand their bytes to whoever reuses the number.
            sess.wait_idle();
            ::close(conn);
        });
    }

    connections.clear(); // join every connection (each waited idle already)
    service.drain();     // no-op when a shutdown connection already drained
    ::close(listener);
    return 0;
}

} // namespace fcqss::svc
