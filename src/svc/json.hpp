// fcqss — svc/json.hpp
// Minimal JSON for the service protocol: one value type, a strict parser
// with nesting/size discipline, and a compact writer.  The protocol is
// line-delimited JSON over untrusted descriptors, so the parser is the
// first thing adversarial bytes hit — it never recurses past
// `max_depth`, never reads past the input, and reports every syntax
// problem as json_error (a base::parse_error) with a byte offset.
//
// Objects preserve insertion order (replies render fields in a stable,
// documented order) and keep the first binding of a duplicated key.
// Numbers are doubles, which covers every value the protocol carries
// (request ids fit 53 bits by construction).
#ifndef FCQSS_SVC_JSON_HPP
#define FCQSS_SVC_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/error.hpp"

namespace fcqss::svc {

/// Syntax or nesting violation in JSON text; `what()` carries the byte
/// offset of the problem.
class json_error : public fcqss::error {
public:
    using fcqss::error::error;
};

class json {
public:
    enum class kind { null, boolean, number, string, array, object };

    using member = std::pair<std::string, json>;

    json() = default;
    json(std::nullptr_t) {}
    json(bool value) : kind_(kind::boolean), bool_(value) {}
    json(double value) : kind_(kind::number), number_(value) {}
    json(int value) : kind_(kind::number), number_(value) {}
    json(std::uint64_t value)
        : kind_(kind::number), number_(static_cast<double>(value))
    {
    }
    json(std::string value) : kind_(kind::string), string_(std::move(value)) {}
    json(std::string_view value) : kind_(kind::string), string_(value) {}
    json(const char* value) : kind_(kind::string), string_(value) {}

    [[nodiscard]] static json array();
    [[nodiscard]] static json object();

    [[nodiscard]] kind type() const noexcept { return kind_; }
    [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == kind::object; }

    // Typed accessors; defaulted reads make optional protocol fields easy.
    [[nodiscard]] bool as_bool(bool fallback = false) const;
    [[nodiscard]] double as_number(double fallback = 0) const;
    [[nodiscard]] const std::string& as_string() const; // empty if not a string

    [[nodiscard]] const std::vector<json>& items() const { return items_; }
    [[nodiscard]] const std::vector<member>& members() const { return members_; }

    /// Object field lookup (first binding); nullptr when absent or when
    /// this value is not an object.
    [[nodiscard]] const json* find(std::string_view key) const;

    /// Object field assignment: overwrites the first existing binding or
    /// appends a new one (insertion order is what dump() renders).
    void set(std::string_view key, json value);

    /// Array append.
    void push_back(json value);

    /// Compact single-line rendering (no spaces, \uXXXX for control
    /// characters) — one dump() per protocol line.
    [[nodiscard]] std::string dump() const;

    /// Strict parse of exactly one JSON value spanning the whole input
    /// (trailing non-whitespace is an error).  Throws json_error.
    [[nodiscard]] static json parse(std::string_view text,
                                    std::size_t max_depth = 32);

private:
    kind kind_ = kind::null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<json> items_;
    std::vector<member> members_;
};

/// Escapes `text` into a JSON string literal body (no surrounding quotes).
void append_escaped(std::string& out, std::string_view text);

} // namespace fcqss::svc

#endif // FCQSS_SVC_JSON_HPP
