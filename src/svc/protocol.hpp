// fcqss — svc/protocol.hpp
// The service wire protocol: line-delimited JSON, one request object per
// input line, one event object per output line.  A `session` binds one
// pipeline::service to one line sink and turns request lines into
// submissions and service callbacks into reply lines.  The session is
// transport-agnostic — the server layer (svc/server.hpp) feeds it lines
// from stdio or a socket; tests feed it strings directly.
//
// Requests (fields beyond `op` are op-specific; unknown fields ignored):
//
//   {"op":"synthesize","id":"r1","net":"<.pn text>","stream":true}
//   {"op":"synthesize","id":"r2","path":"examples/nets/choice.pn"}
//   {"op":"explore","id":"x1","net":"<.pn text>","max_states":5000,
//    "max_tokens":64,"order":"unordered","reduce":"stubborn"}
//   {"op":"ping","id":"p"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
//   `id` is an arbitrary client string echoed verbatim on every event the
//   request causes.  `net` is inline `.pn` text; `path` loads from the
//   server's filesystem; exactly one of the two.  `stream` (default
//   false) opts into per-stage progress events.
//
//   `explore` runs state-space exploration synchronously on the session
//   thread and replies with one `explored` event.  The client may tighten
//   `max_states` / `max_tokens` (clamped to the server's ceilings, never
//   widened) and pick `order` (ordered|unordered) and `reduce`
//   (none|stubborn|stubborn-ltlx); thread count and the resident-memory
//   budget (--max-bytes) are server policy and not negotiable over the
//   wire.
//
// Events (`event` discriminates; `id` echoes the client id when given):
//
//   {"event":"accepted","id":"r1","request":7}
//   {"event":"stage","id":"r1","request":7,"stage":"classify","micros":12}
//   {"event":"done","id":"r1","request":7,"status":"ok","code":0,
//    "deduplicated":false,"cached":false,...,"c":"<generated C>"}
//   {"event":"explored","id":"x1","states":412,"edges":988,
//    "truncated":false,"deadlock":false,"fallback":false}
//   {"event":"rejected","id":"r9","reason":"overloaded"}   // backpressure
//   {"event":"error","message":"..."}                      // malformed line
//   {"event":"pong","id":"p"}
//   {"event":"stats","submitted":...,"syntheses":...,...}
//   {"event":"bye"}                                        // drain complete
//
// Backpressure contract: `accepted` and `rejected` are synchronous — a
// client that waits for one of them after each submission can never
// overrun the queue; a client that pipelines submissions must handle
// `rejected` with reason "overloaded" by retrying later.  `done` events
// arrive asynchronously, in completion (not submission) order; the
// "status" / "code" pair uses the same stable wire mapping as CLI exit
// codes (pipeline::wire_code).
#ifndef FCQSS_SVC_PROTOCOL_HPP
#define FCQSS_SVC_PROTOCOL_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "pipeline/service.hpp"
#include "pn/reachability.hpp"
#include "svc/json.hpp"

namespace fcqss::svc {

/// Writes one complete reply line (no trailing newline in the argument).
/// Must be callable concurrently: done/stage events fire on the service's
/// worker threads while the session thread emits accepted/error events.
using line_sink = std::function<void(const std::string& line)>;

struct session_options {
    /// Attach the generated C to done events ("c" field).  Off keeps
    /// replies small when callers only want verdicts.
    bool include_code = true;
    /// Allow {"op":"synthesize","path":...} to read server-side files.
    /// Off (e.g. for TCP) rejects path requests with an error event.
    bool allow_paths = true;
    /// Nesting bound handed to the JSON parser.
    std::size_t max_json_depth = 32;
    /// Server-side exploration policy for {"op":"explore"}.  `max_markings`
    /// and `max_tokens_per_place` are ceilings a client may tighten but
    /// never raise; `threads` and `max_bytes` (the resident arena budget —
    /// pn_tool serve --max-bytes) are applied as-is and are not exposed on
    /// the wire.
    pn::reachability_options explore{};
};

/// What a handled line asks the transport to do next.
enum class session_verdict {
    keep_open, ///< keep reading lines
    shutdown,  ///< shutdown requested: drain the service, send bye, close
};

class session {
public:
    session(pipeline::service& service, line_sink sink,
            session_options options = {});

    /// Parses and executes one request line.  Malformed input produces an
    /// error event and keeps the connection open — one bad request never
    /// kills the stream.  Thread-compatible: call from one reader thread.
    session_verdict handle_line(std::string_view line);

    /// Emits the final {"event":"bye"} after the caller drained the
    /// service (the session cannot drain itself: the service is shared
    /// between transports).
    void send_bye();

    /// Emits an error event (used by transports for oversized lines).
    void send_error(std::string_view message);

    /// Blocks until every request this session submitted has replied.
    /// Transports call this before closing the sink's descriptor — a done
    /// event must never race a close (and a reused fd).  The session must
    /// outlive its in-flight replies; waiting here guarantees that too.
    void wait_idle();

private:
    void handle_synthesize(const json& request);
    void handle_explore(const json& request);
    void finish_request();

    pipeline::service& service_;
    line_sink sink_;
    session_options options_;
    std::uint64_t anonymous_serial_ = 0;

    std::mutex idle_mutex_;
    std::condition_variable idle_;
    std::size_t open_requests_ = 0;
};

/// Renders one terminal reply as a protocol event object — exposed so the
/// CLI batch path and tests can produce/verify the exact wire form.
[[nodiscard]] json done_event(const std::string& client_id,
                              const pipeline::synthesis_reply& reply,
                              bool include_code);

} // namespace fcqss::svc

#endif // FCQSS_SVC_PROTOCOL_HPP
