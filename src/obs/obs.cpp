#include "obs/obs.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace fcqss::obs {

namespace {

/// One span event, fully materialized at span destruction.  Name and arg
/// keys are string literals: the pointers are stored, never the bytes.
struct trace_event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    const char* keys[2];
    std::int64_t values[2];
};

/// Per-thread event buffer: the owning thread appends and release-publishes
/// `count`; dumpers acquire-load `count` and read only below it.  `events`
/// is sized once at registration and never reallocates, so concurrent
/// readers never chase a moving buffer.
struct thread_ring {
    static constexpr std::size_t capacity = 8192;

    explicit thread_ring(std::uint32_t tid_) : tid(tid_) { events.resize(capacity); }

    std::uint32_t tid;
    std::vector<trace_event> events;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
};

struct registry {
    std::mutex mutex;
    // deques: references handed out by get_* stay valid across growth.
    std::deque<counter> counters;
    std::deque<gauge> gauges;
    std::deque<histogram> histograms;
    std::unordered_map<std::string, counter*> counter_names;
    std::unordered_map<std::string, gauge*> gauge_names;
    std::unordered_map<std::string, histogram*> histogram_names;
    // Rings are owned here for the life of the process (a worker thread's
    // events must survive the thread); cleared-not-freed on reset().
    std::vector<std::unique_ptr<thread_ring>> rings;
};

registry& reg()
{
    static registry* instance = new registry; // never destroyed: spans may
    return *instance;                         // record during static teardown
}

std::atomic<std::uint64_t> g_trace_epoch_ns{0};

thread_local thread_ring* t_ring = nullptr;

thread_ring& local_ring()
{
    if (t_ring == nullptr) {
        registry& r = reg();
        const std::lock_guard lock(r.mutex);
        r.rings.push_back(
            std::make_unique<thread_ring>(static_cast<std::uint32_t>(r.rings.size())));
        t_ring = r.rings.back().get();
    }
    return *t_ring;
}

void json_escape_into(std::string& out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

namespace detail {

std::size_t thread_stripe() noexcept
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % counter::stripe_count;
    return stripe;
}

} // namespace detail

void set_stats_enabled(bool on) noexcept
{
    detail::g_stats.store(compiled_in && on, std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept
{
    if (compiled_in && on) {
        std::uint64_t expected = 0;
        g_trace_epoch_ns.compare_exchange_strong(expected, now_ns(),
                                                 std::memory_order_relaxed);
    }
    detail::g_tracing.store(compiled_in && on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void histogram::record(std::uint64_t sample) noexcept
{
    if (!stats_enabled()) {
        return;
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t histogram::quantile(double q) const noexcept
{
    const std::uint64_t total = count();
    if (total == 0) {
        return 0;
    }
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        cumulative += buckets_[b].load(std::memory_order_relaxed);
        if (cumulative > rank) {
            return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        }
    }
    return ~std::uint64_t{0};
}

// The three registries share this shape; the bodies stay in the friend
// functions because they write the metrics' private name/unit fields.
#define FCQSS_OBS_GET_METRIC(pool, names)                                                \
    registry& r = reg();                                                                 \
    const std::lock_guard lock(r.mutex);                                                 \
    const auto it = r.names.find(std::string(name));                                     \
    if (it != r.names.end()) {                                                           \
        return *it->second;                                                              \
    }                                                                                    \
    auto& metric = r.pool.emplace_back();                                                \
    metric.name_ = std::string(name);                                                    \
    metric.unit_ = std::string(unit);                                                    \
    r.names.emplace(metric.name_, &metric);                                              \
    return metric

counter& get_counter(std::string_view name, std::string_view unit)
{
    FCQSS_OBS_GET_METRIC(counters, counter_names);
}

gauge& get_gauge(std::string_view name, std::string_view unit)
{
    FCQSS_OBS_GET_METRIC(gauges, gauge_names);
}

histogram& get_histogram(std::string_view name, std::string_view unit)
{
    FCQSS_OBS_GET_METRIC(histograms, histogram_names);
}

#undef FCQSS_OBS_GET_METRIC

void span::record() noexcept
{
    const std::uint64_t end = now_ns();
    thread_ring& ring = local_ring();
    const std::size_t at = ring.count.load(std::memory_order_relaxed);
    if (at >= thread_ring::capacity) {
        ring.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    trace_event& event = ring.events[at];
    event.name = name_;
    event.start_ns = start_;
    event.dur_ns = end - start_;
    event.keys[0] = keys_[0];
    event.keys[1] = keys_[1];
    event.values[0] = values_[0];
    event.values[1] = values_[1];
    ring.count.store(at + 1, std::memory_order_release);
}

std::vector<metric> snapshot()
{
    registry& r = reg();
    const std::lock_guard lock(r.mutex);
    std::vector<metric> rows;
    rows.reserve(r.counters.size() + r.gauges.size() + 5 * r.histograms.size());
    for (const counter& c : r.counters) {
        rows.push_back({c.name(), c.unit(), static_cast<double>(c.value()), true});
    }
    for (const gauge& g : r.gauges) {
        rows.push_back({g.name(), g.unit(), g.value(), false});
    }
    for (const histogram& h : r.histograms) {
        const std::uint64_t count = h.count();
        const std::uint64_t sum = h.sum();
        rows.push_back({h.name() + ".count", "count", static_cast<double>(count), true});
        rows.push_back({h.name() + ".sum", h.unit(), static_cast<double>(sum), true});
        rows.push_back({h.name() + ".mean", h.unit(),
                        count == 0 ? 0.0
                                   : static_cast<double>(sum) /
                                         static_cast<double>(count),
                        false});
        rows.push_back({h.name() + ".p50", h.unit(),
                        static_cast<double>(h.quantile(0.50)), true});
        rows.push_back({h.name() + ".p99", h.unit(),
                        static_cast<double>(h.quantile(0.99)), true});
    }
    return rows;
}

std::string metrics_jsonl(std::string_view bench)
{
    std::string out;
    for (const metric& row : snapshot()) {
        out += "{\"bench\":\"";
        json_escape_into(out, bench);
        out += "\",\"label\":\"";
        json_escape_into(out, row.name);
        out += "\",\"unit\":\"";
        json_escape_into(out, row.unit);
        out += "\",\"value\":\"";
        char buffer[48];
        if (row.integral) {
            std::snprintf(buffer, sizeof buffer, "%.0f", row.value);
        } else {
            std::snprintf(buffer, sizeof buffer, "%.6g", row.value);
        }
        out += buffer;
        out += "\"}\n";
    }
    return out;
}

std::string chrome_trace_json()
{
    registry& r = reg();
    const std::lock_guard lock(r.mutex);
    const std::uint64_t epoch = g_trace_epoch_ns.load(std::memory_order_relaxed);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buffer[96];
    for (const std::unique_ptr<thread_ring>& ring : r.rings) {
        const std::size_t count = ring->count.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < count; ++i) {
            const trace_event& event = ring->events[i];
            if (!first) {
                out += ",";
            }
            first = false;
            out += "\n{\"name\":\"";
            json_escape_into(out, event.name);
            const double ts =
                static_cast<double>(event.start_ns > epoch ? event.start_ns - epoch
                                                           : 0) /
                1000.0;
            const double dur = static_cast<double>(event.dur_ns) / 1000.0;
            std::snprintf(buffer, sizeof buffer,
                          "\",\"cat\":\"fcqss\",\"ph\":\"X\",\"ts\":%.3f,"
                          "\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                          ts, dur, ring->tid);
            out += buffer;
            if (event.keys[0] != nullptr) {
                out += ",\"args\":{";
                for (std::size_t k = 0; k < 2 && event.keys[k] != nullptr; ++k) {
                    if (k != 0) {
                        out += ",";
                    }
                    out += "\"";
                    json_escape_into(out, event.keys[k]);
                    std::snprintf(buffer, sizeof buffer, "\":%lld",
                                  static_cast<long long>(event.values[k]));
                    out += buffer;
                }
                out += "}";
            }
            out += "}";
        }
    }
    out += "\n]}\n";
    return out;
}

std::size_t trace_event_count()
{
    registry& r = reg();
    const std::lock_guard lock(r.mutex);
    std::size_t total = 0;
    for (const std::unique_ptr<thread_ring>& ring : r.rings) {
        total += ring->count.load(std::memory_order_acquire);
    }
    return total;
}

std::size_t trace_dropped_count()
{
    registry& r = reg();
    const std::lock_guard lock(r.mutex);
    std::size_t total = 0;
    for (const std::unique_ptr<thread_ring>& ring : r.rings) {
        total += ring->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

void reset()
{
    registry& r = reg();
    const std::lock_guard lock(r.mutex);
    for (counter& c : r.counters) {
        for (counter::stripe& s : c.stripes_) {
            s.v.store(0, std::memory_order_relaxed);
        }
    }
    for (gauge& g : r.gauges) {
        g.value_.store(0.0, std::memory_order_relaxed);
    }
    for (histogram& h : r.histograms) {
        h.count_.store(0, std::memory_order_relaxed);
        h.sum_.store(0, std::memory_order_relaxed);
        for (std::atomic<std::uint64_t>& bucket : h.buckets_) {
            bucket.store(0, std::memory_order_relaxed);
        }
    }
    for (const std::unique_ptr<thread_ring>& ring : r.rings) {
        ring->count.store(0, std::memory_order_relaxed);
        ring->dropped.store(0, std::memory_order_relaxed);
    }
    g_trace_epoch_ns.store(tracing_enabled() ? now_ns() : 0,
                           std::memory_order_relaxed);
}

} // namespace fcqss::obs
