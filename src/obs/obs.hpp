// fcqss — obs/obs.hpp
// Zero-overhead-when-off telemetry for the whole stack: the engines, the
// executor and the batch pipeline all report through this one module, and
// one snapshot serializes everything to a stable JSONL schema (the same
// {"bench","label","value"} rows the bench binaries emit, so
// tools/bench_diff.py can diff engine internals exactly like throughput).
//
// Three layers:
//
//   counters / gauges / histograms
//       Named, registered once, process-global.  A counter is an array of
//       cache-line-padded per-thread-stripe atomics: an instrumented hot
//       path costs one relaxed fetch_add when stats are on and one
//       predicted branch (a relaxed load of the global enable flag) when
//       they are off; totals are aggregated only at snapshot() time, so no
//       increment ever contends on a shared line with a reader.  Hot loops
//       that want literally zero per-event cost accumulate into locals and
//       add() once per batch (the engines flush per level / per run).
//
//   spans
//       RAII stage timers.  Construction records a steady-clock start,
//       destruction appends one (name, tid, start, dur, args) event to a
//       lock-free per-thread ring buffer (single writer, release-published
//       count, never reallocated), only when tracing is enabled.
//       chrome_trace_json() dumps every thread's events as Chrome
//       trace-event JSON ("X" complete events), loadable in Perfetto /
//       chrome://tracing.  Span names must be string literals (the pointer
//       is stored, not the bytes).
//
//   snapshot + sinks
//       snapshot() aggregates every metric into (name, unit, value) rows in
//       registration order; metrics_jsonl() serializes them one JSON object
//       per line.  Both may run concurrently with instrumented threads (all
//       reads are relaxed atomic loads); chrome_trace_json() may run
//       concurrently too but only sees fully published events.
//
// Toggles: compile-time FCQSS_OBS_ENABLED (defining it to 0 compiles every
// instrumentation body out entirely) and the runtime flags
// set_stats_enabled / set_tracing_enabled, both default-off.  With both
// flags off the per-site cost is the branch alone — the CI bench gate holds
// the on-but-idle build to < 2% states/s overhead on top of that.
#ifndef FCQSS_OBS_OBS_HPP
#define FCQSS_OBS_OBS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef FCQSS_OBS_ENABLED
#define FCQSS_OBS_ENABLED 1
#endif

namespace fcqss::obs {

inline constexpr bool compiled_in = FCQSS_OBS_ENABLED != 0;

namespace detail {

inline std::atomic<bool> g_stats{false};
inline std::atomic<bool> g_tracing{false};

/// Stripe index of the calling thread (assigned once per thread, stable).
[[nodiscard]] std::size_t thread_stripe() noexcept;

} // namespace detail

/// True when counter/gauge/histogram updates are being collected.
[[nodiscard]] inline bool stats_enabled() noexcept
{
    return compiled_in && detail::g_stats.load(std::memory_order_relaxed);
}

/// True when spans are being recorded into the trace rings.
[[nodiscard]] inline bool tracing_enabled() noexcept
{
    return compiled_in && detail::g_tracing.load(std::memory_order_relaxed);
}

void set_stats_enabled(bool on) noexcept;
void set_tracing_enabled(bool on) noexcept;

/// Monotonic nanoseconds (steady clock), the time base of all spans.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// A monotonically increasing sum, striped across threads.  add() is exact
/// under any interleaving: stripes are atomics, threads that share a stripe
/// still fetch_add.
class counter {
public:
    static constexpr std::size_t stripe_count = 16;

    void add(std::uint64_t delta) noexcept
    {
        if (!stats_enabled()) {
            return;
        }
        stripes_[detail::thread_stripe()].v.fetch_add(delta,
                                                      std::memory_order_relaxed);
    }

    /// Sum over all stripes (racy-but-exact: every finished add is seen).
    [[nodiscard]] std::uint64_t value() const noexcept
    {
        std::uint64_t sum = 0;
        for (const stripe& s : stripes_) {
            sum += s.v.load(std::memory_order_relaxed);
        }
        return sum;
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

private:
    friend counter& get_counter(std::string_view, std::string_view);
    friend void reset();

    struct alignas(64) stripe {
        std::atomic<std::uint64_t> v{0};
    };

    stripe stripes_[stripe_count];
    std::string name_;
    std::string unit_;
};

/// A last-write or running-max double (set / set_max), one atomic cell.
class gauge {
public:
    void set(double value) noexcept
    {
        if (stats_enabled()) {
            value_.store(value, std::memory_order_relaxed);
        }
    }

    /// Raises the gauge to `value` if it is larger (high-water marks).
    void set_max(double value) noexcept
    {
        if (!stats_enabled()) {
            return;
        }
        double seen = value_.load(std::memory_order_relaxed);
        while (value > seen && !value_.compare_exchange_weak(
                                   seen, value, std::memory_order_relaxed)) {
        }
    }

    [[nodiscard]] double value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

private:
    friend gauge& get_gauge(std::string_view, std::string_view);
    friend void reset();

    std::atomic<double> value_{0.0};
    std::string name_;
    std::string unit_;
};

/// Power-of-two-bucket histogram of non-negative samples: bucket b counts
/// values whose bit width is b (0 -> bucket 0, 1 -> 1, 2..3 -> 2, ...).
/// Buckets are plain atomics (no striping): histograms instrument coarse
/// events, not per-probe loops.
class histogram {
public:
    static constexpr std::size_t bucket_count = 64;

    void record(std::uint64_t sample) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }
    /// Upper bound of the bucket holding quantile q in [0, 1].
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& unit() const noexcept { return unit_; }

private:
    friend histogram& get_histogram(std::string_view, std::string_view);
    friend void reset();

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> buckets_[bucket_count]{};
    std::string name_;
    std::string unit_;
};

/// Returns the metric registered under `name`, creating it on first use
/// (mutex-guarded; cache the reference at hot sites).  References stay
/// valid for the life of the process — reset() zeroes values, it never
/// removes registrations.
[[nodiscard]] counter& get_counter(std::string_view name,
                                   std::string_view unit = "count");
[[nodiscard]] gauge& get_gauge(std::string_view name, std::string_view unit = "");
[[nodiscard]] histogram& get_histogram(std::string_view name,
                                       std::string_view unit = "");

/// RAII stage/phase timer.  Does nothing unless tracing was enabled at
/// construction.  `name` (and arg keys) must be string literals.
class span {
public:
    explicit span(const char* name) noexcept
    {
        if (tracing_enabled()) {
            name_ = name;
            start_ = now_ns();
        }
    }

    span(const char* name, const char* key, std::int64_t value) noexcept : span(name)
    {
        arg(key, value);
    }

    span(const span&) = delete;
    span& operator=(const span&) = delete;

    ~span()
    {
        if (name_ != nullptr) {
            record();
        }
    }

    /// Attaches up to two (key, value) args, shown in the trace viewer.
    /// May be called any time before destruction (e.g. with counts known
    /// only at the end of the stage).
    void arg(const char* key, std::int64_t value) noexcept
    {
        if (name_ == nullptr) {
            return;
        }
        for (std::size_t i = 0; i < 2; ++i) {
            if (keys_[i] == nullptr || keys_[i] == key) {
                keys_[i] = key;
                values_[i] = value;
                return;
            }
        }
    }

private:
    void record() noexcept;

    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
    const char* keys_[2]{};
    std::int64_t values_[2]{};
};

/// One aggregated metric row of snapshot().
struct metric {
    std::string name;
    std::string unit;
    double value = 0;
    bool integral = true; ///< render without decimals
};

/// Aggregates every registered metric, in registration order (counters,
/// then gauges, then histograms — each histogram expands to .count / .sum /
/// .mean / .p50 / .p99 rows).  Safe to call while instrumented threads run.
[[nodiscard]] std::vector<metric> snapshot();

/// snapshot() serialized one JSON object per line, in the bench-row schema:
///   {"bench":"<bench>","label":"<name>","unit":"<unit>","value":"<num>"}
[[nodiscard]] std::string metrics_jsonl(std::string_view bench = "obs");

/// Every recorded span as Chrome trace-event JSON (a {"traceEvents":[...]}
/// object of "X" complete events with ph/ts/dur/pid/tid/args), loadable in
/// Perfetto or chrome://tracing.  Timestamps are microseconds relative to
/// the first enable of tracing.
[[nodiscard]] std::string chrome_trace_json();

/// Total recorded (not dropped) span events, across all threads.
[[nodiscard]] std::size_t trace_event_count();

/// Span events dropped because a thread's ring filled up.
[[nodiscard]] std::size_t trace_dropped_count();

/// Zeroes every counter/gauge/histogram and discards all trace events.
/// Registrations (and metric references) survive.  Must not race
/// instrumented work on other threads.
void reset();

} // namespace fcqss::obs

#endif // FCQSS_OBS_OBS_HPP
