// fcqss — nets/paper_nets.hpp
// Faithful constructions of every net that appears in the paper's figures.
// Tests pin the published analysis results (invariants, schedules,
// reductions) against these; benches regenerate the figures from them.
//
// Where the figure is ambiguous in the scanned text, the reconstruction is
// the one consistent with ALL published numbers; see DESIGN.md.  In
// particular Fig. 5 is fixed by its published T-invariants
// (1,1,0,2,0,4,0,0,0) and (0,0,0,0,0,1,0,1,1) and both published cycles.
#ifndef FCQSS_NETS_PAPER_NETS_HPP
#define FCQSS_NETS_PAPER_NETS_HPP

#include "pn/petri_net.hpp"

namespace fcqss::nets {

/// Fig. 1a: a free choice — place with two consumers, each single-input.
[[nodiscard]] pn::petri_net figure_1a();

/// Fig. 1b: NOT free choice — t3 shares input place p1 with t2 but also
/// consumes p2, so t3 can be enabled while t2 is not.
[[nodiscard]] pn::petri_net figure_1b();

/// Fig. 2: multirate marked graph / SDF chain t1 ->2 t2 ->2 t3 with
/// T-invariant f = (4,2,1) and static schedule t1 t1 t1 t1 t2 t2 t3.
[[nodiscard]] pn::petri_net figure_2();

/// Fig. 3a: schedulable FCPN; valid schedule {(t1 t2 t4), (t1 t3 t5)};
/// T-invariant space a(1,1,0,1,0) + b(1,0,1,0,1).
[[nodiscard]] pn::petri_net figure_3a();

/// Fig. 3b: NOT schedulable: t4 joins both branches of the choice, so a
/// one-sided adversary accumulates tokens without bound.  Only the balanced
/// vector (2,1,1,1) is a T-invariant.
[[nodiscard]] pn::petri_net figure_3b();

/// Fig. 4: schedulable multirate FCPN with weighted arcs; valid schedule
/// {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}; Sec. 4 derives its C code.
[[nodiscard]] pn::petri_net figure_4();

/// Fig. 5: the T-allocation / T-reduction example: sources t1 and t8,
/// choice p1 -> {t2, t3}, weights 2 on t2->p2, t4->p4, t5->p5, t5->p6.
/// Valid schedule {(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}.
[[nodiscard]] pn::petri_net figure_5();

/// Fig. 7: NOT schedulable: both T-reductions keep a producerless place
/// (t6 joins p4 and p5 fed by different branches of the choice) and are
/// therefore inconsistent.
[[nodiscard]] pn::petri_net figure_7();

/// The Sec. 4 code-generation example is Fig. 4; alias for readability.
[[nodiscard]] inline pn::petri_net section_4_example() { return figure_4(); }

} // namespace fcqss::nets

#endif // FCQSS_NETS_PAPER_NETS_HPP
