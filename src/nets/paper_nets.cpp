#include "nets/paper_nets.hpp"

#include "pn/builder.hpp"

namespace fcqss::nets {

pn::petri_net figure_1a()
{
    pn::net_builder b("fig1a");
    const auto p1 = b.add_place("p1", 1);
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    b.add_arc(p1, t1);
    b.add_arc(p1, t2);
    return std::move(b).build();
}

pn::petri_net figure_1b()
{
    pn::net_builder b("fig1b");
    const auto p1 = b.add_place("p1", 1);
    const auto p2 = b.add_place("p2");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    b.add_arc(t1, p2);
    b.add_arc(p1, t2);
    // t3 consumes the shared place p1 AND p2: there is a marking where t3 is
    // enabled and t2 is not, so the net is not free choice.
    b.add_arc(p1, t3);
    b.add_arc(p2, t3);
    return std::move(b).build();
}

pn::petri_net figure_2()
{
    pn::net_builder b("fig2");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    b.add_arc(t1, p1);
    b.add_arc(p1, t2, 2);
    b.add_arc(t2, p2);
    b.add_arc(p2, t3, 2);
    return std::move(b).build();
}

pn::petri_net figure_3a()
{
    pn::net_builder b("fig3a");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto t4 = b.add_transition("t4");
    const auto t5 = b.add_transition("t5");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto p3 = b.add_place("p3");
    b.add_arc(t1, p1);
    b.add_arc(p1, t2);
    b.add_arc(p1, t3);
    b.add_arc(t2, p2);
    b.add_arc(p2, t4);
    b.add_arc(t3, p3);
    b.add_arc(p3, t5);
    return std::move(b).build();
}

pn::petri_net figure_3b()
{
    pn::net_builder b("fig3b");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto t4 = b.add_transition("t4");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto p3 = b.add_place("p3");
    b.add_arc(t1, p1);
    b.add_arc(p1, t2);
    b.add_arc(p1, t3);
    b.add_arc(t2, p2);
    b.add_arc(t3, p3);
    // t4 joins both branches: whichever branch the adversary starves
    // accumulates tokens on the other side without bound.
    b.add_arc(p2, t4);
    b.add_arc(p3, t4);
    return std::move(b).build();
}

pn::petri_net figure_4()
{
    pn::net_builder b("fig4");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto t4 = b.add_transition("t4");
    const auto t5 = b.add_transition("t5");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto p3 = b.add_place("p3");
    b.add_arc(t1, p1);
    b.add_arc(p1, t2);
    b.add_arc(p1, t3);
    b.add_arc(t2, p2);
    b.add_arc(p2, t4, 2); // t2 must fire twice before t4 is enabled
    b.add_arc(t3, p3, 2); // one t3 firing feeds two t5 firings
    b.add_arc(p3, t5);
    return std::move(b).build();
}

pn::petri_net figure_5()
{
    pn::net_builder b("fig5");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto t4 = b.add_transition("t4");
    const auto t5 = b.add_transition("t5");
    const auto t6 = b.add_transition("t6");
    const auto t7 = b.add_transition("t7");
    const auto t8 = b.add_transition("t8");
    const auto t9 = b.add_transition("t9");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto p3 = b.add_place("p3");
    const auto p4 = b.add_place("p4");
    const auto p5 = b.add_place("p5");
    const auto p6 = b.add_place("p6");
    const auto p7 = b.add_place("p7");

    b.add_arc(t1, p1);
    b.add_arc(p1, t2);
    b.add_arc(p1, t3);
    // Allocated branch A1: t2 -> p2 *2 -> t4 -> p4 *2 -> t6.
    b.add_arc(t2, p2, 2);
    b.add_arc(p2, t4);
    b.add_arc(t4, p4, 2);
    b.add_arc(p4, t6);
    // Allocated branch A2: t3 -> p3 -> t5 -> {p5 *2, p6 *2} -> t7 (join).
    b.add_arc(t3, p3);
    b.add_arc(p3, t5);
    b.add_arc(t5, p5, 2);
    b.add_arc(t5, p6, 2);
    b.add_arc(p5, t7);
    b.add_arc(p6, t7);
    // Second source: t8 -> p7 -> t9 -> p4 (feeds the shared tail t6).
    b.add_arc(t8, p7);
    b.add_arc(p7, t9);
    b.add_arc(t9, p4);
    return std::move(b).build();
}

pn::petri_net figure_7()
{
    pn::net_builder b("fig7");
    const auto t1 = b.add_transition("t1");
    const auto t2 = b.add_transition("t2");
    const auto t3 = b.add_transition("t3");
    const auto t4 = b.add_transition("t4");
    const auto t5 = b.add_transition("t5");
    const auto t6 = b.add_transition("t6");
    const auto t7 = b.add_transition("t7");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto p3 = b.add_place("p3");
    const auto p4 = b.add_place("p4");
    const auto p5 = b.add_place("p5");
    const auto p6 = b.add_place("p6");

    b.add_arc(t1, p1);
    b.add_arc(p1, t2);
    b.add_arc(p1, t3);
    b.add_arc(t2, p2);
    b.add_arc(p2, t4);
    b.add_arc(t3, p3);
    b.add_arc(p3, t5);
    b.add_arc(t4, p4);
    b.add_arc(t5, p5);
    b.add_arc(t5, p6);
    // t6 joins the two branches of the choice — the reduction keeps the
    // starved side as a producerless place, making both R1 and R2
    // inconsistent (finite execution only).
    b.add_arc(p4, t6);
    b.add_arc(p5, t6);
    b.add_arc(p6, t7);
    return std::move(b).build();
}

} // namespace fcqss::nets
