// fcqss — exec/chunk_pager.hpp
// External-memory backing for bump-arena chunks.  A pager hands out
// fixed-address chunk allocations and, when a resident-byte budget is set,
// backs them with one mmap'd spill file and evicts cold chunks to keep the
// resident set under the budget.
//
// The one invariant everything above relies on: **a chunk's address never
// changes for the life of the pager.**  marking_store spans, the engines'
// cross-thread parent-row pointers and the public state_space token spans
// all point straight into chunks, so eviction must not remap anything.
// File-backed chunks are therefore MAP_SHARED mappings that stay mapped
// forever; "eviction" is msync(MS_ASYNC) + madvise(MADV_DONTNEED), which
// drops the chunk's resident pages (the file keeps the bytes) while leaving
// the address range valid — a later read simply refaults the pages back in
// from the spill file, transparently and safely, even concurrently with the
// eviction itself.  Correctness is thus independent of eviction policy;
// only locality is at stake.
//
// Two modes, chosen at construction:
//
//   unbudgeted  (max_resident_bytes == 0)  plain anonymous allocations,
//               nothing is ever evicted — the pager is pure bookkeeping.
//   budgeted    chunks live in a spill file under TMPDIR (created with
//               mkstemp, removed on destruction; the path is exposed for
//               tests).  allocate() evicts cold unpinned chunks, oldest
//               first, until the believed-resident bytes fit the budget.
//               Pinned chunks (each store pins the bump chunk it is
//               filling) are never evicted, so the write frontier stays
//               hot; older chunks age out in allocation order, which for a
//               BFS arena is ascending state id — exactly cold-first.
//
// External truncation of the spill file would otherwise surface as a
// SIGBUS deep inside a token read; instead the pager re-validates the
// file's size (fstat) on every allocation and on validate_backing(), and
// throws fcqss::io_error the moment the file is shorter than the bytes
// handed out.
//
// Thread safety: allocate/pin/unpin/resident/evictions take one internal
// mutex (allocation is per-256KiB-chunk, far off any hot path).  Reads and
// writes of chunk *memory* need no pager involvement at all.
#ifndef FCQSS_EXEC_CHUNK_PAGER_HPP
#define FCQSS_EXEC_CHUNK_PAGER_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace fcqss::exec {

struct chunk_pager_options {
    /// Soft ceiling on resident chunk bytes; 0 = unbudgeted anonymous mode.
    /// The ceiling is advisory in the mmap sense: evicted pages refault on
    /// access, so a workload that touches everything at once can still
    /// exceed it transiently — but the pager keeps madvising cold chunks
    /// away, so the steady-state resident set tracks the budget.
    std::size_t max_resident_bytes = 0;
    /// Directory for the spill file; empty picks $TMPDIR, then /tmp.
    std::string spill_dir{};
};

/// Cumulative pager tallies (see flush_obs for the pn.mem.* mapping).
struct chunk_pager_stats {
    std::uint64_t chunks = 0;          ///< chunks allocated, ever
    std::uint64_t resident_chunks = 0; ///< believed resident right now
    std::uint64_t spilled_chunks = 0;  ///< believed evicted right now
    std::uint64_t evictions = 0;       ///< eviction operations, ever
    std::uint64_t spill_file_bytes = 0; ///< spill file extent (0 unbudgeted)
    std::uint64_t resident_bytes = 0;  ///< believed resident bytes
};

class chunk_pager {
public:
    explicit chunk_pager(chunk_pager_options options = {});
    ~chunk_pager();

    chunk_pager(const chunk_pager&) = delete;
    chunk_pager& operator=(const chunk_pager&) = delete;

    /// Allocates a chunk of `bytes` (page-rounded in budgeted mode) and
    /// returns (chunk id, base address).  The address is stable until the
    /// pager is destroyed.  May evict cold chunks first; throws
    /// fcqss::io_error when the spill file cannot grow or was truncated
    /// externally.
    std::pair<std::uint32_t, void*> allocate(std::size_t bytes);

    /// Pin/unpin a chunk against eviction (counted: pins nest).
    void pin(std::uint32_t id);
    void unpin(std::uint32_t id);

    /// True when the chunk's pages are believed resident.  Conservative:
    /// an evicted chunk that refaulted through a direct read stays
    /// "non-resident" until the next eviction pass re-ages it, so callers
    /// using this to *avoid* faults (the decode cache) never see a false
    /// "resident".
    [[nodiscard]] bool resident(std::uint32_t id) const;

    /// True when chunks are backed by the spill file (budgeted mode).
    [[nodiscard]] bool file_backed() const noexcept { return fd_ >= 0; }

    /// Path of the spill file; empty in unbudgeted mode.  Exposed so tests
    /// can corrupt/truncate it and assert the io_error surface.
    [[nodiscard]] const std::string& spill_path() const noexcept
    {
        return spill_path_;
    }

    /// Re-checks that the spill file still covers every byte handed out;
    /// throws fcqss::io_error otherwise.  Called internally by allocate().
    void validate_backing() const;

    [[nodiscard]] chunk_pager_stats stats() const;

    /// Adds this pager's tallies to the global pn.mem.* obs counters and
    /// sets the pn.mem.peak_rss_bytes gauge from getrusage.  Call once per
    /// exploration run; no-op when stats are off.
    void flush_obs() const;

private:
    struct chunk_meta {
        void* data = nullptr;
        std::size_t bytes = 0;       ///< mapped length (page-rounded)
        std::size_t file_offset = 0; ///< offset in the spill file
        int pins = 0;
        bool resident = true;
        /// Unbudgeted-mode ownership (budgeted chunks are unmapped whole
        /// via the file mappings in the destructor).
        std::unique_ptr<std::byte[]> owned;
    };

    void evict_to_fit_locked(std::size_t incoming_bytes);
    void validate_backing_locked() const;

    chunk_pager_options options_;
    int fd_ = -1;
    std::string spill_path_;
    std::size_t page_size_ = 4096;
    std::size_t file_extent_ = 0;

    mutable std::mutex mutex_;
    /// Deque: chunk addresses and metadata stay put as chunks are added.
    std::deque<chunk_meta> chunks_;
    std::size_t resident_bytes_ = 0;
    std::uint64_t evictions_ = 0;
    /// Eviction clock hand: chunks age out in allocation order.
    std::size_t next_victim_ = 0;
};

} // namespace fcqss::exec

#endif // FCQSS_EXEC_CHUNK_PAGER_HPP
