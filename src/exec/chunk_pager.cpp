// fcqss — exec/chunk_pager.cpp
#include "exec/chunk_pager.hpp"

#include "base/error.hpp"
#include "obs/obs.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fcqss::exec {

namespace {

[[noreturn]] void throw_errno(const char* what)
{
    throw io_error(std::string("chunk_pager: ") + what + ": " +
                   std::strerror(errno));
}

std::string pick_spill_dir(const std::string& configured)
{
    if (!configured.empty()) return configured;
    if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr && *tmp != '\0')
        return tmp;
    return "/tmp";
}

} // namespace

chunk_pager::chunk_pager(chunk_pager_options options)
    : options_(std::move(options))
{
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page > 0) page_size_ = static_cast<std::size_t>(page);
    if (options_.max_resident_bytes == 0) return;

    std::string templ = pick_spill_dir(options_.spill_dir) + "/fcqss-spill-XXXXXX";
    std::string buf = templ;
    fd_ = ::mkstemp(buf.data());
    if (fd_ < 0) throw_errno("mkstemp");
    spill_path_ = buf;
}

chunk_pager::~chunk_pager()
{
    for (auto& chunk : chunks_) {
        if (chunk.owned == nullptr && chunk.data != nullptr)
            ::munmap(chunk.data, chunk.bytes);
    }
    if (fd_ >= 0) {
        ::close(fd_);
        ::unlink(spill_path_.c_str());
    }
}

std::pair<std::uint32_t, void*> chunk_pager::allocate(std::size_t bytes)
{
    if (bytes == 0) bytes = 1;
    std::lock_guard lock(mutex_);
    const auto id = static_cast<std::uint32_t>(chunks_.size());

    if (fd_ < 0) {
        chunk_meta meta;
        meta.bytes = bytes;
        meta.owned = std::make_unique<std::byte[]>(bytes);
        meta.data = meta.owned.get();
        chunks_.push_back(std::move(meta));
        resident_bytes_ += bytes;
        return {id, chunks_.back().data};
    }

    validate_backing_locked();
    const std::size_t rounded =
        (bytes + page_size_ - 1) / page_size_ * page_size_;
    evict_to_fit_locked(rounded);

    const std::size_t offset = file_extent_;
    if (::ftruncate(fd_, static_cast<off_t>(offset + rounded)) != 0)
        throw_errno("ftruncate");
    void* data = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd_, static_cast<off_t>(offset));
    if (data == MAP_FAILED) throw_errno("mmap");
    file_extent_ = offset + rounded;

    chunk_meta meta;
    meta.data = data;
    meta.bytes = rounded;
    meta.file_offset = offset;
    chunks_.push_back(std::move(meta));
    resident_bytes_ += rounded;
    return {id, data};
}

void chunk_pager::evict_to_fit_locked(std::size_t incoming_bytes)
{
    if (options_.max_resident_bytes == 0) return;
    // Sweep the clock hand over chunks in allocation order; wrap once.  In
    // steady state the hand sits just past the last eviction, so each call
    // does O(evicted + pinned skipped) work.
    std::size_t examined = 0;
    const std::size_t n = chunks_.size();
    while (resident_bytes_ + incoming_bytes > options_.max_resident_bytes &&
           examined < n) {
        if (next_victim_ >= n) next_victim_ = 0;
        chunk_meta& victim = chunks_[next_victim_];
        ++next_victim_;
        ++examined;
        if (!victim.resident || victim.pins > 0) continue;
        ::msync(victim.data, victim.bytes, MS_ASYNC);
        ::madvise(victim.data, victim.bytes, MADV_DONTNEED);
        victim.resident = false;
        resident_bytes_ -= victim.bytes;
        ++evictions_;
    }
}

void chunk_pager::pin(std::uint32_t id)
{
    std::lock_guard lock(mutex_);
    ++chunks_[id].pins;
}

void chunk_pager::unpin(std::uint32_t id)
{
    std::lock_guard lock(mutex_);
    --chunks_[id].pins;
}

bool chunk_pager::resident(std::uint32_t id) const
{
    std::lock_guard lock(mutex_);
    return chunks_[id].resident;
}

void chunk_pager::validate_backing() const
{
    std::lock_guard lock(mutex_);
    validate_backing_locked();
}

void chunk_pager::validate_backing_locked() const
{
    if (fd_ < 0) return;
    struct stat st {};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat");
    if (static_cast<std::size_t>(st.st_size) < file_extent_)
        throw io_error("chunk_pager: spill file " + spill_path_ +
                       " truncated externally: " + std::to_string(st.st_size) +
                       " < " + std::to_string(file_extent_) + " bytes");
}

chunk_pager_stats chunk_pager::stats() const
{
    std::lock_guard lock(mutex_);
    chunk_pager_stats out;
    out.chunks = chunks_.size();
    for (const auto& chunk : chunks_)
        (chunk.resident ? out.resident_chunks : out.spilled_chunks) += 1;
    out.evictions = evictions_;
    out.spill_file_bytes = file_extent_;
    out.resident_bytes = resident_bytes_;
    return out;
}

void chunk_pager::flush_obs() const
{
    if (!obs::stats_enabled()) return;
    const chunk_pager_stats s = stats();
    obs::get_counter("pn.mem.chunks", "chunks").add(s.chunks);
    obs::get_counter("pn.mem.resident_chunks", "chunks").add(s.resident_chunks);
    obs::get_counter("pn.mem.spilled_chunks", "chunks").add(s.spilled_chunks);
    obs::get_counter("pn.mem.evictions", "evictions").add(s.evictions);
    obs::get_counter("pn.mem.spill_bytes", "bytes").add(s.spill_file_bytes);
    struct rusage usage {};
    if (::getrusage(RUSAGE_SELF, &usage) == 0) {
        obs::get_gauge("pn.mem.peak_rss_bytes", "bytes")
            .set(static_cast<double>(usage.ru_maxrss) * 1024.0);
    }
}

} // namespace fcqss::exec
