// fcqss — exec/executor.hpp
// A fixed-size thread pool (std::jthread workers pulling from a bounded
// job_queue) with the one primitive both batch synthesis and the parallel
// state-space engine need: run fn(i) for every index in [0, count) and wait
// for all of them.  Jobs are expected to handle their own failures (callers
// isolate per-item errors); any exception that escapes a job anyway is
// captured and rethrown to the caller of for_each_index after the batch
// drains, so worker threads never terminate the process.
//
// This used to live in src/pipeline/; it moved down a layer so that
// src/pn/parallel_explore.cpp can drive shard workers over the same pool
// without a pn -> pipeline dependency cycle.
#ifndef FCQSS_EXEC_EXECUTOR_HPP
#define FCQSS_EXEC_EXECUTOR_HPP

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/job_queue.hpp"

namespace fcqss::exec {

/// Resolves a user-facing thread-count option: 0 picks the hardware
/// concurrency (at least 1), anything else is taken as given.
[[nodiscard]] std::size_t resolve_thread_count(std::size_t threads) noexcept;

class executor {
public:
    /// Spawns `jobs` workers (0 picks std::thread::hardware_concurrency).
    explicit executor(std::size_t jobs);

    /// Closes the queue and joins the workers (jthread joins on destruction).
    ~executor();

    executor(const executor&) = delete;
    executor& operator=(const executor&) = delete;

    [[nodiscard]] std::size_t jobs() const noexcept { return workers_.size(); }

    /// Runs fn(0) .. fn(count - 1) on the pool and blocks until every call
    /// has finished.  Rethrows the first escaped job exception, if any.
    /// Not reentrant: one batch at a time per executor.
    void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop(std::size_t index);

    job_queue<std::function<void()>> queue_;
    std::mutex done_mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
    std::exception_ptr first_failure_;
    std::vector<std::jthread> workers_;
};

} // namespace fcqss::exec

#endif // FCQSS_EXEC_EXECUTOR_HPP
