// fcqss — exec/work_pool.hpp
// A resident thread pool: workers pull closures from a bounded job_queue
// for the whole life of the pool, so jobs can be submitted continuously
// and from any thread.  This is the long-lived counterpart of executor
// (which runs exactly one indexed batch and is not reentrant): the
// synthesis service keeps one work_pool up across thousands of requests.
//
// Submission comes in two flavours: try_submit() fails fast when the queue
// is full (the backpressure signal a server turns into an "overloaded"
// reply) and submit() blocks until there is room (for trusted in-process
// producers).  close() stops intake, lets the workers drain every queued
// job, and joins them; jobs are expected to handle their own failures —
// an exception escaping a job is swallowed and counted
// (exec.pool.escaped_exceptions) so one bad job can never take down the
// resident process.
#ifndef FCQSS_EXEC_WORK_POOL_HPP
#define FCQSS_EXEC_WORK_POOL_HPP

#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/job_queue.hpp"

namespace fcqss::exec {

class work_pool {
public:
    /// Spawns `jobs` workers (0 picks the hardware concurrency) over a
    /// queue bounded at `queue_capacity` pending jobs.
    explicit work_pool(std::size_t jobs, std::size_t queue_capacity);

    /// Closes and joins (idempotent with close()).
    ~work_pool();

    work_pool(const work_pool&) = delete;
    work_pool& operator=(const work_pool&) = delete;

    [[nodiscard]] std::size_t jobs() const noexcept { return job_count_; }

    /// Enqueues without blocking; false when the queue is full or closed.
    [[nodiscard]] bool try_submit(std::function<void()> job);

    /// Enqueues, waiting for queue room; false only when already closed.
    bool submit(std::function<void()> job);

    /// Stops intake, drains every queued job, joins the workers.  Safe to
    /// call more than once and from concurrent threads; submissions after
    /// close() fail.
    void close();

    /// Jobs currently queued (not yet picked up by a worker).
    [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

private:
    void worker_loop();

    job_queue<std::function<void()>> queue_;
    std::size_t job_count_ = 0; // fixed at construction
    std::mutex close_mutex_;
    std::vector<std::jthread> workers_;
};

} // namespace fcqss::exec

#endif // FCQSS_EXEC_WORK_POOL_HPP
