// fcqss — exec/shard_queues.hpp
// Per-shard inbox queues with work stealing: the coordination primitive
// behind unordered (barrier-free) sharded exploration.  Each shard owns an
// inbox of item batches; a worker *claims* a shard (preferring its home
// range, stealing any other pending shard otherwise), drains the batches it
// took plus whatever follow-on work they spawn, releases the shard, and
// moves on.  The claim flag makes the claiming worker the unique owner of
// every data structure keyed to that shard for the duration — claim and
// release pair through one mutex, so single-owner shard state (stores,
// frontiers, scratch) needs no locks of its own and stays TSan-clean.
//
// Termination is quiescence, not a barrier: an outstanding-work counter is
// raised before a batch becomes visible (push) or when a claimant registers
// follow-on work (add_work), and lowered only after the items are fully
// retired (finish_work).  claim_work() blocks while work exists anywhere
// and returns nullopt exactly when the counter hits zero — or after
// abort(), the early-exit used when a budget invalidates the whole run.
//
// One mutex guards all of it.  Workers move *batches*, not items, so the
// lock is taken a few times per thousand states; the hot per-item paths
// (intern, expand) run entirely on claimed single-owner state.
#ifndef FCQSS_EXEC_SHARD_QUEUES_HPP
#define FCQSS_EXEC_SHARD_QUEUES_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace fcqss::exec {

template <typename Item>
class shard_queues {
public:
    explicit shard_queues(std::size_t shard_count) : shards_(shard_count) {}

    shard_queues(const shard_queues&) = delete;
    shard_queues& operator=(const shard_queues&) = delete;

    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

    /// Queues a batch for shard `s`, counting its items as outstanding work
    /// before any worker can see them (so quiescence can never be observed
    /// with the batch in flight).  Empty batches are dropped.
    void push(std::size_t s, std::vector<Item> batch)
    {
        if (batch.empty()) {
            return;
        }
        {
            std::lock_guard lock(mutex_);
            outstanding_ += batch.size();
            shards_[s].batches.push_back(std::move(batch));
        }
        work_cv_.notify_one();
    }

    /// Registers `items` units of work not represented by a queued batch
    /// (e.g. a pre-interned root pending expansion) and marks shard `s`
    /// claimable so some worker picks that work up.
    void seed(std::size_t s, std::size_t items)
    {
        {
            std::lock_guard lock(mutex_);
            outstanding_ += items;
            shards_[s].local_work = true;
        }
        work_cv_.notify_one();
    }

    /// Raises the outstanding count for follow-on work a claimant just
    /// created on its own shard (a freshly interned state that still needs
    /// expanding).  Must precede the finish_work() of the item that spawned
    /// it, so the counter never dips to zero early.
    void add_work(std::size_t items)
    {
        if (items == 0) {
            return;
        }
        std::lock_guard lock(mutex_);
        outstanding_ += items;
    }

    /// Retires `items` fully processed units; at zero every blocked
    /// claim_work() returns nullopt.
    void finish_work(std::size_t items)
    {
        if (items == 0) {
            return;
        }
        bool quiescent = false;
        {
            std::lock_guard lock(mutex_);
            outstanding_ -= items;
            quiescent = outstanding_ == 0;
        }
        if (quiescent) {
            work_cv_.notify_all();
        }
    }

    struct claim {
        std::size_t shard = 0;
        /// Every batch queued for the shard at claim time.
        std::vector<std::vector<Item>> batches;
    };

    /// Claims an unowned shard with pending work, preferring `home` (then
    /// scanning upward, wrapping — distinct home hints spread workers over
    /// disjoint shard ranges until stealing becomes necessary).  Blocks
    /// while every pending shard is owned by someone else; returns nullopt
    /// at quiescence or after abort().
    [[nodiscard]] std::optional<claim> claim_work(std::size_t home)
    {
        std::unique_lock lock(mutex_);
        for (;;) {
            if (aborted_ || outstanding_ == 0) {
                return std::nullopt;
            }
            for (std::size_t i = 0; i < shards_.size(); ++i) {
                const std::size_t s = (home + i) % shards_.size();
                shard& sh = shards_[s];
                if (sh.claimed || (sh.batches.empty() && !sh.local_work)) {
                    continue;
                }
                sh.claimed = true;
                sh.local_work = false;
                claim out;
                out.shard = s;
                out.batches.assign(std::make_move_iterator(sh.batches.begin()),
                                   std::make_move_iterator(sh.batches.end()));
                sh.batches.clear();
                return out;
            }
            work_cv_.wait(lock);
        }
    }

    /// Reopens shard `s` for other claimants.  The caller still owes a
    /// finish_work() for everything it retired while holding the claim.
    void release(std::size_t s)
    {
        bool pending = false;
        {
            std::lock_guard lock(mutex_);
            shards_[s].claimed = false;
            pending = !shards_[s].batches.empty() || shards_[s].local_work;
        }
        if (pending) {
            // Batches that arrived while we held the shard need a claimant.
            work_cv_.notify_one();
        }
    }

    /// Ends the run early: every claim_work() returns nullopt regardless of
    /// outstanding work.  Used when a budget invalidates the whole result.
    void abort()
    {
        {
            std::lock_guard lock(mutex_);
            aborted_ = true;
        }
        work_cv_.notify_all();
    }

    [[nodiscard]] bool aborted() const
    {
        std::lock_guard lock(mutex_);
        return aborted_;
    }

private:
    struct shard {
        std::deque<std::vector<Item>> batches;
        bool claimed = false;
        /// Work lives in shard-local structures (not the inbox): set by
        /// seed(), cleared when claimed.
        bool local_work = false;
    };

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::vector<shard> shards_;
    std::size_t outstanding_ = 0;
    bool aborted_ = false;
};

} // namespace fcqss::exec

#endif // FCQSS_EXEC_SHARD_QUEUES_HPP
