#include "exec/executor.hpp"

#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace fcqss::exec {

std::size_t resolve_thread_count(std::size_t threads) noexcept
{
    if (threads != 0) {
        return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

executor::executor(std::size_t jobs) : queue_(2 * resolve_thread_count(jobs))
{
    const std::size_t n = resolve_thread_count(jobs);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

executor::~executor()
{
    queue_.close();
}

void executor::worker_loop(std::size_t index)
{
    // Registered eagerly (cheap, dedup'd by name) so the add below is one
    // guarded relaxed fetch_add per job — jobs are coarse, not per-state.
    obs::counter& jobs_counter =
        obs::get_counter("exec.worker." + std::to_string(index) + ".jobs");
    while (auto job = queue_.pop()) {
        (*job)();
        jobs_counter.add(1);
    }
}

void executor::for_each_index(std::size_t count,
                              const std::function<void(std::size_t)>& fn)
{
    {
        std::lock_guard lock(done_mutex_);
        pending_ = count;
        first_failure_ = nullptr;
    }
    if (count == 0) {
        return;
    }

    const auto finish_one = [this](std::exception_ptr failure) {
        std::lock_guard lock(done_mutex_);
        if (failure && !first_failure_) {
            first_failure_ = std::move(failure);
        }
        if (--pending_ == 0) {
            done_.notify_all();
        }
    };

    for (std::size_t i = 0; i < count; ++i) {
        const bool queued = queue_.push([i, &fn, &finish_one] {
            std::exception_ptr failure;
            try {
                fn(i);
            } catch (...) {
                failure = std::current_exception();
            }
            finish_one(failure);
        });
        if (!queued) {
            // Queue closed under us (executor being destroyed): account for
            // the jobs that will never run so the wait below terminates.
            finish_one(nullptr);
        }
    }

    std::unique_lock lock(done_mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (first_failure_) {
        std::exception_ptr failure = std::exchange(first_failure_, nullptr);
        lock.unlock();
        std::rethrow_exception(failure);
    }
}

} // namespace fcqss::exec
