// fcqss — exec/job_queue.hpp
// Bounded multi-producer / multi-consumer job queue: the hand-off point
// between a work driver and executor worker threads.  Producers block while
// the queue is full (back-pressure keeps memory bounded on huge batches);
// consumers block while it is empty.  close() wakes everyone and drains:
// pops keep returning queued items until the queue is empty, then return
// nullopt.
#ifndef FCQSS_EXEC_JOB_QUEUE_HPP
#define FCQSS_EXEC_JOB_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/obs.hpp"

namespace fcqss::exec {

template <typename T>
class job_queue {
public:
    explicit job_queue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

    job_queue(const job_queue&) = delete;
    job_queue& operator=(const job_queue&) = delete;

    /// Blocks while the queue is full.  Returns false (dropping the value)
    /// when the queue has been closed.
    bool push(T value)
    {
        std::unique_lock lock(mutex_);
        if (obs::stats_enabled() && items_.size() >= capacity_ && !closed_) {
            // About to block on back-pressure.  Same-named counter across
            // every instantiation: get_counter dedups by name.
            static obs::counter& stalls = obs::get_counter("exec.queue.enqueue_stalls");
            stalls.add(1);
        }
        not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(value));
        if (obs::stats_enabled()) {
            static obs::gauge& depth_hwm = obs::get_gauge("exec.queue.depth_hwm", "jobs");
            depth_hwm.set_max(static_cast<double>(items_.size()));
        }
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push: returns false immediately (dropping the value)
    /// when the queue is full or closed, instead of waiting for room.  The
    /// explicit-backpressure primitive: a resident service turns a failed
    /// try_push into an "overloaded, retry later" reply rather than
    /// stalling the submitting client.
    bool try_push(T value)
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                return false;
            }
            items_.push_back(std::move(value));
            if (obs::stats_enabled()) {
                static obs::gauge& depth_hwm =
                    obs::get_gauge("exec.queue.depth_hwm", "jobs");
                depth_hwm.set_max(static_cast<double>(items_.size()));
            }
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while the queue is empty and open.  Returns nullopt once the
    /// queue is closed and fully drained.
    std::optional<T> pop()
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
        if (items_.empty()) {
            return std::nullopt;
        }
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /// Marks the queue closed; pending items remain poppable.
    void close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace fcqss::exec

#endif // FCQSS_EXEC_JOB_QUEUE_HPP
