#include "exec/work_pool.hpp"

#include <utility>

#include "exec/executor.hpp"
#include "obs/obs.hpp"

namespace fcqss::exec {

work_pool::work_pool(std::size_t jobs, std::size_t queue_capacity)
    : queue_(queue_capacity)
{
    const std::size_t n = resolve_thread_count(jobs);
    job_count_ = n;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

work_pool::~work_pool()
{
    close();
}

bool work_pool::try_submit(std::function<void()> job)
{
    return queue_.try_push(std::move(job));
}

bool work_pool::submit(std::function<void()> job)
{
    return queue_.push(std::move(job));
}

void work_pool::close()
{
    std::lock_guard lock(close_mutex_);
    queue_.close();
    workers_.clear(); // jthread joins on destruction; pops drain the queue
}

void work_pool::worker_loop()
{
    while (auto job = queue_.pop()) {
        try {
            (*job)();
        } catch (...) {
            // Jobs own their failures; a leak here must not kill the
            // resident process.  Count it so the stats surface shows it.
            if (obs::stats_enabled()) {
                static obs::counter& escaped =
                    obs::get_counter("exec.pool.escaped_exceptions");
                escaped.add(1);
            }
        }
    }
}

} // namespace fcqss::exec
