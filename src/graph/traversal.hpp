// fcqss — graph/traversal.hpp
// Reachability, connectivity and ordering queries over digraphs.
#ifndef FCQSS_GRAPH_TRAVERSAL_HPP
#define FCQSS_GRAPH_TRAVERSAL_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace fcqss::graph {

/// Vertices reachable from `start` following edge direction; includes `start`.
[[nodiscard]] std::vector<bool> reachable_from(const digraph& g, std::size_t start);

/// Vertices reachable from any vertex in `starts`.
[[nodiscard]] std::vector<bool>
reachable_from_any(const digraph& g, const std::vector<std::size_t>& starts);

/// True when the underlying undirected graph is connected (or empty).
[[nodiscard]] bool is_weakly_connected(const digraph& g);

/// Topological order of the vertices, or nullopt when the graph has a cycle.
[[nodiscard]] std::optional<std::vector<std::size_t>> topological_order(const digraph& g);

/// True when the graph contains a directed cycle.
[[nodiscard]] bool has_cycle(const digraph& g);

} // namespace fcqss::graph

#endif // FCQSS_GRAPH_TRAVERSAL_HPP
