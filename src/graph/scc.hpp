// fcqss — graph/scc.hpp
// Tarjan strongly-connected-components decomposition.  Used to decide strong
// connectedness of Petri nets and to find cyclic fragments during
// schedulability diagnostics.
#ifndef FCQSS_GRAPH_SCC_HPP
#define FCQSS_GRAPH_SCC_HPP

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace fcqss::graph {

/// Result of an SCC decomposition.
struct scc_result {
    /// component[v] is the SCC index of vertex v; components are numbered in
    /// reverse topological order of the condensation (Tarjan's natural order).
    std::vector<std::size_t> component;
    /// members[c] lists the vertices of component c in ascending order.
    std::vector<std::vector<std::size_t>> members;

    [[nodiscard]] std::size_t component_count() const noexcept { return members.size(); }
};

/// Computes the strongly connected components of `g` (iterative Tarjan).
[[nodiscard]] scc_result strongly_connected_components(const digraph& g);

/// True when the whole graph is one SCC (and non-empty).
[[nodiscard]] bool is_strongly_connected(const digraph& g);

} // namespace fcqss::graph

#endif // FCQSS_GRAPH_SCC_HPP
