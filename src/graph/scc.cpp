#include "graph/scc.hpp"

#include <algorithm>
#include <limits>

namespace fcqss::graph {

namespace {

constexpr std::size_t undefined = std::numeric_limits<std::size_t>::max();

// One frame of the simulated DFS recursion.
struct frame {
    std::size_t vertex;
    std::size_t next_successor;
};

} // namespace

scc_result strongly_connected_components(const digraph& g)
{
    const std::size_t n = g.size();
    scc_result result;
    result.component.assign(n, undefined);

    std::vector<std::size_t> index(n, undefined);
    std::vector<std::size_t> lowlink(n, undefined);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::vector<frame> call_stack;
    std::size_t next_index = 0;

    for (std::size_t root = 0; root < n; ++root) {
        if (index[root] != undefined) {
            continue;
        }
        call_stack.push_back({root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!call_stack.empty()) {
            frame& top = call_stack.back();
            const std::size_t v = top.vertex;
            const auto& succ = g.successors(v);
            if (top.next_successor < succ.size()) {
                const std::size_t w = succ[top.next_successor++];
                if (index[w] == undefined) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    call_stack.push_back({w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
                continue;
            }
            // All successors explored: close the vertex.
            if (lowlink[v] == index[v]) {
                std::vector<std::size_t> members;
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    result.component[w] = result.members.size();
                    members.push_back(w);
                    if (w == v) {
                        break;
                    }
                }
                std::sort(members.begin(), members.end());
                result.members.push_back(std::move(members));
            }
            call_stack.pop_back();
            if (!call_stack.empty()) {
                const std::size_t parent = call_stack.back().vertex;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }
    return result;
}

bool is_strongly_connected(const digraph& g)
{
    if (g.size() == 0) {
        return false;
    }
    return strongly_connected_components(g).component_count() == 1;
}

} // namespace fcqss::graph
