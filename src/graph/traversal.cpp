#include "graph/traversal.hpp"

#include <algorithm>

namespace fcqss::graph {

std::vector<bool> reachable_from(const digraph& g, std::size_t start)
{
    return reachable_from_any(g, {start});
}

std::vector<bool> reachable_from_any(const digraph& g,
                                     const std::vector<std::size_t>& starts)
{
    std::vector<bool> seen(g.size(), false);
    std::vector<std::size_t> stack;
    for (std::size_t s : starts) {
        if (s < g.size() && !seen[s]) {
            seen[s] = true;
            stack.push_back(s);
        }
    }
    while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        for (std::size_t w : g.successors(v)) {
            if (!seen[w]) {
                seen[w] = true;
                stack.push_back(w);
            }
        }
    }
    return seen;
}

bool is_weakly_connected(const digraph& g)
{
    if (g.size() == 0) {
        return true;
    }
    std::vector<bool> seen(g.size(), false);
    std::vector<std::size_t> stack{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
        const std::size_t v = stack.back();
        stack.pop_back();
        const auto visit = [&](std::size_t w) {
            if (!seen[w]) {
                seen[w] = true;
                ++visited;
                stack.push_back(w);
            }
        };
        for (std::size_t w : g.successors(v)) {
            visit(w);
        }
        for (std::size_t w : g.predecessors(v)) {
            visit(w);
        }
    }
    return visited == g.size();
}

std::optional<std::vector<std::size_t>> topological_order(const digraph& g)
{
    std::vector<std::size_t> indegree(g.size(), 0);
    for (std::size_t v = 0; v < g.size(); ++v) {
        for (std::size_t w : g.successors(v)) {
            ++indegree[w];
        }
    }
    std::vector<std::size_t> ready;
    for (std::size_t v = 0; v < g.size(); ++v) {
        if (indegree[v] == 0) {
            ready.push_back(v);
        }
    }
    std::vector<std::size_t> order;
    order.reserve(g.size());
    while (!ready.empty()) {
        // Pop the smallest ready vertex so the order is deterministic.
        const auto smallest = std::min_element(ready.begin(), ready.end());
        const std::size_t v = *smallest;
        ready.erase(smallest);
        order.push_back(v);
        for (std::size_t w : g.successors(v)) {
            if (--indegree[w] == 0) {
                ready.push_back(w);
            }
        }
    }
    if (order.size() != g.size()) {
        return std::nullopt;
    }
    return order;
}

bool has_cycle(const digraph& g)
{
    return !topological_order(g).has_value();
}

} // namespace fcqss::graph
