#include "graph/digraph.hpp"

#include "base/error.hpp"

namespace fcqss::graph {

digraph::digraph(std::size_t vertex_count)
    : successors_(vertex_count), predecessors_(vertex_count)
{
}

std::size_t digraph::add_vertex()
{
    successors_.emplace_back();
    predecessors_.emplace_back();
    return successors_.size() - 1;
}

void digraph::add_edge(std::size_t from, std::size_t to)
{
    if (from >= size() || to >= size()) {
        throw model_error("digraph::add_edge: vertex index out of range");
    }
    successors_[from].push_back(to);
    predecessors_[to].push_back(from);
    ++edge_count_;
}

const std::vector<std::size_t>& digraph::successors(std::size_t v) const
{
    if (v >= size()) {
        throw model_error("digraph::successors: vertex index out of range");
    }
    return successors_[v];
}

const std::vector<std::size_t>& digraph::predecessors(std::size_t v) const
{
    if (v >= size()) {
        throw model_error("digraph::predecessors: vertex index out of range");
    }
    return predecessors_[v];
}

digraph digraph::reversed() const
{
    digraph result(size());
    for (std::size_t v = 0; v < size(); ++v) {
        for (std::size_t w : successors_[v]) {
            result.add_edge(w, v);
        }
    }
    return result;
}

} // namespace fcqss::graph
