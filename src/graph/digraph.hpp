// fcqss — graph/digraph.hpp
// A minimal directed-graph container with adjacency lists in both directions.
// The Petri-net structural analyses (connectedness, SCCs, path queries) run on
// this representation rather than on the net itself, keeping graph algorithms
// independent of P/T semantics.
#ifndef FCQSS_GRAPH_DIGRAPH_HPP
#define FCQSS_GRAPH_DIGRAPH_HPP

#include <cstddef>
#include <vector>

namespace fcqss::graph {

/// Directed graph over vertices 0..n-1.  Parallel edges are permitted; the
/// algorithms in this module treat them as a single adjacency.
class digraph {
public:
    digraph() = default;
    explicit digraph(std::size_t vertex_count);

    /// Number of vertices.
    [[nodiscard]] std::size_t size() const noexcept { return successors_.size(); }

    /// Number of edges (counting duplicates).
    [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

    /// Appends a fresh vertex and returns its index.
    std::size_t add_vertex();

    /// Adds the edge from -> to.  Both endpoints must already exist.
    void add_edge(std::size_t from, std::size_t to);

    [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t v) const;
    [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t v) const;

    /// The same graph with every edge direction flipped.
    [[nodiscard]] digraph reversed() const;

private:
    std::vector<std::vector<std::size_t>> successors_;
    std::vector<std::vector<std::size_t>> predecessors_;
    std::size_t edge_count_ = 0;
};

} // namespace fcqss::graph

#endif // FCQSS_GRAPH_DIGRAPH_HPP
