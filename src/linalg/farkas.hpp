// fcqss — linalg/farkas.hpp
// Farkas / Fourier-Motzkin enumeration of the minimal-support semiflows of an
// integer matrix (Colom & Silva).  A T-invariant of a net with incidence
// matrix C is a semiflow of C^T; a P-invariant is a semiflow of C.  The QSS
// schedulability check (Def. 3.5) is built on this enumeration.
#ifndef FCQSS_LINALG_FARKAS_HPP
#define FCQSS_LINALG_FARKAS_HPP

#include <cstddef>
#include <vector>

#include "linalg/int_matrix.hpp"

namespace fcqss::linalg {

/// Options bounding the Farkas iteration.  The intermediate row count can
/// grow exponentially on adversarial inputs; `max_rows` turns that into a
/// clean error instead of memory exhaustion.
struct farkas_options {
    std::size_t max_rows = 1u << 20;
};

/// All minimal-support semiflows of `a`: the set of minimal y >= 0, y != 0,
/// with y^T a = 0 (y indexed by the rows of `a`).  Every returned vector is
/// primitive (entry gcd 1); the result is sorted lexicographically so callers
/// see a deterministic order.  Throws fcqss::error when `max_rows` is hit.
[[nodiscard]] std::vector<int_vector>
minimal_semiflows(const int_matrix& a, const farkas_options& options = {});

/// True when every row index of `a` is in the support of some minimal
/// semiflow, i.e. there exists a strictly positive y with y^T a = 0.
[[nodiscard]] bool semiflows_cover_all_rows(const int_matrix& a,
                                            const std::vector<int_vector>& semiflows);

} // namespace fcqss::linalg

#endif // FCQSS_LINALG_FARKAS_HPP
