#include "linalg/farkas.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "linalg/checked.hpp"

namespace fcqss::linalg {

namespace {

// A working row: [ residual of y^T a | y ].  The algorithm drives the
// residual part to zero column by column; what remains in the y part are the
// semiflows.
struct work_row {
    int_vector residual;
    int_vector combination;
};

// Support of the combination part as a sorted index list.
std::vector<std::size_t> combination_support(const work_row& row)
{
    return support(row.combination);
}

bool is_support_superset(const std::vector<std::size_t>& sup,
                         const std::vector<std::size_t>& sub)
{
    return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

// Drops every row whose combination support strictly contains the support of
// another row, plus exact duplicates.  Keeping only support-minimal rows is
// what makes the final answer the *minimal* semiflows and keeps the row count
// manageable.
void prune_non_minimal(std::vector<work_row>& rows)
{
    std::vector<std::vector<std::size_t>> supports(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        supports[i] = combination_support(rows[i]);
    }
    std::vector<bool> dead(rows.size(), false);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (dead[i]) {
            continue;
        }
        for (std::size_t j = 0; j < rows.size(); ++j) {
            if (i == j || dead[j] || dead[i]) {
                continue;
            }
            if (supports[i] == supports[j]) {
                // Equal supports: drop the later duplicate only when the
                // vectors are identical; otherwise keep both.
                if (j > i && rows[i].combination == rows[j].combination &&
                    rows[i].residual == rows[j].residual) {
                    dead[j] = true;
                }
            } else if (is_support_superset(supports[j], supports[i])) {
                dead[j] = true;
            }
        }
    }
    std::vector<work_row> kept;
    kept.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (!dead[i]) {
            kept.push_back(std::move(rows[i]));
        }
    }
    rows = std::move(kept);
}

void normalize_row(work_row& row)
{
    std::int64_t g = 0;
    for (std::int64_t x : row.residual) {
        g = gcd64(g, x);
    }
    for (std::int64_t x : row.combination) {
        g = gcd64(g, x);
    }
    if (g > 1) {
        for (std::int64_t& x : row.residual) {
            x /= g;
        }
        for (std::int64_t& x : row.combination) {
            x /= g;
        }
    }
}

} // namespace

std::vector<int_vector> minimal_semiflows(const int_matrix& a,
                                          const farkas_options& options)
{
    const std::size_t n = a.rows();
    const std::size_t m = a.cols();

    // Initial table: row i carries a's row i and the i-th unit combination.
    std::vector<work_row> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
        rows[i].residual = a.row(i);
        rows[i].combination.assign(n, 0);
        rows[i].combination[i] = 1;
    }

    for (std::size_t col = 0; col < m; ++col) {
        std::vector<work_row> zero_rows;
        std::vector<std::size_t> positive;
        std::vector<std::size_t> negative;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const std::int64_t v = rows[i].residual[col];
            if (v == 0) {
                zero_rows.push_back(std::move(rows[i]));
            } else if (v > 0) {
                positive.push_back(i);
            } else {
                negative.push_back(i);
            }
        }
        // Pair every positive row with every negative row so the column
        // cancels; their non-negative combination is recorded alongside.
        std::vector<work_row> next = std::move(zero_rows);
        for (std::size_t pi : positive) {
            for (std::size_t ni : negative) {
                const work_row& p = rows[pi];
                const work_row& q = rows[ni];
                const std::int64_t pv = p.residual[col];
                const std::int64_t qv = checked_neg(q.residual[col]);
                const std::int64_t g = gcd64(pv, qv);
                const std::int64_t p_scale = qv / g;
                const std::int64_t q_scale = pv / g;
                work_row merged;
                merged.residual =
                    add(scale(p.residual, p_scale), scale(q.residual, q_scale));
                merged.combination =
                    add(scale(p.combination, p_scale), scale(q.combination, q_scale));
                normalize_row(merged);
                next.push_back(std::move(merged));
                if (next.size() > options.max_rows) {
                    throw error("minimal_semiflows: row limit exceeded "
                                "(net too large for Farkas enumeration)");
                }
            }
        }
        rows = std::move(next);
        prune_non_minimal(rows);
    }

    std::vector<int_vector> result;
    result.reserve(rows.size());
    for (work_row& row : rows) {
        require_internal(is_zero(row.residual),
                         "farkas: residual not eliminated after all columns");
        if (is_semipositive(row.combination)) {
            normalize_by_gcd(row.combination);
            result.push_back(std::move(row.combination));
        }
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    return result;
}

bool semiflows_cover_all_rows(const int_matrix& a,
                              const std::vector<int_vector>& semiflows)
{
    std::vector<bool> covered(a.rows(), false);
    for (const int_vector& y : semiflows) {
        for (std::size_t i : support(y)) {
            covered[i] = true;
        }
    }
    return std::all_of(covered.begin(), covered.end(), [](bool b) { return b; });
}

} // namespace fcqss::linalg
