// fcqss — linalg/gauss.hpp
// Exact Gaussian elimination over the rationals: rank, null-space basis and
// linear-system solving.  Consistency of a net (Def. 2.1) and the SDF balance
// equations both reduce to questions about the incidence matrix's null space.
#ifndef FCQSS_LINALG_GAUSS_HPP
#define FCQSS_LINALG_GAUSS_HPP

#include <optional>
#include <vector>

#include "linalg/int_matrix.hpp"
#include "linalg/rational.hpp"

namespace fcqss::linalg {

/// Matrix of exact rationals, row major.
using rational_matrix = std::vector<std::vector<rational>>;

/// Converts an integer matrix to rationals.
[[nodiscard]] rational_matrix to_rational(const int_matrix& m);

/// Reduces `m` in place to row echelon form; returns the rank.
/// Column order is preserved (no pivoting across columns).
std::size_t row_echelon(rational_matrix& m);

/// Rank of an integer matrix (exact).
[[nodiscard]] std::size_t rank(const int_matrix& m);

/// A basis of the right null space { x : m x = 0 }, as integer vectors scaled
/// to be primitive (entry gcd 1).  Basis vectors are in bijection with the
/// free columns of the echelon form, so the result is deterministic.
[[nodiscard]] std::vector<int_vector> null_space_basis(const int_matrix& m);

/// Solves m x = b exactly.  Returns one solution or nullopt when inconsistent.
[[nodiscard]] std::optional<std::vector<rational>>
solve(const int_matrix& m, const int_vector& b);

} // namespace fcqss::linalg

#endif // FCQSS_LINALG_GAUSS_HPP
