// fcqss — linalg/int_matrix.hpp
// Dense integer matrices and vectors with checked arithmetic.  The Petri-net
// incidence matrix and all invariant computations live on these types.
#ifndef FCQSS_LINALG_INT_MATRIX_HPP
#define FCQSS_LINALG_INT_MATRIX_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace fcqss::linalg {

/// Integer column vector.
using int_vector = std::vector<std::int64_t>;

/// v + w (checked); sizes must match.
[[nodiscard]] int_vector add(const int_vector& v, const int_vector& w);

/// c * v (checked).
[[nodiscard]] int_vector scale(const int_vector& v, std::int64_t c);

/// Dot product (checked); sizes must match.
[[nodiscard]] std::int64_t dot(const int_vector& v, const int_vector& w);

/// True when every entry is zero.
[[nodiscard]] bool is_zero(const int_vector& v) noexcept;

/// True when every entry is >= 0 and at least one is > 0.
[[nodiscard]] bool is_semipositive(const int_vector& v) noexcept;

/// Indices of the non-zero entries.
[[nodiscard]] std::vector<std::size_t> support(const int_vector& v);

/// Divides all entries by their collective gcd (no-op for the zero vector).
void normalize_by_gcd(int_vector& v);

/// True when support(v) is a subset of support(w).
[[nodiscard]] bool support_subset(const int_vector& v, const int_vector& w) noexcept;

/// Dense row-major integer matrix.
class int_matrix {
public:
    int_matrix() = default;
    int_matrix(std::size_t rows, std::size_t cols);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] std::int64_t& at(std::size_t r, std::size_t c);
    [[nodiscard]] std::int64_t at(std::size_t r, std::size_t c) const;

    /// Row r as a vector copy.
    [[nodiscard]] int_vector row(std::size_t r) const;
    /// Column c as a vector copy.
    [[nodiscard]] int_vector column(std::size_t c) const;

    /// Matrix * vector (checked); v.size() must equal cols().
    [[nodiscard]] int_vector multiply(const int_vector& v) const;

    /// The transpose.
    [[nodiscard]] int_matrix transposed() const;

    /// Multi-line human-readable dump (for diagnostics and tests).
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const int_matrix& a, const int_matrix& b) = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::int64_t> data_;
};

} // namespace fcqss::linalg

#endif // FCQSS_LINALG_INT_MATRIX_HPP
