#include "linalg/int_matrix.hpp"

#include "base/error.hpp"
#include "linalg/checked.hpp"

namespace fcqss::linalg {

int_vector add(const int_vector& v, const int_vector& w)
{
    if (v.size() != w.size()) {
        throw model_error("int_vector add: size mismatch");
    }
    int_vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        result[i] = checked_add(v[i], w[i]);
    }
    return result;
}

int_vector scale(const int_vector& v, std::int64_t c)
{
    int_vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        result[i] = checked_mul(v[i], c);
    }
    return result;
}

std::int64_t dot(const int_vector& v, const int_vector& w)
{
    if (v.size() != w.size()) {
        throw model_error("int_vector dot: size mismatch");
    }
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        sum = checked_add(sum, checked_mul(v[i], w[i]));
    }
    return sum;
}

bool is_zero(const int_vector& v) noexcept
{
    for (std::int64_t x : v) {
        if (x != 0) {
            return false;
        }
    }
    return true;
}

bool is_semipositive(const int_vector& v) noexcept
{
    bool any_positive = false;
    for (std::int64_t x : v) {
        if (x < 0) {
            return false;
        }
        any_positive = any_positive || x > 0;
    }
    return any_positive;
}

std::vector<std::size_t> support(const int_vector& v)
{
    std::vector<std::size_t> result;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] != 0) {
            result.push_back(i);
        }
    }
    return result;
}

void normalize_by_gcd(int_vector& v)
{
    std::int64_t g = 0;
    for (std::int64_t x : v) {
        g = gcd64(g, x);
    }
    if (g > 1) {
        for (std::int64_t& x : v) {
            x /= g;
        }
    }
}

bool support_subset(const int_vector& v, const int_vector& w) noexcept
{
    const std::size_t n = v.size() < w.size() ? v.size() : w.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (v[i] != 0 && w[i] == 0) {
            return false;
        }
    }
    for (std::size_t i = n; i < v.size(); ++i) {
        if (v[i] != 0) {
            return false;
        }
    }
    return true;
}

int_matrix::int_matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0)
{
}

std::int64_t& int_matrix::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_) {
        throw model_error("int_matrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

std::int64_t int_matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_) {
        throw model_error("int_matrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

int_vector int_matrix::row(std::size_t r) const
{
    if (r >= rows_) {
        throw model_error("int_matrix::row: index out of range");
    }
    return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

int_vector int_matrix::column(std::size_t c) const
{
    if (c >= cols_) {
        throw model_error("int_matrix::column: index out of range");
    }
    int_vector result(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        result[r] = data_[r * cols_ + c];
    }
    return result;
}

int_vector int_matrix::multiply(const int_vector& v) const
{
    if (v.size() != cols_) {
        throw model_error("int_matrix::multiply: dimension mismatch");
    }
    int_vector result(rows_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
        std::int64_t sum = 0;
        for (std::size_t c = 0; c < cols_; ++c) {
            sum = checked_add(sum, checked_mul(data_[r * cols_ + c], v[c]));
        }
        result[r] = sum;
    }
    return result;
}

int_matrix int_matrix::transposed() const
{
    int_matrix result(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            result.at(c, r) = data_[r * cols_ + c];
        }
    }
    return result;
}

std::string int_matrix::to_string() const
{
    std::string text;
    for (std::size_t r = 0; r < rows_; ++r) {
        text += "[";
        for (std::size_t c = 0; c < cols_; ++c) {
            if (c != 0) {
                text += ' ';
            }
            text += std::to_string(data_[r * cols_ + c]);
        }
        text += "]\n";
    }
    return text;
}

} // namespace fcqss::linalg
