// fcqss — linalg/rational.hpp
// Exact rational numbers over checked 64-bit integers, always kept in lowest
// terms with a positive denominator.  Used by the SDF balance equations and
// by Gaussian elimination over the incidence matrix.
#ifndef FCQSS_LINALG_RATIONAL_HPP
#define FCQSS_LINALG_RATIONAL_HPP

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace fcqss::linalg {

/// Exact rational p/q, q > 0, gcd(|p|, q) == 1.
class rational {
public:
    constexpr rational() noexcept : num_(0), den_(1) {}
    // NOLINTNEXTLINE(google-explicit-constructor) — ints convert exactly
    rational(std::int64_t numerator);
    rational(std::int64_t numerator, std::int64_t denominator);

    [[nodiscard]] std::int64_t num() const noexcept { return num_; }
    [[nodiscard]] std::int64_t den() const noexcept { return den_; }

    [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }
    [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }
    [[nodiscard]] int sign() const noexcept { return (num_ > 0) - (num_ < 0); }

    /// The integer value; throws domain_error when not an integer.
    [[nodiscard]] std::int64_t as_integer() const;

    [[nodiscard]] rational operator-() const;

    rational& operator+=(const rational& rhs);
    rational& operator-=(const rational& rhs);
    rational& operator*=(const rational& rhs);
    /// Division by zero throws domain_error.
    rational& operator/=(const rational& rhs);

    friend rational operator+(rational lhs, const rational& rhs) { return lhs += rhs; }
    friend rational operator-(rational lhs, const rational& rhs) { return lhs -= rhs; }
    friend rational operator*(rational lhs, const rational& rhs) { return lhs *= rhs; }
    friend rational operator/(rational lhs, const rational& rhs) { return lhs /= rhs; }

    friend bool operator==(const rational& a, const rational& b) noexcept = default;
    friend std::strong_ordering operator<=>(const rational& a, const rational& b);

    [[nodiscard]] std::string to_string() const;

private:
    void normalize();

    std::int64_t num_;
    std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const rational& r);

/// Reciprocal; throws domain_error for zero.
[[nodiscard]] rational reciprocal(const rational& r);

/// |r|.
[[nodiscard]] rational abs(const rational& r);

} // namespace fcqss::linalg

#endif // FCQSS_LINALG_RATIONAL_HPP
