#include "linalg/gauss.hpp"

#include "base/error.hpp"
#include "linalg/checked.hpp"

namespace fcqss::linalg {

rational_matrix to_rational(const int_matrix& m)
{
    rational_matrix result(m.rows(), std::vector<rational>(m.cols()));
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            result[r][c] = rational(m.at(r, c));
        }
    }
    return result;
}

std::size_t row_echelon(rational_matrix& m)
{
    if (m.empty()) {
        return 0;
    }
    const std::size_t rows = m.size();
    const std::size_t cols = m[0].size();
    std::size_t pivot_row = 0;
    for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
        // Find a non-zero pivot in this column at or below pivot_row.
        std::size_t candidate = pivot_row;
        while (candidate < rows && m[candidate][col].is_zero()) {
            ++candidate;
        }
        if (candidate == rows) {
            continue;
        }
        std::swap(m[pivot_row], m[candidate]);
        const rational pivot = m[pivot_row][col];
        for (std::size_t c = col; c < cols; ++c) {
            m[pivot_row][c] /= pivot;
        }
        for (std::size_t r = 0; r < rows; ++r) {
            if (r == pivot_row || m[r][col].is_zero()) {
                continue;
            }
            const rational factor = m[r][col];
            for (std::size_t c = col; c < cols; ++c) {
                m[r][c] -= factor * m[pivot_row][c];
            }
        }
        ++pivot_row;
    }
    return pivot_row;
}

std::size_t rank(const int_matrix& m)
{
    rational_matrix work = to_rational(m);
    return row_echelon(work);
}

std::vector<int_vector> null_space_basis(const int_matrix& m)
{
    const std::size_t cols = m.cols();
    rational_matrix work = to_rational(m);
    row_echelon(work);

    // Identify pivot columns from the reduced form.
    std::vector<std::size_t> pivot_col_of_row;
    std::vector<bool> is_pivot_col(cols, false);
    for (const auto& row : work) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (!row[c].is_zero()) {
                pivot_col_of_row.push_back(c);
                is_pivot_col[c] = true;
                break;
            }
        }
    }

    std::vector<int_vector> basis;
    for (std::size_t free_col = 0; free_col < cols; ++free_col) {
        if (is_pivot_col[free_col]) {
            continue;
        }
        // Back-substitute with the free variable set to 1.
        std::vector<rational> x(cols, rational(0));
        x[free_col] = rational(1);
        for (std::size_t r = pivot_col_of_row.size(); r-- > 0;) {
            const std::size_t pc = pivot_col_of_row[r];
            rational sum(0);
            for (std::size_t c = pc + 1; c < cols; ++c) {
                sum += work[r][c] * x[c];
            }
            x[pc] = -sum; // pivot entry is 1 after full reduction
        }
        // Clear denominators to get a primitive integer vector.
        std::int64_t denominator_lcm = 1;
        for (const rational& v : x) {
            denominator_lcm = lcm64(denominator_lcm, v.den());
        }
        int_vector integral(cols);
        for (std::size_t c = 0; c < cols; ++c) {
            integral[c] = checked_mul(x[c].num(), denominator_lcm / x[c].den());
        }
        normalize_by_gcd(integral);
        basis.push_back(std::move(integral));
    }
    return basis;
}

std::optional<std::vector<rational>> solve(const int_matrix& m, const int_vector& b)
{
    if (b.size() != m.rows()) {
        throw model_error("linalg::solve: dimension mismatch");
    }
    const std::size_t cols = m.cols();
    // Augmented matrix [m | b].
    rational_matrix work(m.rows(), std::vector<rational>(cols + 1));
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            work[r][c] = rational(m.at(r, c));
        }
        work[r][cols] = rational(b[r]);
    }
    row_echelon(work);

    std::vector<rational> x(cols, rational(0));
    for (const auto& row : work) {
        std::size_t pivot = cols + 1;
        for (std::size_t c = 0; c <= cols; ++c) {
            if (!row[c].is_zero()) {
                pivot = c;
                break;
            }
        }
        if (pivot == cols) {
            return std::nullopt; // row reads 0 = nonzero
        }
        if (pivot > cols) {
            continue; // all-zero row
        }
        // After full reduction each pivot row determines its pivot variable
        // once the free variables (set to 0) are substituted.
        rational value = row[cols];
        for (std::size_t c = pivot + 1; c < cols; ++c) {
            value -= row[c] * x[c];
        }
        x[pivot] = value;
    }
    return x;
}

} // namespace fcqss::linalg
