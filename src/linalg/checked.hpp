// fcqss — linalg/checked.hpp
// Overflow-checked 64-bit integer arithmetic.  Invariant computation on
// weighted nets multiplies arc weights and invariant entries; a silent wrap
// would corrupt a schedulability verdict, so every operation traps instead.
#ifndef FCQSS_LINALG_CHECKED_HPP
#define FCQSS_LINALG_CHECKED_HPP

#include <cstdint>

#include "base/error.hpp"

namespace fcqss::linalg {

/// a + b, throwing arith_overflow_error on overflow.
[[nodiscard]] inline std::int64_t checked_add(std::int64_t a, std::int64_t b)
{
    std::int64_t result = 0;
    if (__builtin_add_overflow(a, b, &result)) {
        throw arith_overflow_error("integer addition overflow");
    }
    return result;
}

/// a - b, throwing arith_overflow_error on overflow.
[[nodiscard]] inline std::int64_t checked_sub(std::int64_t a, std::int64_t b)
{
    std::int64_t result = 0;
    if (__builtin_sub_overflow(a, b, &result)) {
        throw arith_overflow_error("integer subtraction overflow");
    }
    return result;
}

/// a * b, throwing arith_overflow_error on overflow.
[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a, std::int64_t b)
{
    std::int64_t result = 0;
    if (__builtin_mul_overflow(a, b, &result)) {
        throw arith_overflow_error("integer multiplication overflow");
    }
    return result;
}

/// -a, throwing arith_overflow_error for INT64_MIN.
[[nodiscard]] inline std::int64_t checked_neg(std::int64_t a)
{
    return checked_sub(0, a);
}

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept;

/// Least common multiple of |a| and |b| with overflow checking.
[[nodiscard]] std::int64_t lcm64(std::int64_t a, std::int64_t b);

} // namespace fcqss::linalg

#endif // FCQSS_LINALG_CHECKED_HPP
