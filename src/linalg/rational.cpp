#include "linalg/rational.hpp"

#include <ostream>

#include "base/error.hpp"
#include "linalg/checked.hpp"

namespace fcqss::linalg {

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept
{
    // Compute on unsigned magnitudes so INT64_MIN does not overflow on negate.
    auto ua = a < 0 ? 0ULL - static_cast<unsigned long long>(a)
                    : static_cast<unsigned long long>(a);
    auto ub = b < 0 ? 0ULL - static_cast<unsigned long long>(b)
                    : static_cast<unsigned long long>(b);
    while (ub != 0) {
        const auto r = ua % ub;
        ua = ub;
        ub = r;
    }
    return static_cast<std::int64_t>(ua);
}

std::int64_t lcm64(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0) {
        return 0;
    }
    const std::int64_t g = gcd64(a, b);
    const std::int64_t a_abs = a < 0 ? checked_neg(a) : a;
    const std::int64_t b_abs = b < 0 ? checked_neg(b) : b;
    return checked_mul(a_abs / g, b_abs);
}

rational::rational(std::int64_t numerator) : num_(numerator), den_(1) {}

rational::rational(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator)
{
    if (den_ == 0) {
        throw domain_error("rational: zero denominator");
    }
    normalize();
}

void rational::normalize()
{
    if (den_ < 0) {
        num_ = checked_neg(num_);
        den_ = checked_neg(den_);
    }
    if (num_ == 0) {
        den_ = 1;
        return;
    }
    const std::int64_t g = gcd64(num_, den_);
    num_ /= g;
    den_ /= g;
}

std::int64_t rational::as_integer() const
{
    if (!is_integer()) {
        throw domain_error("rational::as_integer: " + to_string() + " is not integral");
    }
    return num_;
}

rational rational::operator-() const
{
    rational r = *this;
    r.num_ = checked_neg(r.num_);
    return r;
}

rational& rational::operator+=(const rational& rhs)
{
    // Reduce cross terms first to delay overflow: a/b + c/d with g = gcd(b, d).
    const std::int64_t g = gcd64(den_, rhs.den_);
    const std::int64_t rhs_scale = den_ / g;
    const std::int64_t lhs_scale = rhs.den_ / g;
    num_ = checked_add(checked_mul(num_, lhs_scale), checked_mul(rhs.num_, rhs_scale));
    den_ = checked_mul(den_, lhs_scale);
    normalize();
    return *this;
}

rational& rational::operator-=(const rational& rhs)
{
    return *this += -rhs;
}

rational& rational::operator*=(const rational& rhs)
{
    // Cross-cancel before multiplying to keep intermediates small.
    const std::int64_t g1 = gcd64(num_, rhs.den_);
    const std::int64_t g2 = gcd64(rhs.num_, den_);
    num_ = checked_mul(num_ / g1, rhs.num_ / g2);
    den_ = checked_mul(den_ / g2, rhs.den_ / g1);
    normalize();
    return *this;
}

rational& rational::operator/=(const rational& rhs)
{
    if (rhs.is_zero()) {
        throw domain_error("rational: division by zero");
    }
    return *this *= reciprocal(rhs);
}

std::strong_ordering operator<=>(const rational& a, const rational& b)
{
    // a.num/a.den <=> b.num/b.den with positive denominators.
    const std::int64_t lhs = checked_mul(a.num_, b.den_);
    const std::int64_t rhs = checked_mul(b.num_, a.den_);
    return lhs <=> rhs;
}

std::string rational::to_string() const
{
    if (den_ == 1) {
        return std::to_string(num_);
    }
    return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const rational& r)
{
    return os << r.to_string();
}

rational reciprocal(const rational& r)
{
    if (r.is_zero()) {
        throw domain_error("rational: reciprocal of zero");
    }
    return {r.den(), r.num()};
}

rational abs(const rational& r)
{
    return r.sign() < 0 ? -r : r;
}

} // namespace fcqss::linalg
