#include "qss/task_partition.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "pn/structure.hpp"

namespace fcqss::qss {

namespace {

// Plain union-find over transition indices.
class union_find {
public:
    explicit union_find(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }

    std::size_t find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

} // namespace

task_partition partition_tasks(const pn::petri_net& net, const qss_result& result)
{
    if (!result.schedulable) {
        throw domain_error("partition_tasks: net is not quasi-statically schedulable");
    }

    // Rate dependence = transitive closure of "appears in the same minimal
    // T-invariant" over every reduction's invariants.
    union_find groups(net.transition_count());
    std::vector<bool> used(net.transition_count(), false);
    for (const schedule_entry& entry : result.entries) {
        for (const linalg::int_vector& invariant : entry.analysis.invariants) {
            const std::vector<std::size_t> support = linalg::support(invariant);
            for (std::size_t i : support) {
                used[i] = true;
            }
            for (std::size_t i = 1; i < support.size(); ++i) {
                groups.merge(support[0], support[i]);
            }
        }
    }

    const std::vector<pn::transition_id> sources = pn::source_transitions(net);
    task_partition partition;

    // Group representatives that contain a source become tasks, in the order
    // the sources appear (so task numbering is stable and source-led).
    std::vector<std::size_t> task_of_root(net.transition_count(), SIZE_MAX);
    for (pn::transition_id s : sources) {
        const std::size_t root = groups.find(s.index());
        if (task_of_root[root] == SIZE_MAX) {
            task_of_root[root] = partition.tasks.size();
            task_group group;
            group.name = "task_" + net.transition_name(s);
            partition.tasks.push_back(std::move(group));
        }
        partition.tasks[task_of_root[root]].sources.push_back(s);
    }

    for (pn::transition_id t : net.transitions()) {
        if (!used[t.index()]) {
            continue; // never fired by any cycle (cannot happen when schedulable)
        }
        const std::size_t root = groups.find(t.index());
        if (task_of_root[root] != SIZE_MAX) {
            partition.tasks[task_of_root[root]].members.push_back(t);
        } else {
            partition.detached.push_back(t);
        }
    }

    // Nets without sources (autonomous marked-graph style): one task owning
    // everything that fires.
    if (partition.tasks.empty() && !partition.detached.empty()) {
        task_group group;
        group.name = "task_main";
        group.members = std::move(partition.detached);
        partition.detached.clear();
        partition.tasks.push_back(std::move(group));
    }

    for (task_group& group : partition.tasks) {
        std::sort(group.members.begin(), group.members.end());
        group.members.erase(std::unique(group.members.begin(), group.members.end()),
                            group.members.end());
    }
    return partition;
}

} // namespace fcqss::qss
