#include "qss/t_allocation.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace fcqss::qss {

std::vector<pn::transition_id>
excluded_transitions(const std::vector<choice_cluster>& clusters,
                     const t_allocation& allocation)
{
    if (allocation.chosen.size() != clusters.size()) {
        throw model_error("excluded_transitions: allocation/cluster size mismatch");
    }
    std::vector<pn::transition_id> excluded;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        for (pn::transition_id t : clusters[i].alternatives) {
            if (t != allocation.chosen[i]) {
                excluded.push_back(t);
            }
        }
    }
    std::sort(excluded.begin(), excluded.end());
    excluded.erase(std::unique(excluded.begin(), excluded.end()), excluded.end());
    return excluded;
}

std::size_t allocation_count(const std::vector<choice_cluster>& clusters)
{
    std::size_t count = 1;
    for (const choice_cluster& cluster : clusters) {
        const std::size_t alternatives = cluster.alternatives.size();
        if (count > SIZE_MAX / alternatives) {
            return SIZE_MAX; // saturate
        }
        count *= alternatives;
    }
    return count;
}

std::vector<t_allocation>
enumerate_allocations(const std::vector<choice_cluster>& clusters,
                      std::size_t max_allocations)
{
    const std::size_t total = allocation_count(clusters);
    if (total > max_allocations) {
        throw resource_limit_error("enumerate_allocations: " + std::to_string(total) +
                    " allocations exceed the configured limit of " +
                    std::to_string(max_allocations));
    }

    std::vector<t_allocation> result;
    result.reserve(total);
    t_allocation current;
    current.chosen.resize(clusters.size());

    // Odometer enumeration, most significant cluster first.
    std::vector<std::size_t> digit(clusters.size(), 0);
    while (true) {
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            current.chosen[i] = clusters[i].alternatives[digit[i]];
        }
        result.push_back(current);
        // Increment from the last cluster.
        std::size_t i = clusters.size();
        while (i > 0) {
            --i;
            if (++digit[i] < clusters[i].alternatives.size()) {
                break;
            }
            digit[i] = 0;
            if (i == 0) {
                return result;
            }
        }
        if (clusters.empty()) {
            return result;
        }
    }
}

std::string to_string(const pn::petri_net& net,
                      const std::vector<choice_cluster>& clusters,
                      const t_allocation& allocation)
{
    std::string text = "{";
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        if (i != 0) {
            text += ", ";
        }
        text += net.place_name(clusters[i].place) + " -> " +
                net.transition_name(allocation.chosen[i]);
    }
    text += "}";
    return text;
}

} // namespace fcqss::qss
