// fcqss — qss/task_partition.hpp
// Partitioning the synthesized software into tasks (Sec. 4): one task per
// group of source transitions with *dependent* firing rates.  "A task is
// composed only of transitions with dependent firing rates, i.e. transitions
// belonging to the same T-invariant" — so transitions are grouped by the
// transitive closure of sharing a minimal T-invariant, and each group with a
// source transition becomes a task.  Inputs with independent rates (the ATM
// server's Cell and Tick) land in different groups, giving the paper's lower
// bound on the number of tasks.
#ifndef FCQSS_QSS_TASK_PARTITION_HPP
#define FCQSS_QSS_TASK_PARTITION_HPP

#include <string>
#include <vector>

#include "qss/scheduler.hpp"

namespace fcqss::qss {

/// One synthesized task.
struct task_group {
    /// The independent-rate inputs that activate this task.
    std::vector<pn::transition_id> sources;
    /// Every transition executed by this task (ascending).
    std::vector<pn::transition_id> members;
    /// Task name derived from its first source ("task_Cell").
    std::string name;
};

/// The task partition of a schedulable QSS result.
struct task_partition {
    std::vector<task_group> tasks;
    /// Transitions reachable in the schedule but belonging to no source
    /// group (only possible in nets without source transitions: one
    /// free-running task is emitted for them).
    std::vector<pn::transition_id> detached;
};

/// Computes the partition from the invariants of all schedule entries.
/// Requires result.schedulable.
[[nodiscard]] task_partition partition_tasks(const pn::petri_net& net,
                                             const qss_result& result);

} // namespace fcqss::qss

#endif // FCQSS_QSS_TASK_PARTITION_HPP
