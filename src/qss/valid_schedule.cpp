#include "qss/valid_schedule.hpp"

#include <algorithm>

#include "pn/state_space.hpp"
#include "pn/structure.hpp"

namespace fcqss::qss {

std::string validity_violation::describe(const pn::petri_net& net) const
{
    switch (reason) {
    case kind::not_a_finite_complete_cycle:
        return "sequence " + std::to_string(sequence_index) +
               " is not a finite complete cycle (does not fire back to the "
               "initial marking)";
    case kind::missing_source_transition:
        return "sequence " + std::to_string(sequence_index) +
               " does not contain source transition '" + net.transition_name(transition) +
               "'";
    case kind::missing_alternative:
        return "sequence " + std::to_string(sequence_index) + " position " +
               std::to_string(position) + ": no sequence in S shares the prefix and " +
               "continues with equal-conflict alternative '" +
               net.transition_name(transition) + "'";
    }
    return "unknown violation";
}

std::optional<validity_violation>
check_valid_schedule(const pn::petri_net& net,
                     const std::vector<pn::firing_sequence>& schedule)
{
    const std::vector<pn::transition_id> sources = pn::source_transitions(net);

    // Side conditions: finite complete cycles covering every source.  The
    // replays share one token_game so checking a large schedule allocates
    // no per-sequence markings.
    pn::token_game game(net);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        game.reset();
        const bool complete_cycle = !game.run(schedule[i]) && game.at_initial();
        if (!complete_cycle) {
            return validity_violation{
                validity_violation::kind::not_a_finite_complete_cycle, i, 0, {}};
        }
        for (pn::transition_id s : sources) {
            if (std::find(schedule[i].begin(), schedule[i].end(), s) ==
                schedule[i].end()) {
                return validity_violation{
                    validity_violation::kind::missing_source_transition, i, 0, s};
            }
        }
    }

    // Equal Conflict classes with >= 2 members, as a per-transition lookup.
    std::vector<std::vector<pn::transition_id>> alternatives_of(net.transition_count());
    for (const choice_cluster& cluster : choice_clusters(net)) {
        for (pn::transition_id t : cluster.alternatives) {
            for (pn::transition_id other : cluster.alternatives) {
                if (other != t &&
                    std::find(alternatives_of[t.index()].begin(),
                              alternatives_of[t.index()].end(),
                              other) == alternatives_of[t.index()].end()) {
                    alternatives_of[t.index()].push_back(other);
                }
            }
        }
    }

    // Def. 3.1 proper: alternative continuations at first occurrences.
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const pn::firing_sequence& sigma = schedule[i];
        for (std::size_t j = 0; j < sigma.size(); ++j) {
            const pn::transition_id t = sigma[j];
            // Only the first occurrence of t within sigma_i is constrained.
            if (std::find(sigma.begin(), sigma.begin() + static_cast<std::ptrdiff_t>(j),
                          t) != sigma.begin() + static_cast<std::ptrdiff_t>(j)) {
                continue;
            }
            for (pn::transition_id alternative : alternatives_of[t.index()]) {
                bool found = false;
                for (const pn::firing_sequence& sigma_l : schedule) {
                    if (sigma_l.size() <= j || sigma_l[j] != alternative) {
                        continue;
                    }
                    if (std::equal(sigma.begin(),
                                   sigma.begin() + static_cast<std::ptrdiff_t>(j),
                                   sigma_l.begin())) {
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    return validity_violation{
                        validity_violation::kind::missing_alternative, i, j, alternative};
                }
            }
        }
    }
    return std::nullopt;
}

} // namespace fcqss::qss
