// fcqss — qss/tradeoff.hpp
// Schedule-space exploration: the paper's conclusions propose letting the
// designer "explore different schedules, evaluating tradeoffs between code
// and buffer size".  This module implements that exploration: for each
// unrolling factor k, the cycle vectors are scaled k-fold, which lengthens
// the static schedule (more code when loops are unrolled, fewer guard
// re-evaluations at run time) and changes the peak token counts the
// counters must accommodate (buffer memory).
#ifndef FCQSS_QSS_TRADEOFF_HPP
#define FCQSS_QSS_TRADEOFF_HPP

#include <cstdint>
#include <vector>

#include "qss/scheduler.hpp"

namespace fcqss::qss {

/// Peak token counts per place over the execution of every cycle of a valid
/// schedule — the capacity the synthesized counters/buffers must hold.
/// Entry p is the maximum of m(p) over all prefixes of all cycles.
[[nodiscard]] std::vector<std::int64_t> schedule_buffer_bounds(const pn::petri_net& net,
                                                               const qss_result& result);

/// One point of the code/buffer tradeoff curve.
struct tradeoff_point {
    /// Cycle unrolling factor (1 = the minimal schedule).
    std::int64_t unroll = 1;
    /// Total schedule length (sum of cycle lengths) — the static-code-size
    /// proxy when cycles are unrolled into straight-line code.
    std::int64_t schedule_length = 0;
    /// Sum over places of peak token counts (buffer memory in tokens).
    std::int64_t total_buffer_tokens = 0;
    /// Largest single-place peak.
    std::int64_t max_place_tokens = 0;
};

/// Evaluates unrolling factors 1..max_unroll for a schedulable net.
/// Each factor re-simulates every reduction with the scaled cycle vector.
[[nodiscard]] std::vector<tradeoff_point>
explore_tradeoff(const pn::petri_net& net, const qss_result& result,
                 std::int64_t max_unroll = 4);

} // namespace fcqss::qss

#endif // FCQSS_QSS_TRADEOFF_HPP
