#include "qss/executability.hpp"

#include "base/error.hpp"
#include "base/prng.hpp"
#include "pn/firing.hpp"

namespace fcqss::qss {

namespace {

// Fires `cycle` from m; returns the failing position or nullopt.
std::optional<std::size_t> run_cycle(const pn::petri_net& net, pn::marking& m,
                                     const pn::firing_sequence& cycle)
{
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (!pn::try_fire(net, m, cycle[i])) {
            return i;
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<executability_failure>
check_executability(const pn::petri_net& net, const qss_result& result,
                    const executability_options& options)
{
    if (!result.schedulable) {
        throw domain_error("check_executability: net is not schedulable");
    }
    const auto cycles = result.cycles();

    // Exhaustive pairwise pass: run cycle i then cycle j (each complete
    // cycle restores the initial marking, so longer compositions reduce to
    // chains of these steps; the pairwise pass catches ordering-dependent
    // blocking through shared fragments).
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        for (std::size_t j = 0; j < cycles.size(); ++j) {
            pn::marking m = pn::initial_marking(net);
            if (const auto at = run_cycle(net, m, cycles[i])) {
                return executability_failure{
                    i, *at, "first cycle " + std::to_string(i) + " alone"};
            }
            if (const auto at = run_cycle(net, m, cycles[j])) {
                return executability_failure{
                    j, *at,
                    "cycle " + std::to_string(j) + " after cycle " + std::to_string(i)};
            }
        }
    }

    // Random mixes: long adversarial runs through the cycle set.
    prng rng(options.seed);
    for (int round = 0; round < options.random_rounds; ++round) {
        pn::marking m = pn::initial_marking(net);
        std::string history;
        const int length = 2 + static_cast<int>(rng.below(6));
        for (int step = 0; step < length; ++step) {
            const std::size_t pick = rng.below(cycles.size());
            history += (step ? " -> " : "") + std::to_string(pick);
            if (const auto at = run_cycle(net, m, cycles[pick])) {
                return executability_failure{pick, *at, "random mix " + history};
            }
        }
        if (m != pn::initial_marking(net)) {
            return executability_failure{0, 0,
                                         "random mix " + history +
                                             " did not restore the initial marking"};
        }
    }
    return std::nullopt;
}

} // namespace fcqss::qss
