#include "qss/executability.hpp"

#include "base/error.hpp"
#include "base/prng.hpp"
#include "pn/state_space.hpp"

namespace fcqss::qss {

std::optional<executability_failure>
check_executability(const pn::petri_net& net, const qss_result& result,
                    const executability_options& options)
{
    if (!result.schedulable) {
        throw domain_error("check_executability: net is not schedulable");
    }
    const auto cycles = result.cycles();

    // All replays run on one dense token game: reset() rewinds to the
    // initial marking without reallocating, run() reports the first
    // position where a cycle blocks.
    pn::token_game game(net);

    // Exhaustive pairwise pass: run cycle i then cycle j (each complete
    // cycle restores the initial marking, so longer compositions reduce to
    // chains of these steps; the pairwise pass catches ordering-dependent
    // blocking through shared fragments).
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        for (std::size_t j = 0; j < cycles.size(); ++j) {
            game.reset();
            if (const auto at = game.run(cycles[i])) {
                return executability_failure{
                    i, *at, "first cycle " + std::to_string(i) + " alone"};
            }
            if (const auto at = game.run(cycles[j])) {
                return executability_failure{
                    j, *at,
                    "cycle " + std::to_string(j) + " after cycle " + std::to_string(i)};
            }
        }
    }

    // Random mixes: long adversarial runs through the cycle set.
    prng rng(options.seed);
    for (int round = 0; round < options.random_rounds; ++round) {
        game.reset();
        std::string history;
        const int length = 2 + static_cast<int>(rng.below(6));
        for (int step = 0; step < length; ++step) {
            const std::size_t pick = rng.below(cycles.size());
            history += (step ? " -> " : "") + std::to_string(pick);
            if (const auto at = game.run(cycles[pick])) {
                return executability_failure{pick, *at, "random mix " + history};
            }
        }
        if (!game.at_initial()) {
            return executability_failure{0, 0,
                                         "random mix " + history +
                                             " did not restore the initial marking"};
        }
    }
    return std::nullopt;
}

} // namespace fcqss::qss
