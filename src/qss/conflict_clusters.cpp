#include "qss/conflict_clusters.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "pn/net_class.hpp"

namespace fcqss::qss {

std::vector<choice_cluster> choice_clusters(const pn::petri_net& net)
{
    if (!pn::is_free_choice(net)) {
        throw domain_error("choice_clusters: net '" + net.name() +
                           "' is not free-choice: " +
                           pn::describe_free_choice_violation(net));
    }
    std::vector<choice_cluster> clusters;
    for (pn::place_id p : net.places()) {
        const auto& consumers = net.consumers(p);
        if (consumers.size() <= 1) {
            continue;
        }
        choice_cluster cluster;
        cluster.place = p;
        const std::int64_t weight = consumers.front().weight;
        for (const pn::transition_weight& consumer : consumers) {
            if (consumer.weight != weight) {
                throw domain_error(
                    "choice_clusters: choice place '" + net.place_name(p) +
                    "' has consumers with different arc weights; the Equal Conflict "
                    "discipline requires equal weights so that enabling one "
                    "alternative enables all");
            }
            cluster.alternatives.push_back(consumer.transition);
        }
        std::sort(cluster.alternatives.begin(), cluster.alternatives.end());
        clusters.push_back(std::move(cluster));
    }
    return clusters;
}

std::vector<std::int32_t> conflict_priority_keys(const pn::petri_net& net)
{
    std::vector<std::int32_t> keys(net.transition_count());
    for (pn::transition_id t : net.transitions()) {
        keys[t.index()] = t.value();
    }
    for (const choice_cluster& cluster : choice_clusters(net)) {
        const std::int32_t key = cluster.alternatives.front().value();
        for (pn::transition_id t : cluster.alternatives) {
            keys[t.index()] = key;
        }
    }
    return keys;
}

bool in_any_cluster(const std::vector<choice_cluster>& clusters, pn::transition_id t)
{
    for (const choice_cluster& cluster : clusters) {
        if (std::find(cluster.alternatives.begin(), cluster.alternatives.end(), t) !=
            cluster.alternatives.end()) {
            return true;
        }
    }
    return false;
}

} // namespace fcqss::qss
