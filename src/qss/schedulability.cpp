#include "qss/schedulability.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "linalg/checked.hpp"
#include "pn/incidence.hpp"
#include "pn/invariants.hpp"
#include "pn/structure.hpp"

namespace fcqss::qss {

std::string to_string(reduction_failure f)
{
    switch (f) {
    case reduction_failure::none: return "schedulable";
    case reduction_failure::inconsistent: return "inconsistent";
    case reduction_failure::source_uncovered: return "source transition uncovered";
    case reduction_failure::deadlock: return "deadlock";
    }
    return "unknown";
}

int wire_code(reduction_failure f) noexcept
{
    // Append-only: these numbers are on the wire and in exit codes.
    switch (f) {
    case reduction_failure::none: return 0;
    case reduction_failure::inconsistent: return 1;
    case reduction_failure::source_uncovered: return 2;
    case reduction_failure::deadlock: return 3;
    }
    return -1;
}

std::optional<reduction_failure> reduction_failure_from_wire(int code) noexcept
{
    switch (code) {
    case 0: return reduction_failure::none;
    case 1: return reduction_failure::inconsistent;
    case 2: return reduction_failure::source_uncovered;
    case 3: return reduction_failure::deadlock;
    default: return std::nullopt;
    }
}

namespace {

// Greedy deterministic cover of the reduction's transitions by minimal
// invariants: repeatedly take the invariant covering the most uncovered
// transitions (ties: lowest index).  Returns indices into `invariants`.
std::vector<std::size_t> greedy_invariant_cover(
    const std::vector<linalg::int_vector>& invariants, std::size_t transition_count,
    const std::vector<bool>& needs_cover)
{
    std::vector<bool> covered(transition_count, false);
    std::size_t uncovered_count = 0;
    for (std::size_t i = 0; i < transition_count; ++i) {
        if (needs_cover[i]) {
            ++uncovered_count;
        } else {
            covered[i] = true;
        }
    }

    std::vector<std::size_t> chosen;
    while (uncovered_count > 0) {
        std::size_t best = invariants.size();
        std::size_t best_gain = 0;
        for (std::size_t i = 0; i < invariants.size(); ++i) {
            std::size_t gain = 0;
            for (std::size_t t : linalg::support(invariants[i])) {
                if (!covered[t]) {
                    ++gain;
                }
            }
            if (gain > best_gain) {
                best_gain = gain;
                best = i;
            }
        }
        require_internal(best < invariants.size(),
                         "greedy_invariant_cover: uncoverable transition slipped "
                         "past the consistency check");
        chosen.push_back(best);
        for (std::size_t t : linalg::support(invariants[best])) {
            if (!covered[t]) {
                covered[t] = true;
                --uncovered_count;
            }
        }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

// Deterministic choice-first simulation of `target` firings per transition
// on the reduced subnet.  Returns the sequence in original ids, or the list
// of transitions still owing firings on deadlock.
struct simulation_outcome {
    pn::firing_sequence cycle;
    std::vector<pn::transition_id> stalled;
    bool ok = false;
};

simulation_outcome simulate_cycle(const reduced_net& sub,
                                  const std::vector<bool>& is_choice_member,
                                  const std::vector<std::int32_t>& priority_keys,
                                  const linalg::int_vector& target)
{
    simulation_outcome outcome;
    pn::marking m = pn::initial_marking(sub.net);

    linalg::int_vector remaining(sub.net.transition_count());
    std::int64_t total = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
        const pn::transition_id original = sub.to_original_transition[i];
        remaining[i] = target[original.index()];
        total = linalg::checked_add(total, remaining[i]);
    }
    outcome.cycle.reserve(static_cast<std::size_t>(total));

    while (total > 0) {
        // Select the highest-priority enabled transition with work left.
        // Priority classes: (0) allocated conflict transitions, keyed by
        // their cluster's minimum id, so choices resolve at the earliest
        // possible position and cycles of different reductions share
        // prefixes until they diverge at a choice (Def. 3.1); (1) plain
        // internal transitions, token-driven; (2) source transitions last —
        // a new input is admitted only when the current reaction has
        // quiesced, so multiplicity differences between reductions surface
        // only after the choice that causes them has fired.
        std::size_t best = sub.net.transition_count();
        std::tuple<int, std::int32_t> best_key{3, 0};
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            if (remaining[i] == 0) {
                continue;
            }
            const pn::transition_id local{static_cast<std::int32_t>(i)};
            if (!pn::is_enabled(sub.net, m, local)) {
                continue;
            }
            const pn::transition_id original = sub.to_original_transition[i];
            int priority_class = 1;
            if (is_choice_member[original.index()]) {
                priority_class = 0;
            } else if (sub.net.inputs(local).empty()) {
                priority_class = 2;
            }
            const std::tuple<int, std::int32_t> key{priority_class,
                                                    priority_keys[original.index()]};
            if (best == sub.net.transition_count() || key < best_key) {
                best = i;
                best_key = key;
            }
        }
        if (best == sub.net.transition_count()) {
            for (std::size_t i = 0; i < remaining.size(); ++i) {
                if (remaining[i] > 0) {
                    outcome.stalled.push_back(sub.to_original_transition[i]);
                }
            }
            return outcome;
        }
        pn::fire(sub.net, m, pn::transition_id{static_cast<std::int32_t>(best)});
        --remaining[best];
        --total;
        outcome.cycle.push_back(sub.to_original_transition[best]);
    }

    require_internal(m == pn::initial_marking(sub.net),
                     "simulate_cycle: T-invariant firing did not restore the marking");
    outcome.ok = true;
    return outcome;
}

} // namespace

reduction_schedule schedule_reduction(const pn::petri_net& net,
                                      const std::vector<choice_cluster>& clusters,
                                      const t_reduction& reduction)
{
    reduction_schedule result;
    const reduced_net sub = materialize(net, reduction);

    // Minimal T-invariants of the subnet, lifted to the original index space.
    const std::vector<linalg::int_vector> sub_invariants = pn::t_invariants(sub.net);
    for (const linalg::int_vector& x : sub_invariants) {
        linalg::int_vector lifted(net.transition_count(), 0);
        for (std::size_t i = 0; i < x.size(); ++i) {
            lifted[sub.to_original_transition[i].index()] = x[i];
        }
        result.invariants.push_back(std::move(lifted));
    }

    // Consistency (Def. 3.5-1): every kept transition inside a T-invariant.
    std::vector<bool> covered(net.transition_count(), false);
    for (const linalg::int_vector& x : result.invariants) {
        for (std::size_t t : linalg::support(x)) {
            covered[t] = true;
        }
    }
    std::vector<pn::transition_id> uncovered;
    for (pn::transition_id t : net.transitions()) {
        if (reduction.keep_transition[t.index()] && !covered[t.index()]) {
            uncovered.push_back(t);
        }
    }
    if (!uncovered.empty()) {
        if (result.invariants.empty()) {
            // No cyclic behaviour at all: the reduction can only execute
            // finitely (Fig. 7's "inconsistent" reductions).
            result.failure = reduction_failure::inconsistent;
            result.offending = std::move(uncovered);
            return result;
        }
        // Some invariants exist; if a source of N is among the uncovered
        // transitions report Def. 3.5-2 specifically, else inconsistency.
        const std::vector<pn::transition_id> sources = pn::source_transitions(net);
        std::vector<pn::transition_id> uncovered_sources;
        for (pn::transition_id s : sources) {
            if (std::find(uncovered.begin(), uncovered.end(), s) != uncovered.end()) {
                uncovered_sources.push_back(s);
            }
        }
        if (!uncovered_sources.empty()) {
            result.failure = reduction_failure::source_uncovered;
            result.offending = std::move(uncovered_sources);
        } else {
            result.failure = reduction_failure::inconsistent;
            result.offending = std::move(uncovered);
        }
        return result;
    }

    // Cycle vector: sum of a deterministic greedy invariant cover.
    std::vector<bool> needs_cover(net.transition_count(), false);
    for (pn::transition_id t : net.transitions()) {
        needs_cover[t.index()] = reduction.keep_transition[t.index()];
    }
    const std::vector<std::size_t> cover =
        greedy_invariant_cover(result.invariants, net.transition_count(), needs_cover);
    result.cycle_vector.assign(net.transition_count(), 0);
    for (std::size_t i : cover) {
        result.cycle_vector = linalg::add(result.cycle_vector, result.invariants[i]);
    }

    // Firing-policy metadata from the original net's clusters.
    std::vector<bool> is_choice_member(net.transition_count(), false);
    for (const choice_cluster& cluster : clusters) {
        for (pn::transition_id t : cluster.alternatives) {
            is_choice_member[t.index()] = true;
        }
    }
    const std::vector<std::int32_t> keys = conflict_priority_keys(net);

    // Def. 3.5-3: simulate.  If the minimal cover deadlocks, small multiples
    // can still complete on weighted nets, so retry a few before giving up.
    constexpr std::int64_t max_cycle_multiplier = 4;
    for (std::int64_t k = 1; k <= max_cycle_multiplier; ++k) {
        const linalg::int_vector target =
            k == 1 ? result.cycle_vector : linalg::scale(result.cycle_vector, k);
        simulation_outcome outcome = simulate_cycle(sub, is_choice_member, keys, target);
        if (outcome.ok) {
            if (k > 1) {
                result.cycle_vector = target;
            }
            result.cycle = std::move(outcome.cycle);
            return result;
        }
        if (k == max_cycle_multiplier) {
            result.failure = reduction_failure::deadlock;
            result.offending = std::move(outcome.stalled);
        }
    }
    return result;
}

} // namespace fcqss::qss
