#include "qss/report.hpp"

#include "pn/firing.hpp"
#include "pn/net_class.hpp"
#include "pn/structure.hpp"
#include "qss/executability.hpp"
#include "qss/task_partition.hpp"
#include "qss/tradeoff.hpp"
#include "qss/valid_schedule.hpp"

namespace fcqss::qss {

std::string synthesis_report(const pn::petri_net& net, const report_options& options)
{
    std::string out;
    const auto line = [&out](const std::string& text) {
        out += text;
        out += '\n';
    };

    const pn::net_statistics stats = pn::statistics(net);
    line("=== quasi-static synthesis report: " + net.name() + " ===");
    line("model: " + to_string(pn::classify(net)) + ", " + std::to_string(stats.places) +
         " places, " + std::to_string(stats.transitions) + " transitions, " +
         std::to_string(stats.arcs) + " arcs");
    line("structure: " + std::to_string(stats.choices) + " choices, " +
         std::to_string(stats.merges) + " merges, " +
         std::to_string(stats.source_transitions) + " sources, " +
         std::to_string(stats.sink_transitions) + " sinks");

    const qss_result result = quasi_static_schedule(net);
    line("allocations enumerated: " + std::to_string(result.allocations_enumerated) +
         "; distinct T-reductions: " + std::to_string(result.entries.size()));

    if (!result.schedulable) {
        line("VERDICT: NOT quasi-statically schedulable");
        line("diagnosis: " + result.diagnosis);
        line("no implementation of this specification can run forever in "
             "bounded memory (Theorem 3.1).");
        return out;
    }
    line("VERDICT: schedulable");

    const std::size_t shown =
        options.all_cycles ? result.entries.size()
                           : std::min(options.cycle_preview, result.entries.size());
    line("valid schedule (" + std::to_string(result.entries.size()) +
         " finite complete cycles" +
         (shown < result.entries.size()
              ? ", showing " + std::to_string(shown)
              : "") +
         "):");
    for (std::size_t i = 0; i < shown; ++i) {
        line("  " + to_string(net, result.entries[i].analysis.cycle));
    }

    const auto violation = check_valid_schedule(net, result.cycles());
    line("Definition 3.1 validity: " +
         (violation ? "VIOLATED — " + violation->describe(net) : std::string("ok")));

    if (options.check_executability) {
        const auto failure = qss::check_executability(net, result);
        line("executability (footnote 2): " +
             (failure ? "BLOCKS — " + failure->context : std::string("ok")));
    }

    const task_partition partition = partition_tasks(net, result);
    line("tasks (" + std::to_string(partition.tasks.size()) + "):");
    for (const task_group& task : partition.tasks) {
        std::string sources;
        for (pn::transition_id s : task.sources) {
            sources += " " + net.transition_name(s);
        }
        line("  " + task.name + ":" + (sources.empty() ? " (autonomous)" : sources) +
             ", " + std::to_string(task.members.size()) + " transitions");
    }

    const auto bounds = schedule_buffer_bounds(net, result);
    std::int64_t total = 0;
    std::int64_t worst = 0;
    for (std::int64_t b : bounds) {
        total += b;
        worst = std::max(worst, b);
    }
    line("buffer bounds under the schedule: " + std::to_string(total) +
         " tokens total, worst single place " + std::to_string(worst));
    return out;
}

} // namespace fcqss::qss
