// fcqss — qss/reduction.hpp
// The Reduction Algorithm (Def. 3.4, Fig. 6): given a T-allocation, remove
// the unallocated conflict transitions and the net fragments they orphan.
// The result, a T-reduction, is a conflict-free subnet — the component of the
// net that executes when the control resolves the choices as allocated.
//
// Rule subtleties (validated against the paper's Figs. 6 and 7):
//  * A place downstream of a removed transition is KEPT when its consumer
//    has another live input place that is not currently a source place
//    (rule b.ii).  This deliberately leaves producerless places inside the
//    reductions of join-after-choice nets, making them inconsistent — which
//    is how non-schedulability is detected (Fig. 7).
//  * "Source place" is evaluated against the *current, partially reduced*
//    net: a place whose producers were all removed counts as a source place
//    from that point on (this is what removes p5 and p6 in Fig. 6 step 4).
//  * A transition whose surviving inputs are all source places is removed
//    together with those places (rule c.ii): a bounded initial token supply
//    cannot sustain an infinite cyclic schedule.
#ifndef FCQSS_QSS_REDUCTION_HPP
#define FCQSS_QSS_REDUCTION_HPP

#include <string>
#include <vector>

#include "pn/petri_net.hpp"
#include "qss/t_allocation.hpp"

namespace fcqss::qss {

/// One step of the reduction, for traces (Fig. 6 reproduces these).
struct reduction_step {
    enum class kind {
        remove_unallocated_transition,
        remove_orphaned_place,
        remove_orphaned_transition,
        remove_source_fed_transition,
        remove_source_place,
    };
    kind action;
    /// Name of the removed node (place or transition).
    std::string node;
    /// Why the rule fired, in Fig. 6's style ("Remove t3 (unallocated)").
    std::string reason;
};

/// A T-reduction: membership bitmaps over the original net's node spaces.
struct t_reduction {
    std::vector<bool> keep_transition;
    std::vector<bool> keep_place;
    /// The allocation that generated this reduction.
    t_allocation allocation;
    /// Populated when reduce() is asked to record the steps.
    std::vector<reduction_step> trace;

    [[nodiscard]] std::size_t kept_transition_count() const;
    [[nodiscard]] std::size_t kept_place_count() const;
    /// Reductions from different allocations can coincide (choices inside
    /// removed branches are moot); equality on the bitmaps is what the
    /// scheduler deduplicates on.
    [[nodiscard]] bool same_subnet(const t_reduction& other) const;
};

/// Runs the Reduction Algorithm for `allocation` over `net`.
[[nodiscard]] t_reduction reduce(const pn::petri_net& net,
                                 const std::vector<choice_cluster>& clusters,
                                 const t_allocation& allocation,
                                 bool record_trace = false);

/// The reduction materialized as its own petri_net (names preserved), with
/// maps from the subnet's ids back to the original net's.
struct reduced_net {
    pn::petri_net net;
    std::vector<pn::transition_id> to_original_transition;
    std::vector<pn::place_id> to_original_place;
};

[[nodiscard]] reduced_net materialize(const pn::petri_net& net,
                                      const t_reduction& reduction);

} // namespace fcqss::qss

#endif // FCQSS_QSS_REDUCTION_HPP
