// fcqss — qss/executability.hpp
// The paper's footnote 2: "If the net presents certain strongly connected PN
// fragments, it is possible that tokens accumulate in various T-invariants
// causing the net to deadlock even when each T-invariant by itself does not.
// In this case it is necessary to check the executability of the net."
//
// This module provides that check: it executes adversarial interleavings of
// the valid schedule's cycles — every pairwise ordering plus seeded random
// mixes — and verifies that each cycle remains fireable from every marking
// such mixes can produce (markings stay on the cycle lattice because each
// complete cycle restores the marking; the risk is mid-sequence blocking
// through shared marked fragments).
#ifndef FCQSS_QSS_EXECUTABILITY_HPP
#define FCQSS_QSS_EXECUTABILITY_HPP

#include <optional>
#include <string>

#include "qss/scheduler.hpp"

namespace fcqss::qss {

/// A witness that some cycle interleaving blocks.
struct executability_failure {
    /// Index (into result.entries) of the cycle that could not complete.
    std::size_t blocked_cycle = 0;
    /// Position within that cycle where firing failed.
    std::size_t position = 0;
    /// Human-readable replay of the interleaving.
    std::string context;
};

struct executability_options {
    /// Rounds of seeded random cycle mixes to execute after the exhaustive
    /// pairwise pass.
    int random_rounds = 64;
    std::uint64_t seed = 1;
};

/// Checks executability of a schedulable result.  Returns nullopt when every
/// tested interleaving completes; a witness otherwise.
[[nodiscard]] std::optional<executability_failure>
check_executability(const pn::petri_net& net, const qss_result& result,
                    const executability_options& options = {});

} // namespace fcqss::qss

#endif // FCQSS_QSS_EXECUTABILITY_HPP
