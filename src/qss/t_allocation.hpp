// fcqss — qss/t_allocation.hpp
// T-allocations (Def. 3.3): control functions that pick exactly one successor
// transition for each place.  Only choice places carry a real decision, so an
// allocation is represented by one chosen transition per choice cluster.
// Enumeration is exponential in the number of clusters (Sec. 3's complexity
// remark); a configurable cap turns blowup into a clean error.
#ifndef FCQSS_QSS_T_ALLOCATION_HPP
#define FCQSS_QSS_T_ALLOCATION_HPP

#include <string>
#include <vector>

#include "pn/petri_net.hpp"
#include "qss/conflict_clusters.hpp"

namespace fcqss::qss {

/// One T-allocation: chosen[i] is the transition picked for cluster i (the
/// clusters come from choice_clusters(net), ascending by place id).
struct t_allocation {
    std::vector<pn::transition_id> chosen;

    friend bool operator==(const t_allocation&, const t_allocation&) = default;
};

/// Transitions excluded by the allocation: every unchosen alternative of
/// every cluster, ascending, deduplicated.
[[nodiscard]] std::vector<pn::transition_id>
excluded_transitions(const std::vector<choice_cluster>& clusters,
                     const t_allocation& allocation);

/// Enumerates every T-allocation in lexicographic order of cluster choices.
/// Throws fcqss::error when the count would exceed `max_allocations`.
[[nodiscard]] std::vector<t_allocation>
enumerate_allocations(const std::vector<choice_cluster>& clusters,
                      std::size_t max_allocations = 1u << 20);

/// Number of allocations without materializing them (product of cluster
/// sizes, saturating).
[[nodiscard]] std::size_t allocation_count(const std::vector<choice_cluster>& clusters);

/// Renders e.g. "{p1 -> t2, p5 -> t9}".
[[nodiscard]] std::string to_string(const pn::petri_net& net,
                                    const std::vector<choice_cluster>& clusters,
                                    const t_allocation& allocation);

} // namespace fcqss::qss

#endif // FCQSS_QSS_T_ALLOCATION_HPP
