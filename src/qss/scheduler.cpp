#include "qss/scheduler.hpp"

#include "base/error.hpp"
#include "pn/net_class.hpp"

namespace fcqss::qss {

std::vector<pn::firing_sequence> qss_result::cycles() const
{
    std::vector<pn::firing_sequence> result;
    result.reserve(entries.size());
    for (const schedule_entry& entry : entries) {
        result.push_back(entry.analysis.cycle);
    }
    return result;
}

qss_result quasi_static_schedule(const pn::petri_net& net,
                                 const scheduler_options& options)
{
    qss_result result;
    result.clusters = choice_clusters(net); // validates free choice

    const std::vector<t_allocation> allocations =
        enumerate_allocations(result.clusters, options.max_allocations);
    result.allocations_enumerated = allocations.size();

    // Compute each allocation's reduction; deduplicate identical subnets
    // (allocations that differ only inside removed branches coincide).
    for (std::size_t a = 0; a < allocations.size(); ++a) {
        t_reduction reduction =
            reduce(net, result.clusters, allocations[a], options.record_traces);
        bool merged = false;
        for (schedule_entry& entry : result.entries) {
            if (entry.reduction.same_subnet(reduction)) {
                entry.allocation_indices.push_back(a);
                merged = true;
                break;
            }
        }
        if (!merged) {
            schedule_entry entry;
            entry.reduction = std::move(reduction);
            entry.allocation_indices.push_back(a);
            result.entries.push_back(std::move(entry));
        }
    }

    // Def. 3.5 on every distinct reduction; Theorem 3.1 assembles the verdict.
    bool all_ok = true;
    for (schedule_entry& entry : result.entries) {
        entry.analysis = schedule_reduction(net, result.clusters, entry.reduction);
        if (!entry.analysis.ok()) {
            all_ok = false;
            if (result.failure == reduction_failure::none) {
                result.failure = entry.analysis.failure;
            }
            if (!result.diagnosis.empty()) {
                result.diagnosis += "; ";
            }
            result.diagnosis += "T-reduction for allocation " +
                                to_string(net, result.clusters,
                                          entry.reduction.allocation) +
                                " is " + to_string(entry.analysis.failure);
            if (!entry.analysis.offending.empty()) {
                result.diagnosis += " (";
                for (std::size_t i = 0; i < entry.analysis.offending.size(); ++i) {
                    if (i != 0) {
                        result.diagnosis += ", ";
                    }
                    result.diagnosis += net.transition_name(entry.analysis.offending[i]);
                }
                result.diagnosis += ")";
            }
        }
    }
    result.schedulable = all_ok;
    return result;
}

} // namespace fcqss::qss
