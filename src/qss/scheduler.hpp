// fcqss — qss/scheduler.hpp
// The complete QSS pipeline (Sec. 3): enumerate T-allocations, compute
// T-reductions, deduplicate, check Def. 3.5 on each, and assemble the valid
// schedule — one finite complete cycle per distinct T-reduction.  By
// Theorem 3.1 the net is quasi-statically schedulable iff every reduction
// passes; the algorithm is complete for free-choice nets.
#ifndef FCQSS_QSS_SCHEDULER_HPP
#define FCQSS_QSS_SCHEDULER_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "pn/firing.hpp"
#include "qss/schedulability.hpp"

namespace fcqss::qss {

/// Tuning knobs for the scheduler.
struct scheduler_options {
    /// Abort instead of enumerating more allocations than this (the count is
    /// exponential in the number of choice clusters).
    std::size_t max_allocations = 1u << 20;
    /// Record reduction traces (Fig. 6 style) into the result.
    bool record_traces = false;
};

/// One entry of the valid schedule: a distinct T-reduction together with its
/// finite complete cycle and the allocations that map to it.
struct schedule_entry {
    t_reduction reduction;
    reduction_schedule analysis;
    /// Indices (into the enumeration order) of all allocations that produced
    /// this same subnet.
    std::vector<std::size_t> allocation_indices;
};

/// Outcome of quasi-static scheduling.
struct qss_result {
    /// True iff every distinct T-reduction is schedulable (Theorem 3.1).
    bool schedulable = false;

    /// All distinct T-reductions with their cycles (the valid schedule when
    /// schedulable; partial diagnostics otherwise).
    std::vector<schedule_entry> entries;

    /// The choice clusters of the net (enumeration order for allocations).
    std::vector<choice_cluster> clusters;

    /// Total allocations enumerated (product of cluster sizes).
    std::size_t allocations_enumerated = 0;

    /// Human-readable failure summary; empty when schedulable.
    std::string diagnosis;

    /// The first failing reduction's diagnosis class (reduction_failure::none
    /// when schedulable) — the machine-readable twin of `diagnosis`, carried
    /// to CLI exit codes and the service wire format via wire_code().
    reduction_failure failure = reduction_failure::none;

    /// The finite complete cycles, in entry order (convenience view).
    [[nodiscard]] std::vector<pn::firing_sequence> cycles() const;
};

/// Runs the full QSS algorithm on an (equal-conflict) free-choice net.
/// Throws domain_error when the net is outside that class; returns a result
/// with schedulable == false and a diagnosis when the net is in class but
/// not quasi-statically schedulable.
[[nodiscard]] qss_result quasi_static_schedule(const pn::petri_net& net,
                                               const scheduler_options& options = {});

} // namespace fcqss::qss

#endif // FCQSS_QSS_SCHEDULER_HPP
