// fcqss — qss/conflict_clusters.hpp
// Choice clusters: the groups of transitions among which the data-dependent
// control decides.  In an (equal-conflict) free-choice net every choice place
// induces one cluster = its consumer set, and the Equal Conflict Relation Q
// (Sec. 2) holds within each cluster.
#ifndef FCQSS_QSS_CONFLICT_CLUSTERS_HPP
#define FCQSS_QSS_CONFLICT_CLUSTERS_HPP

#include <cstdint>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::qss {

/// One non-deterministic choice: the place and its alternative consumers
/// (ascending by transition id, at least two).
struct choice_cluster {
    pn::place_id place;
    std::vector<pn::transition_id> alternatives;
};

/// All choice clusters, ascending by place id.  Throws domain_error when the
/// net is not free-choice or a choice has unequal arc weights (the QSS
/// algorithms require the Equal Conflict discipline so that enabling one
/// alternative enables all).
[[nodiscard]] std::vector<choice_cluster> choice_clusters(const pn::petri_net& net);

/// Deterministic firing priority keys used by the cycle simulator.  All
/// members of a cluster share the key (the minimum transition id in the
/// cluster), so the reductions of different allocations fire their chosen
/// alternatives at the same sequence positions — the prefix-agreement that
/// validity Definition 3.1 requires.  Non-conflict transitions use their own
/// id.
[[nodiscard]] std::vector<std::int32_t> conflict_priority_keys(const pn::petri_net& net);

/// True when t belongs to some choice cluster.
[[nodiscard]] bool in_any_cluster(const std::vector<choice_cluster>& clusters,
                                  pn::transition_id t);

} // namespace fcqss::qss

#endif // FCQSS_QSS_CONFLICT_CLUSTERS_HPP
