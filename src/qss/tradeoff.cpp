#include "qss/tradeoff.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "linalg/checked.hpp"
#include "pn/firing.hpp"
#include "qss/reduction.hpp"

namespace fcqss::qss {

namespace {

// Fires `target` occurrences of each transition on the reduced subnet with
// an input-batching policy (sources first), recording per-place peaks in the
// ORIGINAL place index space.  Returns the executed length.
std::int64_t simulate_batched(const pn::petri_net& net, const reduced_net& sub,
                              const linalg::int_vector& target,
                              std::vector<std::int64_t>& peaks)
{
    pn::marking m = pn::initial_marking(sub.net);
    linalg::int_vector remaining(sub.net.transition_count());
    std::int64_t total = 0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
        remaining[i] = target[sub.to_original_transition[i].index()];
        total = linalg::checked_add(total, remaining[i]);
    }
    const std::int64_t length = total;

    const auto note_peaks = [&]() {
        for (std::size_t p = 0; p < sub.net.place_count(); ++p) {
            const std::size_t original =
                sub.to_original_place[p].index();
            peaks[original] = std::max(
                peaks[original], m.tokens(pn::place_id{static_cast<std::int32_t>(p)}));
        }
    };
    note_peaks();

    while (total > 0) {
        std::size_t best = sub.net.transition_count();
        // Sources (always enabled) take precedence: batch the whole input
        // burst, then drain — the unrolled-schedule shape.
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            if (remaining[i] == 0) {
                continue;
            }
            const pn::transition_id local{static_cast<std::int32_t>(i)};
            if (!pn::is_enabled(sub.net, m, local)) {
                continue;
            }
            const bool is_source = sub.net.inputs(local).empty();
            if (is_source) {
                best = i;
                break;
            }
            if (best == sub.net.transition_count()) {
                best = i;
            }
        }
        if (best == sub.net.transition_count()) {
            throw internal_error("explore_tradeoff: scaled cycle deadlocked");
        }
        pn::fire(sub.net, m, pn::transition_id{static_cast<std::int32_t>(best)});
        --remaining[best];
        --total;
        note_peaks();
    }
    require_internal(m == pn::initial_marking(sub.net),
                     "explore_tradeoff: scaled cycle did not restore the marking");
    (void)net;
    return length;
}

} // namespace

std::vector<std::int64_t> schedule_buffer_bounds(const pn::petri_net& net,
                                                 const qss_result& result)
{
    if (!result.schedulable) {
        throw domain_error("schedule_buffer_bounds: net is not schedulable");
    }
    std::vector<std::int64_t> peaks(net.place_count(), 0);
    for (pn::place_id p : net.places()) {
        peaks[p.index()] = net.initial_tokens(p);
    }
    for (const schedule_entry& entry : result.entries) {
        pn::marking m = pn::initial_marking(net);
        for (pn::transition_id t : entry.analysis.cycle) {
            pn::fire(net, m, t);
            for (pn::place_id p : net.places()) {
                peaks[p.index()] = std::max(peaks[p.index()], m.tokens(p));
            }
        }
    }
    return peaks;
}

std::vector<tradeoff_point> explore_tradeoff(const pn::petri_net& net,
                                             const qss_result& result,
                                             std::int64_t max_unroll)
{
    if (!result.schedulable) {
        throw domain_error("explore_tradeoff: net is not schedulable");
    }
    if (max_unroll < 1) {
        throw domain_error("explore_tradeoff: max_unroll must be >= 1");
    }

    std::vector<tradeoff_point> curve;
    for (std::int64_t k = 1; k <= max_unroll; ++k) {
        tradeoff_point point;
        point.unroll = k;
        std::vector<std::int64_t> peaks(net.place_count(), 0);
        for (pn::place_id p : net.places()) {
            peaks[p.index()] = net.initial_tokens(p);
        }
        for (const schedule_entry& entry : result.entries) {
            const reduced_net sub = materialize(net, entry.reduction);
            const linalg::int_vector target =
                linalg::scale(entry.analysis.cycle_vector, k);
            point.schedule_length = linalg::checked_add(
                point.schedule_length, simulate_batched(net, sub, target, peaks));
        }
        for (std::int64_t peak : peaks) {
            point.total_buffer_tokens =
                linalg::checked_add(point.total_buffer_tokens, peak);
            point.max_place_tokens = std::max(point.max_place_tokens, peak);
        }
        curve.push_back(point);
    }
    return curve;
}

} // namespace fcqss::qss
