// fcqss — qss/report.hpp
// Human-readable synthesis report: net statistics, schedulability verdict
// with diagnostics, the valid schedule, task partition, buffer bounds and
// the Def.-3.1/executability check results — everything a designer needs to
// evaluate the specification before committing to code generation.
#ifndef FCQSS_QSS_REPORT_HPP
#define FCQSS_QSS_REPORT_HPP

#include <string>

#include "qss/scheduler.hpp"

namespace fcqss::qss {

struct report_options {
    /// Print every finite complete cycle (can be long: the ATM server has
    /// 120); when false only the first few are shown.
    bool all_cycles = false;
    std::size_t cycle_preview = 4;
    /// Run the executability cross-check (footnote 2) on schedulable nets.
    bool check_executability = true;
};

/// Renders the full report for a net.  Runs the scheduler internally.
[[nodiscard]] std::string synthesis_report(const pn::petri_net& net,
                                           const report_options& options = {});

} // namespace fcqss::qss

#endif // FCQSS_QSS_REPORT_HPP
