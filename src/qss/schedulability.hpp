// fcqss — qss/schedulability.hpp
// Static schedulability of one T-reduction (Def. 3.5): the reduction must be
// (1) consistent, (2) cover every source transition of the original net with
// a T-invariant, and (3) admit a deadlock-free firing sequence back to the
// initial marking.  The produced sequence is the reduction's finite complete
// cycle, one entry of the valid schedule.
#ifndef FCQSS_QSS_SCHEDULABILITY_HPP
#define FCQSS_QSS_SCHEDULABILITY_HPP

#include <optional>
#include <string>
#include <vector>

#include "linalg/int_matrix.hpp"
#include "pn/firing.hpp"
#include "qss/reduction.hpp"

namespace fcqss::qss {

/// Why a T-reduction failed Def. 3.5.
enum class reduction_failure {
    none,
    /// Not consistent: some transition of the reduction lies in no
    /// T-invariant (Fig. 7: a source place makes the tail unrepeatable).
    inconsistent,
    /// A source transition of the original net is not covered by any
    /// T-invariant of the reduction (Def. 3.5 condition 2).
    source_uncovered,
    /// Simulation of the cycle vector deadlocked before completing
    /// (Def. 3.5 condition 3 / footnote 2).
    deadlock,
};

[[nodiscard]] std::string to_string(reduction_failure f);

/// Stable numeric wire code for a rejection diagnosis, shared by the CLI
/// and the service protocol.  The mapping is part of the wire format (it is
/// pinned by tests): codes are append-only, never renumbered.
[[nodiscard]] int wire_code(reduction_failure f) noexcept;

/// Inverse of wire_code; nullopt for unassigned codes.
[[nodiscard]] std::optional<reduction_failure>
reduction_failure_from_wire(int code) noexcept;

/// Result of checking one reduction.
struct reduction_schedule {
    reduction_failure failure = reduction_failure::none;

    /// Minimal T-invariants of the reduction, in the ORIGINAL net's
    /// transition index space.
    std::vector<linalg::int_vector> invariants;

    /// The cycle vector actually scheduled: a deterministic greedy cover of
    /// the reduction's transitions by minimal invariants (Fig. 5's published
    /// schedule is the sum of its two minimal invariants).
    linalg::int_vector cycle_vector;

    /// The finite complete cycle (original transition ids); empty on failure.
    pn::firing_sequence cycle;

    /// Diagnostics: uncovered transitions (inconsistent), uncovered sources
    /// (source_uncovered), or transitions still owing firings (deadlock).
    std::vector<pn::transition_id> offending;

    [[nodiscard]] bool ok() const noexcept { return failure == reduction_failure::none; }
};

/// Checks Def. 3.5 for `reduction` and constructs its finite complete cycle.
///
/// The firing policy is deterministic and *choice-first*: among enabled
/// transitions with remaining firings, an allocated conflict transition
/// (keyed by its cluster's minimum transition id) fires before any
/// non-conflict transition (keyed by its own id).  Resolving choices as
/// early as possible makes cycles of different reductions agree on their
/// prefixes until a differently-allocated choice diverges — the property
/// validity Definition 3.1 demands — and reproduces the paper's published
/// sequences for Figs. 2, 4 and 5.
[[nodiscard]] reduction_schedule
schedule_reduction(const pn::petri_net& net, const std::vector<choice_cluster>& clusters,
                   const t_reduction& reduction);

} // namespace fcqss::qss

#endif // FCQSS_QSS_SCHEDULABILITY_HPP
