// fcqss — qss/valid_schedule.hpp
// A literal checker for validity Definition 3.1: a set S of finite complete
// cycles is a valid schedule when (a) every sequence is a finite complete
// cycle containing at least one occurrence of each source transition, and
// (b) for every sequence sigma_i whose j-th transition is the *first*
// occurrence of a conflict transition in sigma_i, and for every other member
// t_k of its Equal Conflict class, some sequence sigma_l shares the first
// j-1 transitions with sigma_i and has t_k at position j — the adversary can
// flip any choice and the schedule still has an answer.
#ifndef FCQSS_QSS_VALID_SCHEDULE_HPP
#define FCQSS_QSS_VALID_SCHEDULE_HPP

#include <optional>
#include <string>
#include <vector>

#include "pn/firing.hpp"
#include "qss/conflict_clusters.hpp"

namespace fcqss::qss {

/// A violation of Def. 3.1, with enough context to print a useful message.
struct validity_violation {
    enum class kind {
        /// A sequence does not fire back to the initial marking.
        not_a_finite_complete_cycle,
        /// A sequence misses some source transition of the net.
        missing_source_transition,
        /// The alternative-continuation condition failed.
        missing_alternative,
    };
    kind reason;
    /// Index of the offending sequence in S.
    std::size_t sequence_index = 0;
    /// Position j (0-based) for missing_alternative.
    std::size_t position = 0;
    /// The conflict alternative with no matching sequence, or the missing
    /// source transition.
    pn::transition_id transition;

    [[nodiscard]] std::string describe(const pn::petri_net& net) const;
};

/// Checks Def. 3.1 plus the finite-complete-cycle and source-coverage side
/// conditions.  Returns the first violation found, or nullopt when S is a
/// valid schedule.
[[nodiscard]] std::optional<validity_violation>
check_valid_schedule(const pn::petri_net& net,
                     const std::vector<pn::firing_sequence>& schedule);

} // namespace fcqss::qss

#endif // FCQSS_QSS_VALID_SCHEDULE_HPP
