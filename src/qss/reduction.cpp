#include "qss/reduction.hpp"

#include <deque>

#include "base/error.hpp"
#include "pn/builder.hpp"

namespace fcqss::qss {

std::size_t t_reduction::kept_transition_count() const
{
    std::size_t count = 0;
    for (bool keep : keep_transition) {
        count += keep ? 1 : 0;
    }
    return count;
}

std::size_t t_reduction::kept_place_count() const
{
    std::size_t count = 0;
    for (bool keep : keep_place) {
        count += keep ? 1 : 0;
    }
    return count;
}

bool t_reduction::same_subnet(const t_reduction& other) const
{
    return keep_transition == other.keep_transition && keep_place == other.keep_place;
}

namespace {

// Mutable state of one reduction run; the rule helpers below all read the
// current (partially reduced) net through this.
class reducer {
public:
    reducer(const pn::petri_net& net, bool record_trace)
        : net_(net), record_trace_(record_trace)
    {
        result_.keep_transition.assign(net.transition_count(), true);
        result_.keep_place.assign(net.place_count(), true);
    }

    t_reduction run(const std::vector<choice_cluster>& clusters,
                    const t_allocation& allocation)
    {
        result_.allocation = allocation;
        for (pn::transition_id t : excluded_transitions(clusters, allocation)) {
            remove_transition(t, reduction_step::kind::remove_unallocated_transition,
                              "unallocated");
        }
        // Fixpoint: a place kept by rule b.ii can become removable once its
        // consumer's other input loses its last producer, so re-sweep until
        // nothing changes (step d of the algorithm).
        drain();
        while (resweep()) {
            drain();
        }
        return std::move(result_);
    }

private:
    [[nodiscard]] bool kept(pn::transition_id t) const
    {
        return result_.keep_transition[t.index()];
    }
    [[nodiscard]] bool kept(pn::place_id p) const
    {
        return result_.keep_place[p.index()];
    }

    [[nodiscard]] bool has_kept_producer(pn::place_id p) const
    {
        for (const pn::transition_weight& producer : net_.producers(p)) {
            if (kept(producer.transition)) {
                return true;
            }
        }
        return false;
    }

    /// True when p has a surviving producer other than `excluding` — a
    /// self-loop place (read-modify-write state) is NOT an independent
    /// supply for its own consumer, so rule b.ii must not count it.
    [[nodiscard]] bool has_independent_producer(pn::place_id p,
                                                pn::transition_id excluding) const
    {
        for (const pn::transition_weight& producer : net_.producers(p)) {
            if (kept(producer.transition) && producer.transition != excluding) {
                return true;
            }
        }
        return false;
    }

    void record(reduction_step::kind action, const std::string& node,
                const std::string& reason)
    {
        if (record_trace_) {
            result_.trace.push_back({action, node, reason});
        }
    }

    void remove_transition(pn::transition_id t, reduction_step::kind action,
                           const std::string& reason)
    {
        if (!kept(t)) {
            return;
        }
        result_.keep_transition[t.index()] = false;
        record(action, net_.transition_name(t), reason);
        removed_transitions_.push_back(t);
    }

    void remove_place(pn::place_id p, reduction_step::kind action,
                      const std::string& reason)
    {
        if (!kept(p)) {
            return;
        }
        result_.keep_place[p.index()] = false;
        record(action, net_.place_name(p), reason);
        removed_places_.push_back(p);
    }

    // Rule (b): decide whether a postset place of a removed transition stays.
    // Keep when (i) it still has a producer, or (ii) some surviving consumer
    // has another surviving input place with an independent live supply —
    // the join-after-choice pattern that must be preserved so the
    // consistency check can reject it (Fig. 7).  A consumer's own self-loop
    // state place is not an independent supply.
    [[nodiscard]] bool place_must_stay(pn::place_id s) const
    {
        if (has_kept_producer(s)) {
            return true; // rule b.i
        }
        for (const pn::transition_weight& consumer : net_.consumers(s)) {
            if (!kept(consumer.transition)) {
                continue;
            }
            for (const pn::place_weight& other_input : net_.inputs(consumer.transition)) {
                if (other_input.place == s || !kept(other_input.place)) {
                    continue;
                }
                if (has_independent_producer(other_input.place, consumer.transition)) {
                    return true; // rule b.ii
                }
            }
        }
        return false;
    }

    // Rule (c): after removing place s, a surviving consumer goes when it
    // has no surviving inputs (c.i) or only dead-supply inputs (c.ii):
    // source places and its own self-loop state places provide finitely many
    // independent tokens, which cannot sustain an infinite cyclic schedule.
    // Those places are removed with it.
    void apply_rule_c(pn::transition_id t_j)
    {
        if (!kept(t_j)) {
            return;
        }
        std::vector<pn::place_id> kept_inputs;
        for (const pn::place_weight& in : net_.inputs(t_j)) {
            if (kept(in.place)) {
                kept_inputs.push_back(in.place);
            }
        }
        if (kept_inputs.empty()) {
            remove_transition(t_j, reduction_step::kind::remove_orphaned_transition,
                              "no remaining input places");
            return;
        }
        for (pn::place_id p : kept_inputs) {
            if (has_independent_producer(p, t_j)) {
                return;
            }
        }
        remove_transition(t_j, reduction_step::kind::remove_source_fed_transition,
                          "all remaining inputs are source or self-loop places");
        for (pn::place_id p : kept_inputs) {
            remove_place(p, reduction_step::kind::remove_source_place,
                         "dead-supply place feeding removed transition");
        }
    }

    void drain()
    {
        while (!removed_transitions_.empty() || !removed_places_.empty()) {
            if (!removed_transitions_.empty()) {
                const pn::transition_id t_k = removed_transitions_.front();
                removed_transitions_.pop_front();
                for (const pn::place_weight& out : net_.outputs(t_k)) {
                    if (kept(out.place) && !place_must_stay(out.place)) {
                        remove_place(out.place,
                                     reduction_step::kind::remove_orphaned_place,
                                     "no producer left and no surviving join");
                    }
                }
                continue;
            }
            const pn::place_id p = removed_places_.front();
            removed_places_.pop_front();
            for (const pn::transition_weight& consumer : net_.consumers(p)) {
                apply_rule_c(consumer.transition);
            }
        }
    }

    // Step (d): re-test every surviving postset place of a removed
    // transition; returns whether anything changed.
    bool resweep()
    {
        bool changed = false;
        for (pn::transition_id t : net_.transitions()) {
            if (kept(t)) {
                continue;
            }
            for (const pn::place_weight& out : net_.outputs(t)) {
                if (kept(out.place) && !place_must_stay(out.place)) {
                    remove_place(out.place, reduction_step::kind::remove_orphaned_place,
                                 "no producer left and no surviving join (re-sweep)");
                    changed = true;
                }
            }
        }
        return changed;
    }

    const pn::petri_net& net_;
    bool record_trace_;
    t_reduction result_;
    std::deque<pn::transition_id> removed_transitions_;
    std::deque<pn::place_id> removed_places_;
};

} // namespace

t_reduction reduce(const pn::petri_net& net, const std::vector<choice_cluster>& clusters,
                   const t_allocation& allocation, bool record_trace)
{
    if (allocation.chosen.size() != clusters.size()) {
        throw model_error("reduce: allocation does not match cluster count");
    }
    return reducer(net, record_trace).run(clusters, allocation);
}

reduced_net materialize(const pn::petri_net& net, const t_reduction& reduction)
{
    if (reduction.keep_transition.size() != net.transition_count() ||
        reduction.keep_place.size() != net.place_count()) {
        throw model_error("materialize: reduction does not match net dimensions");
    }
    pn::net_builder builder(net.name() + "_reduced");
    reduced_net result;

    std::vector<pn::place_id> place_map(net.place_count());
    for (pn::place_id p : net.places()) {
        if (!reduction.keep_place[p.index()]) {
            continue;
        }
        place_map[p.index()] =
            builder.add_place(net.place_name(p), net.initial_tokens(p));
        result.to_original_place.push_back(p);
    }
    std::vector<pn::transition_id> transition_map(net.transition_count());
    for (pn::transition_id t : net.transitions()) {
        if (!reduction.keep_transition[t.index()]) {
            continue;
        }
        transition_map[t.index()] = builder.add_transition(net.transition_name(t));
        result.to_original_transition.push_back(t);
    }

    for (pn::transition_id t : net.transitions()) {
        if (!reduction.keep_transition[t.index()]) {
            continue;
        }
        for (const pn::place_weight& in : net.inputs(t)) {
            if (reduction.keep_place[in.place.index()]) {
                builder.add_arc(place_map[in.place.index()], transition_map[t.index()],
                                in.weight);
            }
        }
        for (const pn::place_weight& out : net.outputs(t)) {
            if (reduction.keep_place[out.place.index()]) {
                builder.add_arc(transition_map[t.index()], place_map[out.place.index()],
                                out.weight);
            }
        }
    }

    result.net = std::move(builder).build();
    return result;
}

} // namespace fcqss::qss
