// fcqss — pnio/lexer.hpp
// Tokenizer for the `.pn` net description language.  Grammar overview (see
// parser.hpp for the full grammar):
//
//   net fig4 {
//     places      { p1; p2; p7(1); }        # (n) = initial tokens
//     transitions { t1; t2; }
//     arcs        { t1 -> p1; p2 -> t4 * 2; }   # * w = arc weight
//   }
//
// '#' starts a comment running to end of line.
#ifndef FCQSS_PNIO_LEXER_HPP
#define FCQSS_PNIO_LEXER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fcqss::pnio {

enum class token_kind {
    identifier,
    integer,
    left_brace,
    right_brace,
    left_paren,
    right_paren,
    semicolon,
    arrow,
    star,
    end_of_input,
};

[[nodiscard]] std::string to_string(token_kind kind);

struct token {
    token_kind kind = token_kind::end_of_input;
    std::string text;        // identifier spelling / integer digits
    std::int64_t value = 0;  // for integer tokens
    int line = 0;
    int column = 0;
};

/// Bounds on what the lexer/parser will accept from one document.  The
/// defaults are far beyond any legitimate net but small enough that an
/// adversarial submission cannot OOM a resident server: every limit trips a
/// fcqss::resource_limit_error (surfaced as pipeline_status::resource_limit)
/// instead of unbounded allocation.
struct parse_limits {
    std::size_t max_input_bytes = 64u << 20; ///< source text size
    std::size_t max_tokens = 8u << 20;       ///< lexed token count
    std::size_t max_places = 1u << 20;       ///< declared places
    std::size_t max_transitions = 1u << 20;  ///< declared transitions
    std::size_t max_arcs = 4u << 20;         ///< declared arcs
};

/// Tokenizes `source`; throws fcqss::parse_error on illegal characters or
/// malformed numbers and fcqss::resource_limit_error when `limits` are
/// exceeded.  The final token is always end_of_input.
[[nodiscard]] std::vector<token> tokenize(std::string_view source,
                                          const parse_limits& limits = {});

} // namespace fcqss::pnio

#endif // FCQSS_PNIO_LEXER_HPP
