#include "pnio/dot.hpp"

#include <algorithm>

namespace fcqss::pnio {

std::string to_dot(const pn::petri_net& net, const dot_options& options)
{
    std::string out;
    out += "digraph \"" + net.name() + "\" {\n";
    out += "  rankdir=LR;\n";

    for (pn::place_id p : net.places()) {
        out += "  \"" + net.place_name(p) + "\" [shape=circle";
        if (options.show_tokens && net.initial_tokens(p) > 0) {
            out += ", label=\"" + net.place_name(p) + "\\n" +
                   std::to_string(net.initial_tokens(p)) + "\"";
        }
        out += "];\n";
    }

    for (pn::transition_id t : net.transitions()) {
        const bool highlighted =
            std::find(options.highlight_transitions.begin(),
                      options.highlight_transitions.end(),
                      t) != options.highlight_transitions.end();
        out += "  \"" + net.transition_name(t) + "\" [shape=box";
        if (highlighted) {
            out += ", style=filled, fillcolor=lightblue";
        }
        out += "];\n";
    }

    const auto weight_label = [&](std::int64_t weight) -> std::string {
        if (!options.show_weights || weight == 1) {
            return "";
        }
        return " [label=\"" + std::to_string(weight) + "\"]";
    };

    for (pn::transition_id t : net.transitions()) {
        for (const pn::place_weight& in : net.inputs(t)) {
            out += "  \"" + net.place_name(in.place) + "\" -> \"" +
                   net.transition_name(t) + "\"" + weight_label(in.weight) + ";\n";
        }
        for (const pn::place_weight& arc : net.outputs(t)) {
            out += "  \"" + net.transition_name(t) + "\" -> \"" +
                   net.place_name(arc.place) + "\"" + weight_label(arc.weight) + ";\n";
        }
    }

    out += "}\n";
    return out;
}

} // namespace fcqss::pnio
