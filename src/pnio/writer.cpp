#include "pnio/writer.hpp"

#include <fstream>

#include "base/error.hpp"

namespace fcqss::pnio {

std::string write_net(const pn::petri_net& net)
{
    std::string out;
    out += "net " + net.name() + " {\n";

    out += "  places {\n";
    for (pn::place_id p : net.places()) {
        out += "    " + net.place_name(p);
        if (net.initial_tokens(p) != 0) {
            out += "(" + std::to_string(net.initial_tokens(p)) + ")";
        }
        out += ";\n";
    }
    out += "  }\n";

    out += "  transitions {\n";
    for (pn::transition_id t : net.transitions()) {
        out += "    " + net.transition_name(t) + ";\n";
    }
    out += "  }\n";

    out += "  arcs {\n";
    for (pn::transition_id t : net.transitions()) {
        for (const pn::place_weight& in : net.inputs(t)) {
            out += "    " + net.place_name(in.place) + " -> " + net.transition_name(t);
            if (in.weight != 1) {
                out += " * " + std::to_string(in.weight);
            }
            out += ";\n";
        }
        for (const pn::place_weight& arc : net.outputs(t)) {
            out += "    " + net.transition_name(t) + " -> " + net.place_name(arc.place);
            if (arc.weight != 1) {
                out += " * " + std::to_string(arc.weight);
            }
            out += ";\n";
        }
    }
    out += "  }\n";

    out += "}\n";
    return out;
}

void save_net(const pn::petri_net& net, const std::string& path)
{
    std::ofstream file(path);
    if (!file) {
        throw io_error("save_net: cannot open '" + path + "' for writing");
    }
    file << write_net(net);
    if (!file) {
        throw io_error("save_net: write to '" + path + "' failed");
    }
}

} // namespace fcqss::pnio
