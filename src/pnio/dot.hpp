// fcqss — pnio/dot.hpp
// Graphviz DOT export for visual inspection of nets and reductions.
#ifndef FCQSS_PNIO_DOT_HPP
#define FCQSS_PNIO_DOT_HPP

#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pnio {

/// Rendering options.  `highlight_transitions` draws the listed transitions
/// filled (used to visualize a T-allocation over the original net).
struct dot_options {
    bool show_weights = true;
    bool show_tokens = true;
    std::vector<pn::transition_id> highlight_transitions;
};

/// Renders the net in DOT: places as circles (token count inside),
/// transitions as boxes, weighted arcs labelled.
[[nodiscard]] std::string to_dot(const pn::petri_net& net,
                                 const dot_options& options = {});

} // namespace fcqss::pnio

#endif // FCQSS_PNIO_DOT_HPP
