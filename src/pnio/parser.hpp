// fcqss — pnio/parser.hpp
// Recursive-descent parser for the `.pn` format.  Full grammar:
//
//   file         := net
//   net          := "net" IDENT "{" section* "}"
//   section      := places | transitions | arcs
//   places       := "places" "{" place-decl* "}"
//   place-decl   := IDENT [ "(" INTEGER ")" ] ";"
//   transitions  := "transitions" "{" IDENT ";" ... "}"
//   arcs         := "arcs" "{" arc-decl* "}"
//   arc-decl     := IDENT "->" IDENT [ "*" INTEGER ] ";"
//
// Arc endpoints are resolved by name: exactly one endpoint must be a place
// and the other a transition.  Sections may repeat and interleave, but every
// name must be declared before it is used in an arc.
#ifndef FCQSS_PNIO_PARSER_HPP
#define FCQSS_PNIO_PARSER_HPP

#include <string_view>

#include "pn/petri_net.hpp"
#include "pnio/lexer.hpp"

namespace fcqss::pnio {

/// Parses a `.pn` document into a net; throws fcqss::parse_error with
/// line/column on syntax errors, fcqss::model_error on semantic ones
/// (duplicate names, unknown arc endpoints, duplicate arcs), and
/// fcqss::resource_limit_error when the document exceeds `limits` — the
/// declaration counts are enforced while parsing, before the builder's
/// arenas grow, so untrusted input cannot OOM the caller.
[[nodiscard]] pn::petri_net parse_net(std::string_view source,
                                      const parse_limits& limits = {});

/// Reads a file and parses it.
[[nodiscard]] pn::petri_net load_net(const std::string& path,
                                     const parse_limits& limits = {});

} // namespace fcqss::pnio

#endif // FCQSS_PNIO_PARSER_HPP
