// fcqss — pnio/writer.hpp
// Serializes a net back to the `.pn` format (round-trips with the parser).
#ifndef FCQSS_PNIO_WRITER_HPP
#define FCQSS_PNIO_WRITER_HPP

#include <string>

#include "pn/petri_net.hpp"

namespace fcqss::pnio {

/// Renders the net as a `.pn` document.  parse_net(write_net(n)) produces a
/// net identical to n up to iteration order.
[[nodiscard]] std::string write_net(const pn::petri_net& net);

/// Writes the net to a file; throws fcqss::error on I/O failure.
void save_net(const pn::petri_net& net, const std::string& path);

} // namespace fcqss::pnio

#endif // FCQSS_PNIO_WRITER_HPP
