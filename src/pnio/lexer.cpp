#include "pnio/lexer.hpp"

#include <cctype>

#include "base/error.hpp"

namespace fcqss::pnio {

std::string to_string(token_kind kind)
{
    switch (kind) {
    case token_kind::identifier: return "identifier";
    case token_kind::integer: return "integer";
    case token_kind::left_brace: return "'{'";
    case token_kind::right_brace: return "'}'";
    case token_kind::left_paren: return "'('";
    case token_kind::right_paren: return "')'";
    case token_kind::semicolon: return "';'";
    case token_kind::arrow: return "'->'";
    case token_kind::star: return "'*'";
    case token_kind::end_of_input: return "end of input";
    }
    return "unknown";
}

namespace {

class cursor {
public:
    explicit cursor(std::string_view source) : source_(source) {}

    [[nodiscard]] bool at_end() const noexcept { return offset_ >= source_.size(); }
    [[nodiscard]] char peek() const noexcept
    {
        return at_end() ? '\0' : source_[offset_];
    }
    char advance()
    {
        const char c = source_[offset_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    [[nodiscard]] int line() const noexcept { return line_; }
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    std::string_view source_;
    std::size_t offset_ = 0;
    int line_ = 1;
    int column_ = 1;
};

bool is_identifier_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_identifier_char(char c)
{
    return is_identifier_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

} // namespace

std::vector<token> tokenize(std::string_view source, const parse_limits& limits)
{
    if (source.size() > limits.max_input_bytes) {
        throw resource_limit_error(
            "parse: input is " + std::to_string(source.size()) +
            " bytes, limit is " + std::to_string(limits.max_input_bytes));
    }
    std::vector<token> tokens;
    cursor cur(source);

    while (!cur.at_end()) {
        if (tokens.size() >= limits.max_tokens) {
            throw resource_limit_error("parse: more than " +
                                       std::to_string(limits.max_tokens) + " tokens");
        }
        const int line = cur.line();
        const int column = cur.column();
        const char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            cur.advance();
            continue;
        }
        if (c == '#') {
            while (!cur.at_end() && cur.peek() != '\n') {
                cur.advance();
            }
            continue;
        }
        if (is_identifier_start(c)) {
            std::string text;
            while (!cur.at_end() && is_identifier_char(cur.peek())) {
                text.push_back(cur.advance());
            }
            tokens.push_back({token_kind::identifier, std::move(text), 0, line, column});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            std::string digits;
            while (!cur.at_end() &&
                   std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) {
                digits.push_back(cur.advance());
            }
            std::int64_t value = 0;
            for (char d : digits) {
                if (value > (INT64_MAX - (d - '0')) / 10) {
                    throw parse_error("integer literal too large", line, column);
                }
                value = value * 10 + (d - '0');
            }
            tokens.push_back(
                {token_kind::integer, std::move(digits), value, line, column});
            continue;
        }

        switch (c) {
        case '{':
            cur.advance();
            tokens.push_back({token_kind::left_brace, "{", 0, line, column});
            continue;
        case '}':
            cur.advance();
            tokens.push_back({token_kind::right_brace, "}", 0, line, column});
            continue;
        case '(':
            cur.advance();
            tokens.push_back({token_kind::left_paren, "(", 0, line, column});
            continue;
        case ')':
            cur.advance();
            tokens.push_back({token_kind::right_paren, ")", 0, line, column});
            continue;
        case ';':
            cur.advance();
            tokens.push_back({token_kind::semicolon, ";", 0, line, column});
            continue;
        case '*':
            cur.advance();
            tokens.push_back({token_kind::star, "*", 0, line, column});
            continue;
        case '-': {
            cur.advance();
            if (cur.peek() != '>') {
                throw parse_error("expected '->' after '-'", line, column);
            }
            cur.advance();
            tokens.push_back({token_kind::arrow, "->", 0, line, column});
            continue;
        }
        default:
            throw parse_error(std::string("unexpected character '") + c + "'", line,
                              column);
        }
    }

    tokens.push_back({token_kind::end_of_input, "", 0, cur.line(), cur.column()});
    return tokens;
}

} // namespace fcqss::pnio
