#include "pnio/parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "base/error.hpp"
#include "pn/builder.hpp"
#include "pnio/lexer.hpp"

namespace fcqss::pnio {

namespace {

class parser {
public:
    explicit parser(std::string_view source, const parse_limits& limits)
        : tokens_(tokenize(source, limits)), limits_(limits)
    {
    }

    pn::petri_net parse()
    {
        expect_keyword("net");
        const token name = expect(token_kind::identifier);
        pn::net_builder builder(name.text);
        expect(token_kind::left_brace);
        while (!check(token_kind::right_brace)) {
            parse_section(builder);
        }
        expect(token_kind::right_brace);
        expect(token_kind::end_of_input);
        return std::move(builder).build();
    }

private:
    const token& peek() const { return tokens_[position_]; }

    token advance() { return tokens_[position_++]; }

    bool check(token_kind kind) const { return peek().kind == kind; }

    token expect(token_kind kind)
    {
        if (!check(kind)) {
            throw parse_error("expected " + pnio::to_string(kind) + ", found " +
                                  pnio::to_string(peek().kind),
                              peek().line, peek().column);
        }
        return advance();
    }

    void expect_keyword(std::string_view keyword)
    {
        const token t = expect(token_kind::identifier);
        if (t.text != keyword) {
            throw parse_error("expected keyword '" + std::string(keyword) + "', found '" +
                                  t.text + "'",
                              t.line, t.column);
        }
    }

    void parse_section(pn::net_builder& builder)
    {
        const token section = expect(token_kind::identifier);
        if (section.text == "places") {
            parse_places(builder);
        } else if (section.text == "transitions") {
            parse_transitions(builder);
        } else if (section.text == "arcs") {
            parse_arcs(builder);
        } else {
            throw parse_error("unknown section '" + section.text +
                                  "' (expected places, transitions or arcs)",
                              section.line, section.column);
        }
    }

    /// Trips a resource_limit_error when a declaration count passes its
    /// bound — checked before the builder grows, so the limit caps arena
    /// growth, not just the final net size.
    void charge(std::size_t& count, std::size_t limit, const char* what) const
    {
        if (++count > limit) {
            throw resource_limit_error("parse: more than " + std::to_string(limit) +
                                       " " + what);
        }
    }

    void parse_places(pn::net_builder& builder)
    {
        expect(token_kind::left_brace);
        while (!check(token_kind::right_brace)) {
            const token name = expect(token_kind::identifier);
            std::int64_t tokens = 0;
            if (check(token_kind::left_paren)) {
                advance();
                tokens = expect(token_kind::integer).value;
                expect(token_kind::right_paren);
            }
            expect(token_kind::semicolon);
            charge(place_count_, limits_.max_places, "places");
            places_[name.text] = builder.add_place(name.text, tokens);
        }
        expect(token_kind::right_brace);
    }

    void parse_transitions(pn::net_builder& builder)
    {
        expect(token_kind::left_brace);
        while (!check(token_kind::right_brace)) {
            const token name = expect(token_kind::identifier);
            expect(token_kind::semicolon);
            charge(transition_count_, limits_.max_transitions, "transitions");
            transitions_[name.text] = builder.add_transition(name.text);
        }
        expect(token_kind::right_brace);
    }

    void parse_arcs(pn::net_builder& builder)
    {
        expect(token_kind::left_brace);
        while (!check(token_kind::right_brace)) {
            charge(arc_count_, limits_.max_arcs, "arcs");
            const token from = expect(token_kind::identifier);
            expect(token_kind::arrow);
            const token to = expect(token_kind::identifier);
            std::int64_t weight = 1;
            if (check(token_kind::star)) {
                advance();
                const token w = expect(token_kind::integer);
                if (w.value <= 0) {
                    throw parse_error("arc weight must be positive", w.line, w.column);
                }
                weight = w.value;
            }
            expect(token_kind::semicolon);
            add_arc_by_name(builder, from, to, weight);
        }
        expect(token_kind::right_brace);
    }

    void add_arc_by_name(pn::net_builder& builder, const token& from, const token& to,
                         std::int64_t weight) const
    {
        const auto from_place = places_.find(from.text);
        const auto from_transition = transitions_.find(from.text);
        const auto to_place = places_.find(to.text);
        const auto to_transition = transitions_.find(to.text);

        if (from_place != places_.end() && to_transition != transitions_.end()) {
            builder.add_arc(from_place->second, to_transition->second, weight);
            return;
        }
        if (from_transition != transitions_.end() && to_place != places_.end()) {
            builder.add_arc(from_transition->second, to_place->second, weight);
            return;
        }
        if (from_place == places_.end() && from_transition == transitions_.end()) {
            throw parse_error("unknown arc endpoint '" + from.text + "'", from.line,
                              from.column);
        }
        if (to_place == places_.end() && to_transition == transitions_.end()) {
            throw parse_error("unknown arc endpoint '" + to.text + "'", to.line,
                              to.column);
        }
        throw parse_error("arc must connect a place and a transition: '" + from.text +
                              " -> " + to.text + "'",
                          from.line, from.column);
    }

    std::vector<token> tokens_;
    parse_limits limits_;
    std::size_t position_ = 0;
    std::size_t place_count_ = 0;
    std::size_t transition_count_ = 0;
    std::size_t arc_count_ = 0;
    std::unordered_map<std::string, pn::place_id> places_;
    std::unordered_map<std::string, pn::transition_id> transitions_;
};

} // namespace

pn::petri_net parse_net(std::string_view source, const parse_limits& limits)
{
    return parser(source, limits).parse();
}

pn::petri_net load_net(const std::string& path, const parse_limits& limits)
{
    std::ifstream file(path);
    if (!file) {
        throw io_error("load_net: cannot open '" + path + "'");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    // Re-raise parse/model errors with the file path prepended: in batch
    // mode a bare "expected ';'" is useless without knowing which of a
    // thousand inputs produced it.
    try {
        return parse_net(contents.str(), limits);
    } catch (const parse_error& e) {
        throw parse_error::with_context(path, e);
    } catch (const model_error& e) {
        throw model_error(path + ": " + e.what());
    }
}

} // namespace fcqss::pnio
