#include "base/error.hpp"

namespace fcqss {

namespace {

std::string format_location(const std::string& what_arg, int line, int column)
{
    return what_arg + " (line " + std::to_string(line) + ", column " +
           std::to_string(column) + ")";
}

} // namespace

parse_error::parse_error(const std::string& what_arg, int line, int column)
    : error(format_location(what_arg, line, column)), line_(line), column_(column)
{
}

parse_error::parse_error(preformatted_tag, const std::string& what_arg, int line,
                         int column)
    : error(what_arg), line_(line), column_(column)
{
}

parse_error parse_error::with_context(const std::string& context,
                                      const parse_error& inner)
{
    return parse_error(preformatted_tag{}, context + ": " + inner.what(), inner.line(),
                       inner.column());
}

void require_internal(bool condition, const char* message)
{
    if (!condition) {
        throw internal_error(message);
    }
}

} // namespace fcqss
