// fcqss — base/ids.hpp
// Strongly typed indices for places and transitions.  A plain `int` invites
// mixing the two index spaces; these wrappers make that a compile error while
// staying trivially copyable and cheap.
#ifndef FCQSS_BASE_IDS_HPP
#define FCQSS_BASE_IDS_HPP

#include <cstddef>
#include <cstdint>
#include <functional>

namespace fcqss {

/// Tagged index.  `Tag` is an empty struct that distinguishes index spaces.
template <typename Tag>
class typed_index {
public:
    constexpr typed_index() noexcept : value_(invalid_value) {}
    constexpr explicit typed_index(std::int32_t value) noexcept : value_(value) {}

    [[nodiscard]] constexpr std::int32_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr std::size_t index() const noexcept
    {
        return static_cast<std::size_t>(value_);
    }
    [[nodiscard]] constexpr bool valid() const noexcept { return value_ >= 0; }

    friend constexpr bool operator==(typed_index a, typed_index b) noexcept = default;
    friend constexpr auto operator<=>(typed_index a, typed_index b) noexcept = default;

private:
    static constexpr std::int32_t invalid_value = -1;
    std::int32_t value_;
};

struct place_tag {};
struct transition_tag {};

/// Index of a place within a petri_net.
using place_id = typed_index<place_tag>;
/// Index of a transition within a petri_net.
using transition_id = typed_index<transition_tag>;

} // namespace fcqss

template <typename Tag>
struct std::hash<fcqss::typed_index<Tag>> {
    std::size_t operator()(fcqss::typed_index<Tag> id) const noexcept
    {
        return std::hash<std::int32_t>{}(id.value());
    }
};

#endif // FCQSS_BASE_IDS_HPP
