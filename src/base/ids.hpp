// fcqss — base/ids.hpp
// Strongly typed indices for places and transitions.  A plain `int` invites
// mixing the two index spaces; these wrappers make that a compile error while
// staying trivially copyable and cheap.
#ifndef FCQSS_BASE_IDS_HPP
#define FCQSS_BASE_IDS_HPP

#include <cstddef>
#include <cstdint>
#include <functional>

namespace fcqss {

/// Tagged index.  `Tag` is an empty struct that distinguishes index spaces.
template <typename Tag>
class typed_index {
public:
    constexpr typed_index() noexcept : value_(invalid_value) {}
    constexpr explicit typed_index(std::int32_t value) noexcept : value_(value) {}

    [[nodiscard]] constexpr std::int32_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr std::size_t index() const noexcept
    {
        return static_cast<std::size_t>(value_);
    }
    [[nodiscard]] constexpr bool valid() const noexcept { return value_ >= 0; }

    friend constexpr bool operator==(typed_index a, typed_index b) noexcept = default;
    friend constexpr auto operator<=>(typed_index a, typed_index b) noexcept = default;

private:
    static constexpr std::int32_t invalid_value = -1;
    std::int32_t value_;
};

struct place_tag {};
struct transition_tag {};

/// Index of a place within a petri_net.
using place_id = typed_index<place_tag>;
/// Index of a transition within a petri_net.
using transition_id = typed_index<transition_tag>;

/// A lightweight view over the contiguous id range [0, count): iterating it
/// yields Id{0}, Id{1}, ... without materializing a vector, so range-for
/// loops over all places/transitions cost nothing inside hot loops.
template <typename Id>
class id_range {
public:
    class iterator {
    public:
        using value_type = Id;
        using difference_type = std::ptrdiff_t;

        constexpr iterator() noexcept = default;
        constexpr explicit iterator(std::int32_t value) noexcept : value_(value) {}

        constexpr Id operator*() const noexcept { return Id{value_}; }
        constexpr iterator& operator++() noexcept
        {
            ++value_;
            return *this;
        }
        constexpr iterator operator++(int) noexcept
        {
            const iterator before = *this;
            ++value_;
            return before;
        }

        friend constexpr bool operator==(iterator, iterator) noexcept = default;

    private:
        std::int32_t value_ = 0;
    };

    constexpr id_range() noexcept = default;
    constexpr explicit id_range(std::size_t count) noexcept
        : count_(static_cast<std::int32_t>(count))
    {
    }

    [[nodiscard]] constexpr iterator begin() const noexcept { return iterator{0}; }
    [[nodiscard]] constexpr iterator end() const noexcept { return iterator{count_}; }
    [[nodiscard]] constexpr std::size_t size() const noexcept
    {
        return static_cast<std::size_t>(count_);
    }
    [[nodiscard]] constexpr bool empty() const noexcept { return count_ == 0; }

private:
    std::int32_t count_ = 0;
};

} // namespace fcqss

template <typename Tag>
struct std::hash<fcqss::typed_index<Tag>> {
    std::size_t operator()(fcqss::typed_index<Tag> id) const noexcept
    {
        return std::hash<std::int32_t>{}(id.value());
    }
};

#endif // FCQSS_BASE_IDS_HPP
