// fcqss — base/error.hpp
// Exception hierarchy shared by every fcqss module.
#ifndef FCQSS_BASE_ERROR_HPP
#define FCQSS_BASE_ERROR_HPP

#include <stdexcept>
#include <string>

namespace fcqss {

/// Root of the fcqss exception hierarchy.  All library errors derive from
/// this, so callers can catch one type at an API boundary.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A malformed model: dangling references, duplicate names, negative weights,
/// indices out of range and similar structural problems.
class model_error : public error {
public:
    explicit model_error(const std::string& what_arg) : error(what_arg) {}
};

/// Exact integer arithmetic left the representable range.  Raised instead of
/// silently wrapping, so analysis verdicts are never corrupted by overflow.
class arith_overflow_error : public error {
public:
    explicit arith_overflow_error(const std::string& what_arg) : error(what_arg) {}
};

/// Errors raised while parsing the `.pn` textual net format.
class parse_error : public error {
public:
    parse_error(const std::string& what_arg, int line, int column);

    [[nodiscard]] int line() const noexcept { return line_; }
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    int line_;
    int column_;
};

/// A request that is well-formed but outside the algorithm's domain, e.g.
/// asking the QSS scheduler for a schedule of a net that is not free-choice.
class domain_error : public error {
public:
    explicit domain_error(const std::string& what_arg) : error(what_arg) {}
};

/// Internal invariant violation; indicates a bug in fcqss itself.
class internal_error : public error {
public:
    explicit internal_error(const std::string& what_arg) : error(what_arg) {}
};

/// Throws internal_error when `condition` is false.  Used for invariants that
/// must hold regardless of user input (never for input validation).
void require_internal(bool condition, const char* message);

} // namespace fcqss

#endif // FCQSS_BASE_ERROR_HPP
