// fcqss — base/error.hpp
// Exception hierarchy shared by every fcqss module.
#ifndef FCQSS_BASE_ERROR_HPP
#define FCQSS_BASE_ERROR_HPP

#include <stdexcept>
#include <string>

namespace fcqss {

/// Root of the fcqss exception hierarchy.  All library errors derive from
/// this, so callers can catch one type at an API boundary.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A malformed model: dangling references, duplicate names, negative weights,
/// indices out of range and similar structural problems.
class model_error : public error {
public:
    explicit model_error(const std::string& what_arg) : error(what_arg) {}
};

/// Exact integer arithmetic left the representable range.  Raised instead of
/// silently wrapping, so analysis verdicts are never corrupted by overflow.
class arith_overflow_error : public error {
public:
    explicit arith_overflow_error(const std::string& what_arg) : error(what_arg) {}
};

/// Errors raised while parsing the `.pn` textual net format.
class parse_error : public error {
public:
    parse_error(const std::string& what_arg, int line, int column);

    /// Wraps an existing parse_error with leading context (typically the
    /// file path), keeping the location fields and NOT re-appending the
    /// "(line N, column M)" suffix the inner message already carries.
    [[nodiscard]] static parse_error with_context(const std::string& context,
                                                  const parse_error& inner);

    [[nodiscard]] int line() const noexcept { return line_; }
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    struct preformatted_tag {};
    parse_error(preformatted_tag, const std::string& what_arg, int line, int column);

    int line_;
    int column_;
};

/// A request that is well-formed but outside the algorithm's domain, e.g.
/// asking the QSS scheduler for a schedule of a net that is not free-choice.
class domain_error : public error {
public:
    explicit domain_error(const std::string& what_arg) : error(what_arg) {}
};

/// The operating system refused a file operation (open/read/write).
class io_error : public error {
public:
    explicit io_error(const std::string& what_arg) : error(what_arg) {}
};

/// A configured resource bound was exceeded (e.g. the scheduler's allocation
/// enumeration cap).  Distinct from failure: the input may be fine, the
/// caller just declined to spend more on it.
class resource_limit_error : public error {
public:
    explicit resource_limit_error(const std::string& what_arg) : error(what_arg) {}
};

/// Internal invariant violation; indicates a bug in fcqss itself.
class internal_error : public error {
public:
    explicit internal_error(const std::string& what_arg) : error(what_arg) {}
};

/// Throws internal_error when `condition` is false.  Used for invariants that
/// must hold regardless of user input (never for input validation).
void require_internal(bool condition, const char* message);

} // namespace fcqss

#endif // FCQSS_BASE_ERROR_HPP
