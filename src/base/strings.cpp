#include "base/strings.hpp"

#include <cctype>

namespace fcqss {

std::string join(const std::vector<std::string>& parts, std::string_view separator)
{
    std::string result;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) {
            result += separator;
        }
        result += parts[i];
    }
    return result;
}

std::vector<std::string> split(std::string_view text, char separator)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(separator, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            return fields;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool is_c_identifier(std::string_view name)
{
    if (name.empty()) {
        return false;
    }
    const auto is_ident_start = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
    };
    const auto is_ident_char = [&](char c) {
        return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (!is_ident_start(name.front())) {
        return false;
    }
    for (char c : name.substr(1)) {
        if (!is_ident_char(c)) {
            return false;
        }
    }
    return true;
}

std::string sanitize_c_identifier(std::string_view name)
{
    if (name.empty()) {
        return "_";
    }
    std::string result;
    result.reserve(name.size() + 1);
    if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) {
        result.push_back('_');
    }
    for (char c : name) {
        const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
        result.push_back(legal ? c : '_');
    }
    return result;
}

int count_nonblank_lines(std::string_view text)
{
    int count = 0;
    bool line_has_content = false;
    for (char c : text) {
        if (c == '\n') {
            if (line_has_content) {
                ++count;
            }
            line_has_content = false;
        } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
            line_has_content = true;
        }
    }
    if (line_has_content) {
        ++count;
    }
    return count;
}

} // namespace fcqss
