// fcqss — base/prng.hpp
// The project's deterministic PRNG (xorshift*): identical bit streams on
// every platform, independent of <random> implementations.  Shared by the
// workload generator, the executability sampler, the ATM testbench, and the
// test utilities — one definition, so recorded expectations can never drift
// between copies.
#ifndef FCQSS_BASE_PRNG_HPP
#define FCQSS_BASE_PRNG_HPP

#include <cstdint>

namespace fcqss {

class prng {
public:
    explicit prng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

    std::uint64_t next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dULL;
    }

    /// Uniform in [0, bound).
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /// Uniform in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// The raw engine state (for callers that persist a stream position).
    [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

private:
    std::uint64_t state_;
};

} // namespace fcqss

#endif // FCQSS_BASE_PRNG_HPP
