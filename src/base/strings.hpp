// fcqss — base/strings.hpp
// Small string helpers shared by the text back ends (pnio writer, DOT export,
// C emitter) and by diagnostics.
#ifndef FCQSS_BASE_STRINGS_HPP
#define FCQSS_BASE_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace fcqss {

/// Joins `parts` with `separator` ("a", "b" -> "a, b").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Splits `text` at every occurrence of `separator`; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char separator);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True when `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// True when `name` is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
[[nodiscard]] bool is_c_identifier(std::string_view name);

/// Rewrites an arbitrary name into a valid C identifier by replacing every
/// illegal character with '_' and prefixing '_' when the first character is
/// a digit.  Empty input becomes "_".
[[nodiscard]] std::string sanitize_c_identifier(std::string_view name);

/// Counts lines in `text` that contain at least one non-whitespace character.
/// Used to report "lines of C code" the way the paper's Table I does.
[[nodiscard]] int count_nonblank_lines(std::string_view text);

} // namespace fcqss

#endif // FCQSS_BASE_STRINGS_HPP
