#include "codegen/interpreter.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace fcqss::cgen {

program_instance::program_instance(const generated_program& program)
{
    // Counter storage spans the whole place index space; undeclared
    // (elided) counters stay at zero and are never touched.
    std::size_t max_place = program.choice_names.size();
    for (const counter_decl& counter : program.counters) {
        max_place = std::max(max_place, counter.place.index() + 1);
    }
    initial_counters_.assign(max_place, 0);
    for (const counter_decl& counter : program.counters) {
        initial_counters_[counter.place.index()] = counter.initial;
    }
    counters_ = initial_counters_;

    for (const task_code& task : program.tasks) {
        for (const fragment& f : task.fragments) {
            compiled_fragment compiled;
            compiled.source = f.source;
            std::unordered_map<std::string, std::size_t> labels;
            std::vector<std::pair<std::size_t, std::string>> pending_gotos;
            compile_block(f.body, compiled.code, labels, pending_gotos);
            instruction halt;
            halt.code = instruction::op::halt;
            compiled.code.push_back(halt);
            for (const auto& [index, label] : pending_gotos) {
                const auto it = labels.find(label);
                if (it == labels.end()) {
                    throw internal_error("interpreter: goto to unknown label");
                }
                compiled.code[index].target = it->second;
            }
            fragment_order_.push_back(f.function_name);
            fragment_of_source_.emplace(f.source.value(), f.function_name);
            fragments_.emplace(f.function_name, std::move(compiled));
        }
    }
}

void program_instance::compile_block(
    const block& b, std::vector<instruction>& code,
    std::unordered_map<std::string, std::size_t>& labels,
    std::vector<std::pair<std::size_t, std::string>>& pending_gotos)
{
    for (const stmt& s : b) {
        switch (s.k) {
        case stmt::kind::action: {
            instruction ins;
            ins.code = instruction::op::action;
            ins.action_target = s.action_target;
            code.push_back(ins);
            break;
        }
        case stmt::kind::counter_add: {
            instruction ins;
            ins.code = instruction::op::add;
            ins.counter = s.counter;
            ins.delta = s.delta;
            code.push_back(ins);
            break;
        }
        case stmt::kind::if_guard: {
            instruction ins;
            ins.code = instruction::op::branch_if_not;
            ins.g = s.g;
            const std::size_t branch_at = code.size();
            code.push_back(ins);
            compile_block(s.body, code, labels, pending_gotos);
            code[branch_at].target = code.size();
            break;
        }
        case stmt::kind::while_guard: {
            const std::size_t head = code.size();
            instruction ins;
            ins.code = instruction::op::branch_if_not;
            ins.g = s.g;
            const std::size_t branch_at = code.size();
            code.push_back(ins);
            compile_block(s.body, code, labels, pending_gotos);
            instruction back;
            back.code = instruction::op::jump;
            back.target = head;
            code.push_back(back);
            code[branch_at].target = code.size();
            break;
        }
        case stmt::kind::choice: {
            instruction ins;
            ins.code = instruction::op::choice;
            ins.choice_place = s.choice_place;
            const std::size_t choice_at = code.size();
            code.push_back(ins);
            std::vector<std::size_t> branch_starts;
            std::vector<std::size_t> exits;
            for (const block& branch : s.branches) {
                branch_starts.push_back(code.size());
                compile_block(branch, code, labels, pending_gotos);
                instruction done;
                done.code = instruction::op::jump;
                exits.push_back(code.size());
                code.push_back(done);
            }
            for (std::size_t exit : exits) {
                code[exit].target = code.size();
            }
            code[choice_at].table = std::move(branch_starts);
            break;
        }
        case stmt::kind::goto_label: {
            instruction ins;
            ins.code = instruction::op::jump;
            pending_gotos.emplace_back(code.size(), s.text);
            code.push_back(ins);
            break;
        }
        case stmt::kind::label:
            labels.emplace(s.text, code.size());
            break;
        case stmt::kind::comment:
            break;
        }
    }
}

bool program_instance::evaluate(const guard& g) const
{
    for (const counter_test& test : g.tests) {
        if (counters_[test.place.index()] < test.at_least) {
            return false;
        }
    }
    return true;
}

run_stats program_instance::run_fragment(const std::string& function_name,
                                         const choice_oracle& choices,
                                         const action_observer& on_action)
{
    const auto it = fragments_.find(function_name);
    if (it == fragments_.end()) {
        throw error("interpreter: unknown fragment '" + function_name + "'");
    }
    const std::vector<instruction>& code = it->second.code;
    run_stats stats;
    std::size_t pc = 0;
    while (true) {
        if (++stats.instructions > step_limit_) {
            throw error("interpreter: step limit exceeded in '" + function_name +
                        "' (runaway loop)");
        }
        const instruction& ins = code[pc];
        switch (ins.code) {
        case instruction::op::action:
            ++stats.actions;
            if (on_action) {
                on_action(ins.action_target);
            }
            ++pc;
            break;
        case instruction::op::add: {
            ++stats.counter_updates;
            std::int64_t& value = counters_[ins.counter.index()];
            value += ins.delta;
            require_internal(value >= 0, "interpreter: counter went negative");
            ++pc;
            break;
        }
        case instruction::op::branch_if_not:
            ++stats.guard_evaluations;
            pc = evaluate(ins.g) ? pc + 1 : ins.target;
            break;
        case instruction::op::jump:
            pc = ins.target;
            break;
        case instruction::op::choice: {
            ++stats.choice_queries;
            if (!choices) {
                throw error("interpreter: program queries choices but no oracle given");
            }
            const int branch = choices(ins.choice_place);
            if (branch < 0 || static_cast<std::size_t>(branch) >= ins.table.size()) {
                throw error("interpreter: choice oracle returned out-of-range branch " +
                            std::to_string(branch));
            }
            pc = ins.table[static_cast<std::size_t>(branch)];
            break;
        }
        case instruction::op::halt:
            return stats;
        }
    }
}

run_stats program_instance::run_source(pn::transition_id source,
                                       const choice_oracle& choices,
                                       const action_observer& on_action)
{
    const auto it = fragment_of_source_.find(source.value());
    if (it == fragment_of_source_.end()) {
        throw error("interpreter: no fragment for the given source transition");
    }
    return run_fragment(it->second, choices, on_action);
}

std::int64_t program_instance::counter(pn::place_id p) const
{
    if (!p.valid() || p.index() >= counters_.size()) {
        return 0;
    }
    return counters_[p.index()];
}

void program_instance::reset()
{
    counters_ = initial_counters_;
}

std::vector<std::string> program_instance::fragment_names() const
{
    return fragment_order_;
}

} // namespace fcqss::cgen
