// fcqss — codegen/interpreter.hpp
// Executes generated programs in-process.  The AST is flattened to a small
// instruction list (so goto has exact C semantics) and run against pluggable
// choice resolution.  Tests use this to cross-validate the synthesized code
// against direct Petri-net simulation without invoking a C compiler, and the
// RTOS simulator uses it as the body of each task.
#ifndef FCQSS_CODEGEN_INTERPRETER_HPP
#define FCQSS_CODEGEN_INTERPRETER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/c_ast.hpp"

namespace fcqss::cgen {

/// Resolves a data-dependent choice: given the choice place, return the
/// branch index (into the cluster's ascending alternative list).
using choice_oracle = std::function<int(pn::place_id)>;

/// Observes every executed action (transition firing), in order.
using action_observer = std::function<void(pn::transition_id)>;

/// Execution statistics for one fragment run.
struct run_stats {
    std::int64_t actions = 0;
    std::int64_t counter_updates = 0;
    std::int64_t guard_evaluations = 0;
    std::int64_t choice_queries = 0;
    std::int64_t instructions = 0;
};

/// A program instance with live counter state.
class program_instance {
public:
    /// Compiles all fragments of `program`; counters start at their declared
    /// initial values.
    explicit program_instance(const generated_program& program);

    /// Runs one activation of the fragment `function_name` (e.g.
    /// "task_Cell_on_Cell").  Throws fcqss::error on unknown names or when
    /// the step budget is exhausted (runaway loop protection).
    run_stats run_fragment(const std::string& function_name, const choice_oracle& choices,
                           const action_observer& on_action = {});

    /// Runs the fragment for the given source transition.
    run_stats run_source(pn::transition_id source, const choice_oracle& choices,
                         const action_observer& on_action = {});

    /// Current value of a place's counter (0 when the counter was elided).
    [[nodiscard]] std::int64_t counter(pn::place_id p) const;

    /// Resets all counters to their declared initial values.
    void reset();

    /// Names of all fragments, in task order.
    [[nodiscard]] std::vector<std::string> fragment_names() const;

    /// Step budget per activation (default generous; raise for stress runs).
    void set_step_limit(std::int64_t limit) { step_limit_ = limit; }

private:
    // Flattened instruction forms.
    struct instruction {
        enum class op {
            action,      // fire transition
            add,         // counter += delta
            branch_if_not, // guard false -> jump to target
            jump,        // unconditional jump
            choice,      // query oracle; jump via table
            halt,
        };
        op code = op::halt;
        pn::transition_id action_target;
        pn::place_id counter;
        std::int64_t delta = 0;
        guard g;
        std::size_t target = 0;
        pn::place_id choice_place;
        std::vector<std::size_t> table; // choice: branch entry points
    };

    struct compiled_fragment {
        pn::transition_id source;
        std::vector<instruction> code;
    };

    void compile_block(const block& b, std::vector<instruction>& code,
                       std::unordered_map<std::string, std::size_t>& labels,
                       std::vector<std::pair<std::size_t, std::string>>& pending_gotos);

    [[nodiscard]] bool evaluate(const guard& g) const;

    std::unordered_map<std::string, compiled_fragment> fragments_;
    std::vector<std::string> fragment_order_;
    std::unordered_map<std::int32_t, std::string> fragment_of_source_;
    std::vector<std::int64_t> counters_;         // by place index
    std::vector<std::int64_t> initial_counters_; // by place index
    std::int64_t step_limit_ = 1 << 22;
};

} // namespace fcqss::cgen

#endif // FCQSS_CODEGEN_INTERPRETER_HPP
