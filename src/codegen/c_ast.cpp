#include "codegen/c_ast.hpp"

namespace fcqss::cgen {

stmt make_action(pn::transition_id t)
{
    stmt s;
    s.k = stmt::kind::action;
    s.action_target = t;
    return s;
}

stmt make_counter_add(pn::place_id p, std::int64_t delta)
{
    stmt s;
    s.k = stmt::kind::counter_add;
    s.counter = p;
    s.delta = delta;
    return s;
}

stmt make_if(guard g, block body)
{
    stmt s;
    s.k = stmt::kind::if_guard;
    s.g = std::move(g);
    s.body = std::move(body);
    return s;
}

stmt make_while(guard g, block body)
{
    stmt s;
    s.k = stmt::kind::while_guard;
    s.g = std::move(g);
    s.body = std::move(body);
    return s;
}

stmt make_choice(pn::place_id p, std::vector<pn::transition_id> alternatives,
                 std::vector<block> branches)
{
    stmt s;
    s.k = stmt::kind::choice;
    s.choice_place = p;
    s.choice_alternatives = std::move(alternatives);
    s.branches = std::move(branches);
    return s;
}

stmt make_goto(std::string label)
{
    stmt s;
    s.k = stmt::kind::goto_label;
    s.text = std::move(label);
    return s;
}

stmt make_label(std::string label)
{
    stmt s;
    s.k = stmt::kind::label;
    s.text = std::move(label);
    return s;
}

stmt make_comment(std::string text)
{
    stmt s;
    s.k = stmt::kind::comment;
    s.text = std::move(text);
    return s;
}

std::size_t statement_count(const block& b)
{
    std::size_t count = 0;
    for (const stmt& s : b) {
        ++count;
        count += statement_count(s.body);
        for (const block& branch : s.branches) {
            count += statement_count(branch);
        }
    }
    return count;
}

std::size_t statement_count(const generated_program& program)
{
    std::size_t count = 0;
    for (const task_code& task : program.tasks) {
        for (const fragment& f : task.fragments) {
            count += statement_count(f.body);
        }
    }
    return count;
}

} // namespace fcqss::cgen
