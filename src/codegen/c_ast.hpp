// fcqss — codegen/c_ast.hpp
// The abstract syntax of the generated C programs (Sec. 4).  The statement
// language is deliberately small — exactly what the paper's Task routine
// emits: transition action calls, counting-variable updates, if/while tests
// on counters, if-then-else over choice resolutions, and goto/label for
// merge sharing.  Guard conditions are conjunctions of `counter >= k`,
// which is all the synthesis ever needs.
#ifndef FCQSS_CODEGEN_C_AST_HPP
#define FCQSS_CODEGEN_C_AST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::cgen {

/// One conjunct of a guard: counter(place) >= at_least.
struct counter_test {
    pn::place_id place;
    std::int64_t at_least = 1;
};

/// A guard: conjunction of counter tests (empty = always true).
struct guard {
    std::vector<counter_test> tests;
};

struct stmt;
/// A statement sequence.
using block = std::vector<stmt>;

/// One generated statement.
struct stmt {
    enum class kind {
        /// action_<transition>(); — the user-supplied computation.
        action,
        /// count_<place> += delta;
        counter_add,
        /// if (guard) { body }
        if_guard,
        /// while (guard) { body }
        while_guard,
        /// if (choice_<place>() == 0) {...} else if ... — data-dependent
        /// control; branch i corresponds to alternatives[i].
        choice,
        /// goto L; — merge-place code sharing (paper's "already visited").
        goto_label,
        /// L: — target of a goto.
        label,
        /// /* text */
        comment,
    };

    kind k = kind::comment;
    pn::transition_id action_target;           // action
    pn::place_id counter;                      // counter_add
    std::int64_t delta = 0;                    // counter_add
    guard g;                                   // if_guard / while_guard
    block body;                                // if_guard / while_guard
    pn::place_id choice_place;                 // choice
    std::vector<pn::transition_id> choice_alternatives; // choice, branch order
    std::vector<block> branches;               // choice
    std::string text;                          // label / goto_label / comment
};

// Convenience constructors (keep call sites readable).
[[nodiscard]] stmt make_action(pn::transition_id t);
[[nodiscard]] stmt make_counter_add(pn::place_id p, std::int64_t delta);
[[nodiscard]] stmt make_if(guard g, block body);
[[nodiscard]] stmt make_while(guard g, block body);
[[nodiscard]] stmt make_choice(pn::place_id p,
                               std::vector<pn::transition_id> alternatives,
                               std::vector<block> branches);
[[nodiscard]] stmt make_goto(std::string label);
[[nodiscard]] stmt make_label(std::string label);
[[nodiscard]] stmt make_comment(std::string text);

/// A persistent counting variable: static long count_<place> = init;
struct counter_decl {
    pn::place_id place;
    std::string name;
    std::int64_t initial = 0;
    /// Peak token count this counter reaches while executing the valid
    /// schedule (-1 when not computed).  Emitted as an annotation so the
    /// integrator can size memory; see qss::schedule_buffer_bounds.
    std::int64_t peak_bound = -1;
};

/// One entry fragment of a task: the code run when `source` fires (one
/// activation = one occurrence of the input event).
struct fragment {
    pn::transition_id source;
    std::string function_name;
    block body;
};

/// One synthesized task: fragments for each of its independent inputs.
struct task_code {
    std::string name;
    std::vector<fragment> fragments;
};

/// A complete generated program.
struct generated_program {
    std::string name;
    std::vector<counter_decl> counters;
    std::vector<task_code> tasks;
    /// Names used for extern hooks, indexed by original net ids.
    std::vector<std::string> action_names;     // by transition index
    std::vector<std::string> choice_names;     // by place index ("" when none)
    std::vector<int> choice_arity;             // by place index (0 when none)
};

/// Statement count of a block, recursively (code-size metric).
[[nodiscard]] std::size_t statement_count(const block& b);
[[nodiscard]] std::size_t statement_count(const generated_program& program);

} // namespace fcqss::cgen

#endif // FCQSS_CODEGEN_C_AST_HPP
