// fcqss — codegen/c_emitter.hpp
// Renders a generated_program as a compilable, self-contained C99 translation
// unit.  The synthesized tasks call two families of extern hooks the
// integrator supplies: `void action_<t>(void)` (the computation bound to a
// transition) and `int choice_<p>(void)` (the data-dependent control
// resolution, returning the branch index).  Pass `emit_default_hooks` to get
// weak trace-printing defaults so the file compiles and runs stand-alone.
#ifndef FCQSS_CODEGEN_C_EMITTER_HPP
#define FCQSS_CODEGEN_C_EMITTER_HPP

#include <string>

#include "codegen/c_ast.hpp"

namespace fcqss::cgen {

struct emitter_options {
    /// Also emit default hook implementations (printf tracing, round-robin
    /// choices) plus a main() that runs each task fragment `demo_rounds`
    /// times — makes the generated file runnable with just `cc file.c`.
    bool emit_default_hooks = false;
    int demo_rounds = 3;
};

/// Emits the complete C source.
[[nodiscard]] std::string emit_c(const generated_program& program,
                                 const emitter_options& options = {});

/// Non-blank source lines of emit_c(program) — the paper's Table I metric.
[[nodiscard]] int emitted_line_count(const generated_program& program,
                                     const emitter_options& options = {});

} // namespace fcqss::cgen

#endif // FCQSS_CODEGEN_C_EMITTER_HPP
