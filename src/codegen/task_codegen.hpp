// fcqss — codegen/task_codegen.hpp
// Synthesis of task code from a valid schedule (the paper's Sec. 4 Schedule/
// Task algorithm).  Each task gets one fragment per independent input; a
// fragment is the reaction to ONE firing of that input, derived by walking
// the net downstream of the source:
//
//  * a data-dependent choice place becomes if-then-else over the runtime
//    choice hook (one branch per alternative, exactly the branches the valid
//    schedule proves bounded);
//  * a multirate edge (produce weight != consume weight) becomes a counting
//    variable plus an `if (count >= w)` test when the consumer fires less
//    often than the producer, or a `while (count >= w)` loop when it fires
//    more often — the paper's f(t_i) vs f(t_{i-1}) comparison expressed
//    edge-locally;
//  * a join waits for all of its counters (conjunction guard);
//  * a transition reached twice (merge place downstream of both branches)
//    is emitted once with a label and reached by goto the second time.
//
// The outer "while(true)" of the paper's listing is the RTOS invoking the
// fragment once per input event; counters are static, so token state carries
// across activations exactly like the paper's count(p2) example in Fig. 4.
#ifndef FCQSS_CODEGEN_TASK_CODEGEN_HPP
#define FCQSS_CODEGEN_TASK_CODEGEN_HPP

#include "codegen/c_ast.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace fcqss::cgen {

/// Code-generation options.
struct codegen_options {
    /// Elide the counter of a place whose tokens can never persist across an
    /// activation (all producers deliver exactly what the single consumer
    /// takes).  Matches the paper's listing, which keeps no counter for p1.
    bool elide_trivial_counters = true;
    /// Annotate each counter with its peak token count under the valid
    /// schedule (buffer sizing information in the emitted C).
    bool annotate_counter_bounds = true;
};

/// Generates the program for a schedulable QSS result and its task
/// partition.  Throws domain_error when result.schedulable is false.
[[nodiscard]] generated_program
generate_program(const pn::petri_net& net, const qss::qss_result& result,
                 const qss::task_partition& partition,
                 const codegen_options& options = {});

} // namespace fcqss::cgen

#endif // FCQSS_CODEGEN_TASK_CODEGEN_HPP
