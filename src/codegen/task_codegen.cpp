#include "codegen/task_codegen.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/error.hpp"
#include "base/strings.hpp"
#include "pn/firing.hpp"
#include "qss/tradeoff.hpp"

namespace fcqss::cgen {

namespace {

// Per-program facts shared by all fragment generators.
struct generation_context {
    const pn::petri_net& net;
    const std::vector<qss::choice_cluster>& clusters;
    codegen_options options;

    // cluster_of[p] = index into clusters, or SIZE_MAX.
    std::vector<std::size_t> cluster_of;
    // Places whose counter can be elided (tokens never persist).
    std::vector<bool> elidable;
    // Places where some producer over-delivers (=> while instead of if).
    std::vector<bool> needs_while;
    // Places whose counter was actually referenced by emitted code.
    std::vector<bool> counter_used;
    // Transitions reachable downstream of each place (emission ordering).
    std::vector<std::size_t> downstream_size;

    generation_context(const pn::petri_net& n, const std::vector<qss::choice_cluster>& cl,
                       const codegen_options& opt)
        : net(n), clusters(cl), options(opt)
    {
        cluster_of.assign(net.place_count(), SIZE_MAX);
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            cluster_of[clusters[i].place.index()] = i;
        }
        elidable.assign(net.place_count(), false);
        needs_while.assign(net.place_count(), false);
        counter_used.assign(net.place_count(), false);
        downstream_size.assign(net.place_count(), 0);
        for (pn::place_id p : net.places()) {
            if (options.elide_trivial_counters) {
                elidable[p.index()] = compute_elidable(p);
            }
            needs_while[p.index()] = compute_needs_while(p);
            downstream_size[p.index()] = compute_downstream_size(p);
        }
    }

    // Number of transitions reachable downstream of p.  Used to order a
    // transition's output emissions so the bulkiest subtree sits in tail
    // position, maximizing goto-shared merge suffixes (the outputs are
    // concurrent in the net, so any order is a valid serialization).
    [[nodiscard]] std::size_t compute_downstream_size(pn::place_id start) const
    {
        std::vector<bool> seen(net.transition_count(), false);
        std::vector<pn::place_id> frontier{start};
        std::vector<bool> seen_place(net.place_count(), false);
        seen_place[start.index()] = true;
        std::size_t count = 0;
        while (!frontier.empty()) {
            const pn::place_id p = frontier.back();
            frontier.pop_back();
            for (const pn::transition_weight& consumer : net.consumers(p)) {
                if (seen[consumer.transition.index()]) {
                    continue;
                }
                seen[consumer.transition.index()] = true;
                ++count;
                for (const pn::place_weight& out : net.outputs(consumer.transition)) {
                    if (!seen_place[out.place.index()]) {
                        seen_place[out.place.index()] = true;
                        frontier.push_back(out.place);
                    }
                }
            }
        }
        return count;
    }

    // A counter is unnecessary when tokens can never persist past the
    // producing activation: the place starts empty, every producer delivers
    // exactly the consumption weight, and the consumer does not wait on
    // other inputs (not a join).
    [[nodiscard]] bool compute_elidable(pn::place_id p) const
    {
        if (net.initial_tokens(p) != 0) {
            return false;
        }
        const auto& consumers = net.consumers(p);
        if (consumers.empty()) {
            return false; // sink place: counter observes emitted tokens
        }
        const std::int64_t consume_weight = consumers.front().weight;
        for (const pn::transition_weight& consumer : consumers) {
            if (consumer.weight != consume_weight) {
                return false;
            }
            if (net.inputs(consumer.transition).size() > 1) {
                return false; // join: tokens may wait for the partner input
            }
        }
        const auto& producers = net.producers(p);
        if (producers.empty()) {
            return false;
        }
        for (const pn::transition_weight& producer : producers) {
            if (producer.weight != consume_weight) {
                return false;
            }
        }
        return true;
    }

    // `while` is required when one arrival can enable several consumer
    // firings (some producer delivers more than one consumption's worth, or
    // the consumer joins several places whose backlog may already suffice).
    [[nodiscard]] bool compute_needs_while(pn::place_id p) const
    {
        const auto& consumers = net.consumers(p);
        if (consumers.empty()) {
            return false;
        }
        const std::int64_t consume_weight = consumers.front().weight;
        for (const pn::transition_weight& producer : net.producers(p)) {
            if (producer.weight > consume_weight) {
                return true;
            }
        }
        for (const pn::transition_weight& consumer : consumers) {
            if (net.inputs(consumer.transition).size() > 1) {
                return true;
            }
        }
        return false;
    }
};

// Generates one fragment: the reaction to a single firing of `driver`.
class fragment_generator {
public:
    explicit fragment_generator(generation_context& ctx) : ctx_(ctx) {}

    block generate(pn::transition_id driver, bool driver_is_source)
    {
        block body;
        if (driver_is_source) {
            emit_transition_body(driver, body, /*tail=*/true);
        } else {
            // Autonomous driver (net without sources): fire while its input
            // backlog allows, like any other guarded unit.
            emit_consumer_unit(driver, /*use_while=*/true, body, /*tail=*/true);
        }
        prune_unused_labels(body);
        return body;
    }

private:
    // Emits action + downstream propagation of t into `out`.  Consumption
    // from t's input places is the caller's responsibility.  Only the last
    // output place inherits tail position.
    void emit_transition_body(pn::transition_id t, block& out, bool tail)
    {
        if (++emitted_ > 100000) {
            throw error("task_codegen: generated code exceeds the statement limit "
                        "(merge duplication blow-up)");
        }
        out.push_back(make_action(t));

        // Self-loop (read-modify-write state) places only need their counter
        // restored: the enclosing guard re-reads them, and dispatching would
        // just re-emit this very unit.
        std::vector<pn::place_weight> outputs;
        for (const pn::place_weight& arc : ctx_.net.outputs(t)) {
            if (is_self_loop(t, arc.place)) {
                if (!ctx_.elidable[arc.place.index()]) {
                    ctx_.counter_used[arc.place.index()] = true;
                    out.push_back(make_counter_add(arc.place, arc.weight));
                }
            } else {
                outputs.push_back(arc);
            }
        }
        std::stable_sort(outputs.begin(), outputs.end(),
                         [&](const pn::place_weight& a, const pn::place_weight& b) {
                             return ctx_.downstream_size[a.place.index()] <
                                    ctx_.downstream_size[b.place.index()];
                         });
        for (std::size_t i = 0; i < outputs.size(); ++i) {
            emit_place_production(outputs[i].place, outputs[i].weight, out,
                                  tail && i + 1 == outputs.size());
        }
    }

    [[nodiscard]] bool is_self_loop(pn::transition_id t, pn::place_id p) const
    {
        for (const pn::transition_weight& consumer : ctx_.net.consumers(p)) {
            if (consumer.transition == t) {
                return true;
            }
        }
        return false;
    }

    // Token production into p: bump the counter, then dispatch to the
    // consumer unit (guard + firing).  Revisits of a unit are resolved by
    // goto — the paper's "already visited" rule:
    //  * a unit higher up the current path is a cycle; the backward goto
    //    re-runs its guard with the freshly added tokens;
    //  * a unit previously emitted in *tail position* (nothing following it
    //    up to the fragment root) is a merge; jumping into it is safe
    //    because no branch-specific code can follow the shared suffix.
    // Anything else is duplicated.
    void emit_place_production(pn::place_id p, std::int64_t produced, block& out,
                               bool tail)
    {
        const bool elided = ctx_.elidable[p.index()];
        if (!elided) {
            ctx_.counter_used[p.index()] = true;
            out.push_back(make_counter_add(p, produced));
        }
        const auto& consumers = ctx_.net.consumers(p);
        if (consumers.empty()) {
            return; // sink place: tokens leave for the environment
        }

        // `if` preserves initial-marking slack for one-shot arrivals;
        // `while` drains multi-token arrivals and join backlogs.
        const bool use_while =
            ctx_.needs_while[p.index()] || produced_forces_while(p, produced);

        const std::string unit_key = "p" + std::to_string(p.value());
        const auto on_path = on_path_label_.find(unit_key);
        if (on_path != on_path_label_.end()) {
            used_labels_.insert(on_path->second);
            out.push_back(make_goto(on_path->second));
            return;
        }
        const auto merged = tail_merge_label_.find(unit_key);
        if (tail && merged != tail_merge_label_.end() &&
            merged->second.second == use_while) {
            used_labels_.insert(merged->second.first);
            out.push_back(make_goto(merged->second.first));
            return;
        }

        // Unique per emission instance: duplicated units may each own a
        // cycle, so labels cannot be reused across copies.
        const std::string label = "L_" + sanitize_c_identifier(ctx_.net.place_name(p)) +
                                  "_" + std::to_string(label_serial_++);
        out.push_back(make_label(label));
        on_path_label_.emplace(unit_key, label);
        if (tail) {
            tail_merge_label_.emplace(unit_key, std::make_pair(label, use_while));
        }

        const std::size_t cluster_index = ctx_.cluster_of[p.index()];
        if (cluster_index != SIZE_MAX) {
            emit_choice_unit(p, cluster_index, elided, use_while, out, tail);
        } else {
            emit_single_consumer_unit(p, elided, use_while, out, tail);
        }
        on_path_label_.erase(unit_key);
    }

    [[nodiscard]] bool produced_forces_while(pn::place_id p, std::int64_t produced) const
    {
        const auto& consumers = ctx_.net.consumers(p);
        return !consumers.empty() && produced > consumers.front().weight;
    }

    void emit_choice_unit(pn::place_id p, std::size_t cluster_index, bool elided,
                          bool use_while, block& out, bool tail)
    {
        const qss::choice_cluster& cluster = ctx_.clusters[cluster_index];
        const std::int64_t consume =
            ctx_.net.consumers(p).front().weight; // equal across the cluster

        std::vector<block> branches;
        for (pn::transition_id alternative : cluster.alternatives) {
            block branch;
            // Free choice: the alternative's only input is the choice place,
            // whose tokens the guard below already consumed.
            require_internal(ctx_.net.inputs(alternative).size() == 1,
                             "task_codegen: choice alternative with extra inputs");
            emit_transition_body(alternative, branch, tail);
            branches.push_back(std::move(branch));
        }
        stmt choice = make_choice(p, cluster.alternatives, std::move(branches));

        if (elided) {
            out.push_back(std::move(choice));
            return;
        }
        block body;
        body.push_back(make_counter_add(p, -consume));
        body.push_back(std::move(choice));
        guard g;
        g.tests.push_back({p, consume});
        // Each loop iteration re-queries the choice hook: every control
        // token carries its own value.
        out.push_back(use_while ? make_while(std::move(g), std::move(body))
                                : make_if(std::move(g), std::move(body)));
    }

    void emit_single_consumer_unit(pn::place_id p, bool elided, bool use_while,
                                   block& out, bool tail)
    {
        const pn::transition_weight consumer = ctx_.net.consumers(p).front();
        if (elided) {
            // Exactly one firing per producing event; no counters involved.
            emit_transition_body(consumer.transition, out, tail);
            return;
        }
        emit_consumer_unit(consumer.transition, use_while, out, tail);
    }

    // Guard + fire for a transition whose inputs are all counted: test every
    // input counter (joins wait for all operands), decrement, fire.
    void emit_consumer_unit(pn::transition_id u, bool use_while, block& out, bool tail)
    {
        guard g;
        block body;
        for (const pn::place_weight& in : ctx_.net.inputs(u)) {
            ctx_.counter_used[in.place.index()] = true;
            g.tests.push_back({in.place, in.weight});
            body.push_back(make_counter_add(in.place, -in.weight));
        }
        emit_transition_body(u, body, tail);
        out.push_back(use_while ? make_while(std::move(g), std::move(body))
                                : make_if(std::move(g), std::move(body)));
    }

    void prune_unused_labels(block& b)
    {
        std::erase_if(b, [&](const stmt& s) {
            return s.k == stmt::kind::label && !used_labels_.contains(s.text);
        });
        for (stmt& s : b) {
            prune_unused_labels(s.body);
            for (block& branch : s.branches) {
                prune_unused_labels(branch);
            }
        }
    }

    generation_context& ctx_;
    std::unordered_map<std::string, std::string> on_path_label_;
    // unit key -> (label, use_while) of its tail-position emission.
    std::unordered_map<std::string, std::pair<std::string, bool>> tail_merge_label_;
    std::unordered_set<std::string> used_labels_;
    std::size_t emitted_ = 0;
    std::size_t label_serial_ = 0;
};

} // namespace

generated_program generate_program(const pn::petri_net& net,
                                   const qss::qss_result& result,
                                   const qss::task_partition& partition,
                                   const codegen_options& options)
{
    if (!result.schedulable) {
        throw domain_error("generate_program: net is not quasi-statically schedulable");
    }

    generation_context ctx(net, result.clusters, options);

    // Autonomous drivers consume through explicit counters; make sure their
    // input places are never elided (an elided producer site would bypass
    // the counters the driver's guard reads).
    const pn::marking m0 = pn::initial_marking(net);
    for (const qss::task_group& group : partition.tasks) {
        if (!group.sources.empty()) {
            continue;
        }
        for (pn::transition_id t : group.members) {
            if (pn::is_enabled(net, m0, t)) {
                for (const pn::place_weight& in : net.inputs(t)) {
                    ctx.elidable[in.place.index()] = false;
                }
            }
        }
    }

    generated_program program;
    program.name = net.name();

    for (const qss::task_group& group : partition.tasks) {
        task_code task;
        task.name = group.name;

        std::vector<pn::transition_id> drivers = group.sources;
        const bool drivers_are_sources = !drivers.empty();
        if (!drivers_are_sources) {
            for (pn::transition_id t : group.members) {
                if (pn::is_enabled(net, m0, t)) {
                    drivers.push_back(t);
                }
            }
        }
        for (pn::transition_id driver : drivers) {
            fragment f;
            f.source = driver;
            f.function_name =
                group.name + "_on_" + sanitize_c_identifier(net.transition_name(driver));
            fragment_generator generator(ctx);
            f.body = generator.generate(driver, drivers_are_sources);
            task.fragments.push_back(std::move(f));
        }
        program.tasks.push_back(std::move(task));
    }

    // Counter declarations for every counter the code references, annotated
    // with the peak fill the valid schedule exhibits (buffer sizing).
    std::vector<std::int64_t> peaks;
    if (options.annotate_counter_bounds) {
        peaks = qss::schedule_buffer_bounds(net, result);
    }
    for (pn::place_id p : net.places()) {
        if (ctx.counter_used[p.index()]) {
            counter_decl decl;
            decl.place = p;
            decl.name = "count_" + sanitize_c_identifier(net.place_name(p));
            decl.initial = net.initial_tokens(p);
            if (!peaks.empty()) {
                decl.peak_bound = peaks[p.index()];
            }
            program.counters.push_back(std::move(decl));
        }
    }

    // Hook names.
    program.action_names.resize(net.transition_count());
    for (pn::transition_id t : net.transitions()) {
        program.action_names[t.index()] =
            "action_" + sanitize_c_identifier(net.transition_name(t));
    }
    program.choice_names.assign(net.place_count(), "");
    program.choice_arity.assign(net.place_count(), 0);
    for (const qss::choice_cluster& cluster : result.clusters) {
        program.choice_names[cluster.place.index()] =
            "choice_" + sanitize_c_identifier(net.place_name(cluster.place));
        program.choice_arity[cluster.place.index()] =
            static_cast<int>(cluster.alternatives.size());
    }
    return program;
}

} // namespace fcqss::cgen
