// fcqss — apps/atm/testbench.hpp
// The Sec. 5 workload: "a testbench of 50 ATM cells".  Cells form messages
// of 2-7 cells over a small set of VCs, arrive at irregular (seeded
// pseudo-random) times, and interleave with a strictly periodic Tick — the
// two inputs with independent firing rates that define the task split.
#ifndef FCQSS_APPS_ATM_TESTBENCH_HPP
#define FCQSS_APPS_ATM_TESTBENCH_HPP

#include <cstdint>
#include <vector>

#include "apps/atm/atm_semantics.hpp"

namespace fcqss::atm {

/// One scheduled input event.
struct input_event {
    std::int64_t time = 0;
    bool is_cell = false;  // false = Tick
    atm_cell cell;         // valid when is_cell
};

struct testbench_options {
    int cell_count = 50;     // the paper's testbench size
    int flow_count = 4;      // VCs
    std::uint64_t seed = 1999; // DAC'99
    std::int64_t tick_period = 12;
    std::int64_t mean_cell_gap = 9; // irregular arrivals around this spacing
};

/// Deterministic (seeded) event trace: `cell_count` cells plus enough ticks
/// to drain the buffer afterwards, merged in time order.
[[nodiscard]] std::vector<input_event>
make_testbench(const testbench_options& options = {});

} // namespace fcqss::atm

#endif // FCQSS_APPS_ATM_TESTBENCH_HPP
