// fcqss — apps/atm/functional_partition.hpp
// The Table I baseline: "functional task partitioning ... obtained by
// synthesizing separately one task for each of the five modules shown in
// figure 8."  Each module becomes its own subnet: places crossing a module
// boundary are cut — the producer side sends an RTOS message when its
// transition fires; the consumer side gains a fresh source transition
// (recv_<place>) that the message activates.  The extra queue traffic and
// per-message task activations are exactly the overhead Table I charges
// against this design.
#ifndef FCQSS_APPS_ATM_FUNCTIONAL_PARTITION_HPP
#define FCQSS_APPS_ATM_FUNCTIONAL_PARTITION_HPP

#include <map>
#include <string>
#include <vector>

#include "codegen/c_ast.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/petri_net.hpp"
#include "qss/scheduler.hpp"

namespace fcqss::atm {

/// A place cut by the module boundary.
struct cut_channel {
    std::string place_name;
    std::string producer_module;
    std::string consumer_module;
};

/// One module turned into a stand-alone task program.
struct module_task {
    std::string name;
    pn::petri_net subnet;
    qss::qss_result schedule;
    cgen::generated_program program;
    /// Transition name (in subnet) of the receive source for each incoming
    /// cut place name.
    std::map<std::string, std::string> recv_source_of_place;
    /// For each module transition name: the cut places it feeds (messages to
    /// send when it fires).
    std::map<std::string, std::vector<cut_channel>> sends_of_transition;
    /// External sources of the original net owned by this module ("Cell").
    std::vector<std::string> external_sources;
};

/// The whole functional partitioning of a net.
struct functional_partition {
    std::vector<module_task> modules;
    std::vector<cut_channel> channels;

    [[nodiscard]] const module_task& module_named(const std::string& name) const;
};

/// Builds the five-module partitioning of the ATM net: assigns transitions
/// via atm::module_of, cuts crossing places, runs QSS + code generation per
/// module subnet.  Throws if any module subnet fails to schedule (the
/// modules are themselves free-choice by construction).
[[nodiscard]] functional_partition build_functional_partition(const pn::petri_net& net);

} // namespace fcqss::atm

#endif // FCQSS_APPS_ATM_FUNCTIONAL_PARTITION_HPP
