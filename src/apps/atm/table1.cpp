#include "apps/atm/table1.hpp"

#include <memory>

#include "base/error.hpp"
#include "base/strings.hpp"
#include "apps/atm/atm_net.hpp"
#include "apps/atm/functional_partition.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace fcqss::atm {

namespace {

// Posts the testbench into the simulator: Cell events go to `cell_task`,
// Tick events to `tick_task`; the payload indexes the cell list.
void post_events(rtos::rtos_simulator& sim, const std::vector<input_event>& events,
                 const std::string& cell_task, const std::string& tick_task,
                 std::vector<atm_cell>& cells)
{
    for (const input_event& event : events) {
        if (event.is_cell) {
            cells.push_back(event.cell);
            sim.post_external(event.time, cell_task,
                              {"Cell", static_cast<std::int64_t>(cells.size() - 1)});
        } else {
            sim.post_external(event.time, tick_task, {"Tick", 0});
        }
    }
}

} // namespace

implementation_report run_qss_implementation(const std::vector<input_event>& events,
                                             int flow_count,
                                             const rtos::cost_model& costs)
{
    const pn::petri_net net = build_atm_net();
    const qss::qss_result schedule = qss::quasi_static_schedule(net);
    if (!schedule.schedulable) {
        throw internal_error("table1: ATM net must be schedulable");
    }
    const qss::task_partition partition = qss::partition_tasks(net, schedule);
    const cgen::generated_program program =
        cgen::generate_program(net, schedule, partition);

    implementation_report report;
    report.name = "QSS";
    report.task_count = static_cast<int>(partition.tasks.size());
    report.lines_of_c = cgen::emitted_line_count(program);

    auto state = std::make_shared<atm_state>(flow_count);
    auto instance = std::make_shared<cgen::program_instance>(program);
    auto cells = std::make_shared<std::vector<atm_cell>>();

    const cgen::choice_oracle oracle = make_choice_oracle(net, *state);
    const cgen::action_observer apply = make_action_applier(net, *state);

    rtos::rtos_simulator sim(costs);
    const pn::transition_id cell_source = net.find_transition("Cell");
    const pn::transition_id tick_source = net.find_transition("Tick");
    sim.register_task("task_Cell",
                      [state, instance, cells, oracle, apply, cell_source](
                          rtos::task_context&, const rtos::message& m) {
                          state->current_cell =
                              cells->at(static_cast<std::size_t>(m.value));
                          auto stats = instance->run_source(cell_source, oracle, apply);
                          state->current_cell.reset();
                          return stats;
                      });
    sim.register_task("task_Tick",
                      [instance, oracle, apply, tick_source](rtos::task_context&,
                                                             const rtos::message&) {
                          return instance->run_source(tick_source, oracle, apply);
                      });

    post_events(sim, events, "task_Cell", "task_Tick", *cells);
    report.rtos = sim.run();
    report.clock_cycles = report.rtos.total_cycles;
    report.emitted = state->emitted;
    report.dropped_cells = state->dropped_cells;
    report.idle_slots = state->idle_slots;
    return report;
}

implementation_report
run_functional_implementation(const std::vector<input_event>& events, int flow_count,
                              const rtos::cost_model& costs)
{
    const pn::petri_net net = build_atm_net();
    auto partition =
        std::make_shared<functional_partition>(build_functional_partition(net));

    implementation_report report;
    report.name = "functional task partitioning";
    report.task_count = static_cast<int>(partition->modules.size());
    for (const module_task& m : partition->modules) {
        report.lines_of_c += cgen::emitted_line_count(m.program);
    }

    auto state = std::make_shared<atm_state>(flow_count);
    auto cells = std::make_shared<std::vector<atm_cell>>();

    rtos::rtos_simulator sim(costs);
    for (const module_task& m : partition->modules) {
        auto instance = std::make_shared<cgen::program_instance>(m.program);
        const module_task* module_ptr = &partition->module_named(m.name);
        const cgen::choice_oracle oracle = make_choice_oracle(module_ptr->subnet, *state);

        sim.register_task(
            m.name,
            [state, instance, cells, oracle, module_ptr, partition](
                rtos::task_context& ctx, const rtos::message& msg) {
                const pn::petri_net& subnet = module_ptr->subnet;

                // Apply semantics (recv_* markers have none) and relay every
                // firing that feeds a cut place as a message to its consumer
                // module.
                const cgen::action_observer observer = [&](pn::transition_id t) {
                    const std::string& name = subnet.transition_name(t);
                    if (!starts_with(name, "recv_")) {
                        apply_action(name, *state);
                    }
                    const auto sends = module_ptr->sends_of_transition.find(name);
                    if (sends != module_ptr->sends_of_transition.end()) {
                        for (const cut_channel& channel : sends->second) {
                            ctx.send(channel.consumer_module, {channel.place_name, 0});
                        }
                    }
                };

                pn::transition_id source;
                if (msg.topic == "Cell") {
                    state->current_cell = cells->at(static_cast<std::size_t>(msg.value));
                    source = subnet.find_transition("Cell");
                } else if (msg.topic == "Tick") {
                    source = subnet.find_transition("Tick");
                } else {
                    const auto recv = module_ptr->recv_source_of_place.find(msg.topic);
                    if (recv == module_ptr->recv_source_of_place.end()) {
                        throw internal_error("table1: message for unknown cut place");
                    }
                    source = subnet.find_transition(recv->second);
                }
                // current_cell deliberately persists after the MSD fragment:
                // the BUFFER/WFQ activations for this cell run as later
                // messages at the same timestamp and read it there.
                return instance->run_source(source, oracle, observer);
            });
    }

    post_events(sim, events, "MSD", "ARBITER_COUNTER", *cells);
    report.rtos = sim.run();
    report.clock_cycles = report.rtos.total_cycles;
    report.emitted = state->emitted;
    report.dropped_cells = state->dropped_cells;
    report.idle_slots = state->idle_slots;
    return report;
}

} // namespace fcqss::atm
