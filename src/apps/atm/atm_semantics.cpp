#include "apps/atm/atm_semantics.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace fcqss::atm {

namespace {

// WFQ finish-time increment for a flow: a common numerator keeps the
// arithmetic integral (weights 1..4 divide 60).
constexpr std::int64_t finish_numerator = 60;
constexpr std::int64_t virtual_time_step = 10;

std::int64_t finish_step(const flow_state& flow)
{
    return finish_numerator / flow.weight;
}

} // namespace

atm_state::atm_state(int flow_count)
{
    if (flow_count <= 0) {
        throw model_error("atm_state: flow_count must be positive");
    }
    flows.resize(static_cast<std::size_t>(flow_count));
    for (std::size_t vc = 0; vc < flows.size(); ++vc) {
        flows[vc].weight = static_cast<std::int64_t>(vc % 3) + 1;
    }
}

int atm_state::pick_min_finish() const
{
    int best = -1;
    for (std::size_t vc = 0; vc < flows.size(); ++vc) {
        if (flows[vc].queue.empty()) {
            continue;
        }
        if (best < 0 ||
            flows[vc].finish_time < flows[static_cast<std::size_t>(best)].finish_time) {
            best = static_cast<int>(vc);
        }
    }
    return best;
}

bool atm_state::buffer_empty() const
{
    return pick_min_finish() < 0;
}

namespace {

flow_state& current_flow(atm_state& state)
{
    if (!state.current_cell.has_value()) {
        throw internal_error("atm: cell-path choice with no current cell");
    }
    const int vc = state.current_cell->vc;
    if (vc < 0 || static_cast<std::size_t>(vc) >= state.flows.size()) {
        throw model_error("atm: cell references unknown VC");
    }
    return state.flows[static_cast<std::size_t>(vc)];
}

flow_state& selected_flow(atm_state& state)
{
    if (state.selected_vc < 0 ||
        static_cast<std::size_t>(state.selected_vc) >= state.flows.size()) {
        throw internal_error("atm: tick-path action with no selected VC");
    }
    return state.flows[static_cast<std::size_t>(state.selected_vc)];
}

// Branch indices follow each cluster's alternatives in ascending transition
// id, i.e. the declaration order in build_atm_net().
int resolve_choice(const std::string& place_name, atm_state& state)
{
    if (place_name == "msd_kind") {
        switch (state.current_cell.value().kind) {
        case cell_kind::start_of_message: return 0; // msd_som
        case cell_kind::continuation: return 1;     // msd_com
        case cell_kind::end_of_message: return 2;   // msd_eom
        }
    }
    if (place_name == "som_check") {
        // EPD: reject a new message when occupancy reached the threshold.
        return state.occupancy < state.epd_threshold ? 0 : 1; // accept : reject
    }
    if (place_name == "com_check") {
        return current_flow(state).dropping ? 1 : 0; // drop : pass
    }
    if (place_name == "eom_check") {
        return current_flow(state).dropping ? 1 : 0; // drop : pass
    }
    if (place_name == "wfq_cell_kind") {
        return current_flow(state).backlogged ? 1 : 0; // backlogged : new flow
    }
    if (place_name == "eom_flow_kind") {
        // Done when this was the only complete message pending on the VC.
        return current_flow(state).pending_messages > 1 ? 1 : 0; // more : done
    }
    if (place_name == "tick_kind") {
        return state.tick_phase == 0 ? 0 : 1; // slot boundary : mid slot
    }
    if (place_name == "ce_state") {
        return state.buffer_empty() ? 0 : 1; // empty : nonempty
    }
    if (place_name == "sel_clp") {
        return selected_flow(state).queue.front().clp ? 1 : 0;
    }
    if (place_name == "flow_after") {
        const flow_state& flow = selected_flow(state);
        if (flow.queue.size() <= 1) {
            return 0; // flow_empty
        }
        return flow.finish_time + finish_step(flow) >= state.clock_wrap_limit
                   ? 2  // restamp_wrap
                   : 1; // restamp_normal
    }
    if (place_name == "vt_kind") {
        return state.virtual_time >= state.clock_wrap_limit ? 1 : 0; // wrap : normal
    }
    throw model_error("atm: unknown choice place '" + place_name + "'");
}

void store_current_cell(atm_state& state)
{
    flow_state& flow = current_flow(state);
    flow.queue.push_back(state.current_cell.value());
    state.occupancy += 1;
    // A store re-opens a flow that went idle mid-message.
    if (!flow.backlogged) {
        flow.backlogged = true;
        flow.finish_time =
            std::max(state.virtual_time, flow.finish_time) + finish_step(flow);
    }
}

} // namespace

void apply_action(const std::string& name, atm_state& state)
{
    // --- cell path -----------------------------------------------------
    if (name == "Cell" || name == "msd_classify" || name == "msd_som" ||
        name == "msd_com" || name == "msd_eom" || name == "com_pass" ||
        name == "eom_pass" || name == "arb_grant_cell" || name == "arb_grant_eom" ||
        name == "wfq_new_flow" || name == "wfq_backlogged" || name == "wfq_requeue" ||
        name == "eom_flow_done" || name == "eom_flow_more" || name == "eom_next") {
        return; // pure control steps: no state change
    }
    if (name == "som_accept") {
        current_flow(state).dropping = false;
        return;
    }
    if (name == "som_reject") {
        current_flow(state).dropping = true;
        state.dropped_cells += 1;
        return;
    }
    if (name == "com_drop") {
        state.dropped_cells += 1;
        return;
    }
    if (name == "eom_drop") {
        state.dropped_cells += 1;
        current_flow(state).dropping = false; // message boundary resets the mark
        return;
    }
    if (name == "buf_store_som" || name == "buf_store_com") {
        store_current_cell(state);
        return;
    }
    if (name == "buf_store_eom") {
        store_current_cell(state);
        current_flow(state).pending_messages += 1;
        return;
    }
    if (name == "wfq_stamp") {
        flow_state& flow = current_flow(state);
        flow.backlogged = true;
        flow.finish_time =
            std::max(state.virtual_time, flow.finish_time) + finish_step(flow);
        return;
    }
    if (name == "eom_close") {
        current_flow(state).pending_messages = 0;
        return;
    }

    // --- tick path -----------------------------------------------------
    if (name == "Tick") {
        return;
    }
    if (name == "tick_count") {
        state.tick_phase = (state.tick_phase + 1) % state.ticks_per_slot;
        return;
    }
    if (name == "slot_boundary" || name == "slot_mid" || name == "ce_begin" ||
        name == "ce_empty" || name == "ce_nonempty" || name == "sel_clp0" ||
        name == "arb_grant_tick" || name == "wfq_pick" || name == "flow_empty" ||
        name == "emit_format" || name == "vt_normal" || name == "vt_commit") {
        return; // pure control steps
    }
    if (name == "tick_idle") {
        return; // mid-slot tick: nothing to serve
    }
    if (name == "emit_idle") {
        state.idle_slots += 1;
        return;
    }
    if (name == "ce_select") {
        state.selected_vc = state.pick_min_finish();
        if (state.selected_vc < 0) {
            throw internal_error("atm: ce_select fired on an empty buffer");
        }
        return;
    }
    if (name == "sel_clp1") {
        state.emitted_clp1 += 1;
        return;
    }
    if (name == "flow_close") {
        flow_state& flow = selected_flow(state);
        flow.backlogged = false;
        return;
    }
    if (name == "restamp_normal") {
        flow_state& flow = selected_flow(state);
        flow.finish_time += finish_step(flow);
        return;
    }
    if (name == "restamp_wrap") {
        flow_state& flow = selected_flow(state);
        flow.finish_time = flow.finish_time + finish_step(flow) - state.clock_wrap_limit;
        return;
    }
    if (name == "ce_dequeue") {
        flow_state& flow = selected_flow(state);
        if (flow.queue.empty()) {
            throw internal_error("atm: dequeue from empty flow");
        }
        state.out_cell = flow.queue.front();
        flow.queue.pop_front();
        state.occupancy -= 1;
        if (state.out_cell->kind == cell_kind::end_of_message &&
            flow.pending_messages > 0) {
            flow.pending_messages -= 1;
        }
        return;
    }
    if (name == "emit_cell") {
        state.emitted.push_back(state.out_cell.value());
        state.out_cell.reset();
        return;
    }
    if (name == "vt_advance") {
        state.virtual_time += virtual_time_step;
        return;
    }
    if (name == "vt_wrap") {
        state.virtual_time -= state.clock_wrap_limit;
        return;
    }
    throw model_error("atm: unknown transition action '" + name + "'");
}

cgen::choice_oracle make_choice_oracle(const pn::petri_net& net, atm_state& state)
{
    return [&net, &state](pn::place_id place) {
        return resolve_choice(net.place_name(place), state);
    };
}

cgen::action_observer make_action_applier(const pn::petri_net& net, atm_state& state)
{
    return [&net, &state](pn::transition_id t) {
        apply_action(net.transition_name(t), state);
    };
}

} // namespace fcqss::atm
