#include "apps/atm/atm_net.hpp"

#include "base/error.hpp"
#include "base/strings.hpp"
#include "pn/builder.hpp"

namespace fcqss::atm {

pn::petri_net build_atm_net()
{
    pn::net_builder b("atm_server");

    // ------------------------------------------------------------------
    // Cell path (activated by the Cell interrupt).
    // ------------------------------------------------------------------
    const auto cell = b.add_transition("Cell"); // source: non-empty cell arrives

    // MSD: classify the incoming cell.  msd_state is the message-state table
    // the classifier reads and writes (self-loop: read-modify-write).
    const auto msd_classify = b.add_transition("msd_classify");
    const auto p_cell_in = b.add_place("cell_in");
    const auto p_msd_state = b.add_place("msd_state", 1);
    b.add_arc(cell, p_cell_in);
    b.add_arc(p_cell_in, msd_classify);
    b.add_arc(p_msd_state, msd_classify);
    b.add_arc(msd_classify, p_msd_state);

    // Choice c1: cell kind — start / continuation / end of message.
    const auto msd_som = b.add_transition("msd_som");
    const auto msd_com = b.add_transition("msd_com");
    const auto msd_eom = b.add_transition("msd_eom");
    const auto p_msd_kind = b.add_place("msd_kind");
    b.add_arc(msd_classify, p_msd_kind);
    b.add_arc(p_msd_kind, msd_som);
    b.add_arc(p_msd_kind, msd_com);
    b.add_arc(p_msd_kind, msd_eom);

    // Choice c2 (EPD): accept the new message or reject it up front.
    const auto som_accept = b.add_transition("som_accept");
    const auto som_reject = b.add_transition("som_reject"); // terminal: drop + mark
    const auto p_som_check = b.add_place("som_check");
    b.add_arc(msd_som, p_som_check);
    b.add_arc(p_som_check, som_accept);
    b.add_arc(p_som_check, som_reject);

    // Choice c3 (PPD): continuation of a dropped message is discarded.
    const auto com_pass = b.add_transition("com_pass");
    const auto com_drop = b.add_transition("com_drop"); // terminal
    const auto p_com_check = b.add_place("com_check");
    b.add_arc(msd_com, p_com_check);
    b.add_arc(p_com_check, com_pass);
    b.add_arc(p_com_check, com_drop);

    // Choice c4: end of message — store it, or drop it and clear the mark.
    const auto eom_pass = b.add_transition("eom_pass");
    const auto eom_drop = b.add_transition("eom_drop"); // terminal: reset mark
    const auto p_eom_check = b.add_place("eom_check");
    b.add_arc(msd_eom, p_eom_check);
    b.add_arc(p_eom_check, eom_pass);
    b.add_arc(p_eom_check, eom_drop);

    // BUFFER: store accepted cells.
    const auto buf_store_som = b.add_transition("buf_store_som");
    const auto buf_store_com = b.add_transition("buf_store_com"); // terminal
    const auto buf_store_eom = b.add_transition("buf_store_eom");
    const auto p_som_store = b.add_place("som_store");
    const auto p_com_store = b.add_place("com_store");
    const auto p_eom_store = b.add_place("eom_store");
    const auto p_buf_state = b.add_place("buf_state", 1); // queue-table RMW
    b.add_arc(som_accept, p_som_store);
    b.add_arc(p_som_store, buf_store_som);
    b.add_arc(com_pass, p_com_store);
    b.add_arc(p_com_store, buf_store_com);
    b.add_arc(eom_pass, p_eom_store);
    b.add_arc(p_eom_store, buf_store_eom);
    b.add_arc(p_buf_state, buf_store_eom);
    b.add_arc(buf_store_eom, p_buf_state);

    // WFQ, cell side: a stored start-of-message requests scheduling through
    // the arbiter; a new flow gets a finish-time stamp, a backlogged flow is
    // simply requeued.
    const auto arb_grant_cell = b.add_transition("arb_grant_cell");
    const auto p_wfq_cell_req = b.add_place("wfq_cell_req");
    b.add_arc(buf_store_som, p_wfq_cell_req);
    b.add_arc(p_wfq_cell_req, arb_grant_cell);

    // Choice c5: is this VC already backlogged?
    const auto wfq_new_flow = b.add_transition("wfq_new_flow");
    const auto wfq_backlogged = b.add_transition("wfq_backlogged");
    const auto p_wfq_cell_kind = b.add_place("wfq_cell_kind");
    b.add_arc(arb_grant_cell, p_wfq_cell_kind);
    b.add_arc(p_wfq_cell_kind, wfq_new_flow);
    b.add_arc(p_wfq_cell_kind, wfq_backlogged);

    const auto wfq_stamp = b.add_transition("wfq_stamp");     // terminal (RMW below)
    const auto wfq_requeue = b.add_transition("wfq_requeue"); // terminal
    const auto p_stamp_req = b.add_place("stamp_req");
    const auto p_requeue_req = b.add_place("requeue_req");
    const auto p_wfq_table = b.add_place("wfq_table", 1); // flow-table RMW
    b.add_arc(wfq_new_flow, p_stamp_req);
    b.add_arc(p_stamp_req, wfq_stamp);
    b.add_arc(p_wfq_table, wfq_stamp);
    b.add_arc(wfq_stamp, p_wfq_table);
    b.add_arc(wfq_backlogged, p_requeue_req);
    b.add_arc(p_requeue_req, wfq_requeue);

    // WFQ, end-of-message side: message completion may close the flow.
    const auto arb_grant_eom = b.add_transition("arb_grant_eom");
    const auto p_eom_wfq_req = b.add_place("eom_wfq_req");
    b.add_arc(buf_store_eom, p_eom_wfq_req);
    b.add_arc(p_eom_wfq_req, arb_grant_eom);

    // Choice c6: other complete messages still pending on this VC?
    const auto eom_flow_done = b.add_transition("eom_flow_done");
    const auto eom_flow_more = b.add_transition("eom_flow_more");
    const auto p_eom_flow_kind = b.add_place("eom_flow_kind");
    b.add_arc(arb_grant_eom, p_eom_flow_kind);
    b.add_arc(p_eom_flow_kind, eom_flow_done);
    b.add_arc(p_eom_flow_kind, eom_flow_more);

    const auto eom_close = b.add_transition("eom_close"); // terminal
    const auto eom_next = b.add_transition("eom_next");   // terminal
    const auto p_close_req = b.add_place("close_req");
    const auto p_next_req = b.add_place("next_req");
    b.add_arc(eom_flow_done, p_close_req);
    b.add_arc(p_close_req, eom_close);
    b.add_arc(eom_flow_more, p_next_req);
    b.add_arc(p_next_req, eom_next);

    // ------------------------------------------------------------------
    // Tick path (activated by the periodic Tick event).
    // ------------------------------------------------------------------
    const auto tick = b.add_transition("Tick"); // source
    const auto tick_count = b.add_transition("tick_count");
    const auto p_tick_in = b.add_place("tick_in");
    b.add_arc(tick, p_tick_in);
    b.add_arc(p_tick_in, tick_count);

    // Choice c7: did this tick close a cell slot?
    const auto slot_boundary = b.add_transition("slot_boundary");
    const auto slot_mid = b.add_transition("slot_mid");
    const auto p_tick_kind = b.add_place("tick_kind");
    b.add_arc(tick_count, p_tick_kind);
    b.add_arc(p_tick_kind, slot_boundary);
    b.add_arc(p_tick_kind, slot_mid);

    const auto tick_idle = b.add_transition("tick_idle"); // terminal
    const auto p_idle_req = b.add_place("idle_req");
    b.add_arc(slot_mid, p_idle_req);
    b.add_arc(p_idle_req, tick_idle);

    // Slot boundary forks: serve the output port AND advance virtual time.
    const auto ce_begin = b.add_transition("ce_begin");
    const auto p_extract_req = b.add_place("extract_req");
    const auto p_vt_req = b.add_place("vt_req");
    b.add_arc(slot_boundary, p_extract_req);
    b.add_arc(slot_boundary, p_vt_req);
    b.add_arc(p_extract_req, ce_begin);

    // Choice c8: buffer empty (emit an idle cell) or backlogged?
    const auto ce_empty = b.add_transition("ce_empty");
    const auto ce_nonempty = b.add_transition("ce_nonempty");
    const auto p_ce_state = b.add_place("ce_state");
    b.add_arc(ce_begin, p_ce_state);
    b.add_arc(p_ce_state, ce_empty);
    b.add_arc(p_ce_state, ce_nonempty);

    const auto emit_idle = b.add_transition("emit_idle"); // terminal
    const auto p_idle_emit_req = b.add_place("idle_emit_req");
    b.add_arc(ce_empty, p_idle_emit_req);
    b.add_arc(p_idle_emit_req, emit_idle);

    // Select a cell; ce_select keeps a selection scratchpad (RMW).
    const auto ce_select = b.add_transition("ce_select");
    const auto p_select_req = b.add_place("select_req");
    const auto p_sel_state = b.add_place("sel_state", 1);
    b.add_arc(ce_nonempty, p_select_req);
    b.add_arc(p_select_req, ce_select);
    b.add_arc(p_sel_state, ce_select);
    b.add_arc(ce_select, p_sel_state);

    // Choice c9: cell loss priority bit of the selected cell.
    const auto sel_clp0 = b.add_transition("sel_clp0");
    const auto sel_clp1 = b.add_transition("sel_clp1");
    const auto p_sel_clp = b.add_place("sel_clp");
    b.add_arc(ce_select, p_sel_clp);
    b.add_arc(p_sel_clp, sel_clp0);
    b.add_arc(p_sel_clp, sel_clp1);

    // Both CLP outcomes converge on the tick-side arbiter grant.
    const auto arb_grant_tick = b.add_transition("arb_grant_tick");
    const auto p_sel_done = b.add_place("sel_done"); // merge place
    b.add_arc(sel_clp0, p_sel_done);
    b.add_arc(sel_clp1, p_sel_done);
    b.add_arc(p_sel_done, arb_grant_tick);

    // WFQ, tick side: pick the minimum finish time (flow-table RMW).
    const auto wfq_pick = b.add_transition("wfq_pick");
    const auto p_pick_req = b.add_place("pick_req");
    const auto p_pick_state = b.add_place("pick_state", 1);
    b.add_arc(arb_grant_tick, p_pick_req);
    b.add_arc(p_pick_req, wfq_pick);
    b.add_arc(p_pick_state, wfq_pick);
    b.add_arc(wfq_pick, p_pick_state);

    // Choice c10 (3-way): flow accounting after the pick — the flow goes
    // empty, or its next cell is restamped (with or without a finish-time
    // clock wrap).
    const auto flow_empty = b.add_transition("flow_empty");
    const auto restamp_normal = b.add_transition("restamp_normal");
    const auto restamp_wrap = b.add_transition("restamp_wrap");
    const auto p_flow_after = b.add_place("flow_after");
    b.add_arc(wfq_pick, p_flow_after);
    b.add_arc(p_flow_after, flow_empty);
    b.add_arc(p_flow_after, restamp_normal);
    b.add_arc(p_flow_after, restamp_wrap);

    const auto flow_close = b.add_transition("flow_close");
    const auto p_close_req2 = b.add_place("flow_close_req");
    b.add_arc(flow_empty, p_close_req2);
    b.add_arc(p_close_req2, flow_close);

    // All accounting outcomes converge on the dequeue (RMW on the buffer).
    const auto ce_dequeue = b.add_transition("ce_dequeue");
    const auto p_deq_ready = b.add_place("deq_ready"); // merge place
    const auto p_deq_state = b.add_place("deq_state", 1);
    b.add_arc(flow_close, p_deq_ready);
    b.add_arc(restamp_normal, p_deq_ready);
    b.add_arc(restamp_wrap, p_deq_ready);
    b.add_arc(p_deq_ready, ce_dequeue);
    b.add_arc(p_deq_state, ce_dequeue);
    b.add_arc(ce_dequeue, p_deq_state);

    // Header rewrite + emission (Emit_cell output of Fig. 8).
    const auto emit_format = b.add_transition("emit_format");
    const auto emit_cell = b.add_transition("emit_cell"); // terminal: Emit_cell
    const auto p_emit_ready = b.add_place("emit_ready");
    const auto p_emit_out = b.add_place("emit_out");
    b.add_arc(ce_dequeue, p_emit_ready);
    b.add_arc(p_emit_ready, emit_format);
    b.add_arc(emit_format, p_emit_out);
    b.add_arc(p_emit_out, emit_cell);

    // Virtual-time chain (parallel branch of the slot boundary).
    const auto vt_advance = b.add_transition("vt_advance");
    b.add_arc(p_vt_req, vt_advance);

    // Choice c12... no: c11 above was restamp; this is the 11th cluster.
    const auto vt_normal = b.add_transition("vt_normal");
    const auto vt_wrap = b.add_transition("vt_wrap");
    const auto p_vt_kind = b.add_place("vt_kind");
    b.add_arc(vt_advance, p_vt_kind);
    b.add_arc(p_vt_kind, vt_normal);
    b.add_arc(p_vt_kind, vt_wrap);

    // Both outcomes converge on the commit; the advance also hands the old
    // clock value around the choice diamond (parallel data place).
    const auto vt_commit = b.add_transition("vt_commit"); // terminal
    const auto p_vt_done = b.add_place("vt_done"); // merge place
    const auto p_vt_carry = b.add_place("vt_carry"); // diamond-parallel data
    b.add_arc(vt_normal, p_vt_done);
    b.add_arc(vt_wrap, p_vt_done);
    b.add_arc(vt_advance, p_vt_carry);
    b.add_arc(p_vt_done, vt_commit);
    b.add_arc(p_vt_carry, vt_commit);

    pn::petri_net net = std::move(b).build();
    require_internal(net.transition_count() == 49,
                     "atm_net: expected 49 transitions (paper statistic)");
    require_internal(net.place_count() == 41, "atm_net: expected 41 places");
    return net;
}

std::string to_string(module m)
{
    switch (m) {
    case module::msd: return "MSD";
    case module::buffer: return "BUFFER";
    case module::wfq: return "WFQ_SCHEDULING";
    case module::cell_extract: return "CELL_EXTRACT";
    case module::arbiter_counter: return "ARBITER_COUNTER";
    }
    return "unknown";
}

module module_of(const std::string& transition_name)
{
    // MSD: arrival, classification and discard policy.
    for (const char* name :
         {"Cell", "msd_classify", "msd_som", "msd_com", "msd_eom", "som_accept",
          "som_reject", "com_pass", "com_drop", "eom_pass", "eom_drop"}) {
        if (transition_name == name) {
            return module::msd;
        }
    }
    // BUFFER: stores.
    for (const char* name : {"buf_store_som", "buf_store_com", "buf_store_eom"}) {
        if (transition_name == name) {
            return module::buffer;
        }
    }
    // WFQ: stamping, pick, restamp, flow bookkeeping.
    for (const char* name :
         {"wfq_new_flow", "wfq_backlogged", "wfq_stamp", "wfq_requeue", "eom_flow_done",
          "eom_flow_more", "eom_close", "eom_next", "wfq_pick", "flow_empty",
          "flow_close", "restamp_normal", "restamp_wrap"}) {
        if (transition_name == name) {
            return module::wfq;
        }
    }
    // CELL_EXTRACT: slot service and emission.
    for (const char* name : {"ce_begin", "ce_empty", "ce_nonempty", "emit_idle",
                             "ce_select", "sel_clp0", "sel_clp1", "ce_dequeue",
                             "emit_format", "emit_cell"}) {
        if (transition_name == name) {
            return module::cell_extract;
        }
    }
    // ARBITER + COUNTER: grants, tick counting, virtual time.
    for (const char* name :
         {"arb_grant_cell", "arb_grant_eom", "arb_grant_tick", "Tick", "tick_count",
          "slot_boundary", "slot_mid", "tick_idle", "vt_advance", "vt_normal", "vt_wrap",
          "vt_commit"}) {
        if (transition_name == name) {
            return module::arbiter_counter;
        }
    }
    throw model_error("atm::module_of: unknown transition '" + transition_name + "'");
}

std::vector<std::string> transitions_of(const pn::petri_net& net, module m)
{
    std::vector<std::string> names;
    for (pn::transition_id t : net.transitions()) {
        if (module_of(net.transition_name(t)) == m) {
            names.push_back(net.transition_name(t));
        }
    }
    return names;
}

} // namespace fcqss::atm
