// fcqss — apps/atm/atm_semantics.hpp
// Executable behaviour for the ATM server net: a shared server state, the
// choice oracle that resolves the net's 11 data-dependent choices from that
// state, and per-transition actions that mutate it (EPD/PPD message discard,
// per-VC queues, WFQ finish times).  The same state/oracle/action set drives
// both the QSS implementation and the functional-partitioning baseline, so
// their outputs can be compared cell by cell.
#ifndef FCQSS_APPS_ATM_ATM_SEMANTICS_HPP
#define FCQSS_APPS_ATM_ATM_SEMANTICS_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "codegen/interpreter.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::atm {

/// Position of a cell within its message.
enum class cell_kind {
    start_of_message,
    continuation,
    end_of_message,
};

/// One ATM cell.
struct atm_cell {
    int id = 0;
    int vc = 0;            // virtual circuit
    cell_kind kind = cell_kind::start_of_message;
    bool clp = false;      // cell loss priority bit
};

/// Per-VC state: the queue, WFQ bookkeeping and the discard mark.
struct flow_state {
    std::deque<atm_cell> queue;
    bool backlogged = false;
    std::int64_t finish_time = 0;
    std::int64_t weight = 1;   // WFQ share (cells per finish-time step)
    bool dropping = false;     // message currently being discarded
    std::int64_t pending_messages = 0;
};

/// The whole server state shared by every module.
struct atm_state {
    explicit atm_state(int flow_count);

    std::vector<flow_state> flows;
    std::int64_t occupancy = 0;       // cells stored across all VCs
    std::int64_t epd_threshold = 12;  // EPD: reject new messages above this
    std::int64_t virtual_time = 0;
    std::int64_t clock_wrap_limit = 1 << 20;

    // Cell path scratch.
    std::optional<atm_cell> current_cell;

    // Tick path scratch.
    int tick_phase = 0;
    int ticks_per_slot = 2;
    int selected_vc = -1;
    std::optional<atm_cell> out_cell; // dequeued, awaiting emission

    // Outputs.
    std::vector<atm_cell> emitted;
    std::int64_t dropped_cells = 0;
    std::int64_t idle_slots = 0;
    std::int64_t emitted_clp1 = 0;

    /// VC with the minimum finish time among backlogged flows with cells;
    /// -1 when none.
    [[nodiscard]] int pick_min_finish() const;
    /// True when no backlogged flow holds a cell.
    [[nodiscard]] bool buffer_empty() const;
};

/// Binds the net's choice places to `state` (resolution by place NAME, so
/// the oracle works both on the full net and on module subnets).
[[nodiscard]] cgen::choice_oracle make_choice_oracle(const pn::petri_net& net,
                                                     atm_state& state);

/// Applies the action of `transition_name` to `state`.  Unknown names throw.
void apply_action(const std::string& transition_name, atm_state& state);

/// Adapter: an action observer that applies semantics by transition name.
[[nodiscard]] cgen::action_observer make_action_applier(const pn::petri_net& net,
                                                        atm_state& state);

} // namespace fcqss::atm

#endif // FCQSS_APPS_ATM_ATM_SEMANTICS_HPP
