// fcqss — apps/atm/table1.hpp
// The Sec. 5 experiment: run the QSS implementation (2 tasks) and the
// functional-task-partitioning baseline (5 module tasks) of the ATM server
// on the same 50-cell testbench, and report Table I's three rows — number
// of tasks, lines of generated C code, and simulated clock cycles — plus
// the functional outputs so tests can assert both implementations emit the
// same cells.
#ifndef FCQSS_APPS_ATM_TABLE1_HPP
#define FCQSS_APPS_ATM_TABLE1_HPP

#include <string>
#include <vector>

#include "apps/atm/atm_semantics.hpp"
#include "apps/atm/testbench.hpp"
#include "rtos/rtos_sim.hpp"

namespace fcqss::atm {

/// Table I row for one software implementation.
struct implementation_report {
    std::string name;
    int task_count = 0;
    int lines_of_c = 0;
    std::int64_t clock_cycles = 0;

    // Functional outputs (for cross-implementation equivalence checks).
    std::vector<atm_cell> emitted;
    std::int64_t dropped_cells = 0;
    std::int64_t idle_slots = 0;

    rtos::sim_report rtos;
};

/// Runs the QSS implementation: one program, tasks task_Cell and task_Tick,
/// no inter-task queues.
[[nodiscard]] implementation_report
run_qss_implementation(const std::vector<input_event>& events, int flow_count,
                       const rtos::cost_model& costs = {});

/// Runs the functional baseline: five module tasks chained by messages over
/// the cut places.
[[nodiscard]] implementation_report
run_functional_implementation(const std::vector<input_event>& events, int flow_count,
                              const rtos::cost_model& costs = {});

} // namespace fcqss::atm

#endif // FCQSS_APPS_ATM_TABLE1_HPP
