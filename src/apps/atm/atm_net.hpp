// fcqss — apps/atm/atm_net.hpp
// The Sec. 5 case study: an ATM server for Virtual Private Networks with
// (1) message selective discard (MSD) and (2) WFQ bandwidth control.
// Inputs with independent rates: Cell (irregular interrupt) and Tick
// (periodic).  The exact net is published only in the companion tech report;
// this reconstruction follows Fig. 8's module structure and reproduces the
// paper's statistics exactly: 49 transitions, 41 places, 11 choice places,
// 120 distinct T-reductions, and a 2-task QSS partition.
//
// Module map (Fig. 8):
//   MSD           — classify cell (SOM/COM/EOM), EPD accept/reject at start
//                   of message, PPD pass/drop for continuations and ends
//   BUFFER        — per-VC cell queues, occupancy accounting
//   WFQ           — finish-time stamping (cell side), min-pick + restamp
//                   (tick side)
//   CELL_EXTRACT  — slot service: idle cell or selected-cell dequeue + emit
//   ARBITER+COUNTER — tick slot counting, WFQ grant points, virtual time
#ifndef FCQSS_APPS_ATM_ATM_NET_HPP
#define FCQSS_APPS_ATM_ATM_NET_HPP

#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::atm {

/// Builds the ATM server FCPN.
[[nodiscard]] pn::petri_net build_atm_net();

/// The five functional modules of Fig. 8, in declaration order.
enum class module {
    msd,
    buffer,
    wfq,
    cell_extract,
    arbiter_counter,
};

[[nodiscard]] std::string to_string(module m);

/// Module owning each transition (by transition name).  Used to derive the
/// functional-task-partitioning baseline (one task per module).
[[nodiscard]] module module_of(const std::string& transition_name);

/// All transition names of one module, in net declaration order.
[[nodiscard]] std::vector<std::string> transitions_of(const pn::petri_net& net, module m);

} // namespace fcqss::atm

#endif // FCQSS_APPS_ATM_ATM_NET_HPP
