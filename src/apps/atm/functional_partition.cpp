#include "apps/atm/functional_partition.hpp"

#include <set>

#include "base/error.hpp"
#include "apps/atm/atm_net.hpp"
#include "pn/builder.hpp"
#include "pn/structure.hpp"
#include "qss/task_partition.hpp"

namespace fcqss::atm {

const module_task& functional_partition::module_named(const std::string& name) const
{
    for (const module_task& m : modules) {
        if (m.name == name) {
            return m;
        }
    }
    throw model_error("functional_partition: unknown module '" + name + "'");
}

namespace {

struct place_routing {
    bool internal = false;
    std::string producer_module; // empty when the place has no producers
    std::string consumer_module; // empty when the place has no consumers
    std::string home_module;     // module whose subnet owns the place
};

place_routing route_place(const pn::petri_net& net, pn::place_id p)
{
    std::set<std::string> producer_modules;
    for (const pn::transition_weight& producer : net.producers(p)) {
        producer_modules.insert(
            to_string(module_of(net.transition_name(producer.transition))));
    }
    std::set<std::string> consumer_modules;
    for (const pn::transition_weight& consumer : net.consumers(p)) {
        consumer_modules.insert(
            to_string(module_of(net.transition_name(consumer.transition))));
    }
    if (producer_modules.size() > 1 || consumer_modules.size() > 1) {
        throw model_error("functional_partition: place '" + net.place_name(p) +
                          "' spans more than two modules");
    }

    place_routing routing;
    routing.producer_module =
        producer_modules.empty() ? "" : *producer_modules.begin();
    routing.consumer_module =
        consumer_modules.empty() ? "" : *consumer_modules.begin();
    if (!routing.producer_module.empty() && !routing.consumer_module.empty() &&
        routing.producer_module == routing.consumer_module) {
        routing.internal = true;
        routing.home_module = routing.producer_module;
    } else if (routing.producer_module.empty()) {
        routing.internal = true; // source place: owned by its consumer
        routing.home_module = routing.consumer_module;
    } else if (routing.consumer_module.empty()) {
        routing.internal = true; // sink place: owned by its producer
        routing.home_module = routing.producer_module;
    } else {
        routing.home_module = routing.consumer_module; // cut: lives receiver-side
    }
    return routing;
}

} // namespace

functional_partition build_functional_partition(const pn::petri_net& net)
{
    functional_partition result;

    // Route every place; collect the cut channels.
    std::vector<place_routing> routing(net.place_count());
    for (pn::place_id p : net.places()) {
        routing[p.index()] = route_place(net, p);
        if (!routing[p.index()].internal) {
            result.channels.push_back({net.place_name(p),
                                       routing[p.index()].producer_module,
                                       routing[p.index()].consumer_module});
        }
    }

    const module all_modules[] = {module::msd, module::buffer, module::wfq,
                                  module::cell_extract, module::arbiter_counter};
    for (module m : all_modules) {
        const std::string module_name = to_string(m);
        module_task task;
        task.name = module_name;

        pn::net_builder builder(net.name() + "_" + module_name);
        std::vector<pn::place_id> place_map(net.place_count());
        std::vector<bool> place_in(net.place_count(), false);

        // Places owned by this module (internal or incoming cut).
        for (pn::place_id p : net.places()) {
            if (routing[p.index()].home_module != module_name) {
                continue;
            }
            place_in[p.index()] = true;
            place_map[p.index()] =
                builder.add_place(net.place_name(p), net.initial_tokens(p));
        }

        // Module transitions with their intra-module arcs; outgoing cut arcs
        // are dropped and recorded as message sends.
        for (pn::transition_id t : net.transitions()) {
            const std::string& name = net.transition_name(t);
            if (to_string(module_of(name)) != module_name) {
                continue;
            }
            const pn::transition_id sub_t = builder.add_transition(name);
            if (net.inputs(t).empty()) {
                task.external_sources.push_back(name);
            }
            for (const pn::place_weight& in : net.inputs(t)) {
                require_internal(place_in[in.place.index()],
                                 "functional_partition: consumer without its place");
                builder.add_arc(place_map[in.place.index()], sub_t, in.weight);
            }
            for (const pn::place_weight& out : net.outputs(t)) {
                if (place_in[out.place.index()]) {
                    builder.add_arc(sub_t, place_map[out.place.index()], out.weight);
                } else {
                    task.sends_of_transition[name].push_back(
                        {net.place_name(out.place), module_name,
                         routing[out.place.index()].home_module});
                }
            }
        }

        // Receive sources for incoming cut places: one message = one firing
        // of the original producer, delivering its arc weight in tokens.
        for (pn::place_id p : net.places()) {
            if (!place_in[p.index()] || routing[p.index()].internal) {
                continue;
            }
            const std::string recv_name = "recv_" + net.place_name(p);
            const pn::transition_id recv = builder.add_transition(recv_name);
            require_internal(!net.producers(p).empty(),
                             "functional_partition: cut place without producer");
            builder.add_arc(recv, place_map[p.index()], net.producers(p).front().weight);
            task.recv_source_of_place.emplace(net.place_name(p), recv_name);
        }

        task.subnet = std::move(builder).build();
        task.schedule = qss::quasi_static_schedule(task.subnet);
        if (!task.schedule.schedulable) {
            throw internal_error("functional_partition: module subnet '" + module_name +
                                 "' is not schedulable: " + task.schedule.diagnosis);
        }
        const qss::task_partition groups =
            qss::partition_tasks(task.subnet, task.schedule);
        task.program = cgen::generate_program(task.subnet, task.schedule, groups);
        result.modules.push_back(std::move(task));
    }
    return result;
}

} // namespace fcqss::atm
