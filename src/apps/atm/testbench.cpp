#include "apps/atm/testbench.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/prng.hpp"

namespace fcqss::atm {

std::vector<input_event> make_testbench(const testbench_options& options)
{
    if (options.cell_count <= 0 || options.flow_count <= 0 ||
        options.tick_period <= 0 || options.mean_cell_gap < 2) {
        throw model_error("make_testbench: options must be positive (mean gap >= 2)");
    }
    if (options.tick_period % 2 != 0) {
        throw model_error("make_testbench: tick_period must be even so ticks and "
                          "cells never collide");
    }
    prng rng(options.seed);

    // Per-VC message progress so each VC emits well-formed SOM/COM*/EOM runs.
    struct message_progress {
        int remaining = 0; // cells left in the current message (0 = none open)
    };
    std::vector<message_progress> progress(static_cast<std::size_t>(options.flow_count));

    std::vector<input_event> events;
    std::int64_t time = 1;
    for (int i = 0; i < options.cell_count; ++i) {
        // Irregular arrival: even-sized gap around the mean.  Starting from
        // the odd t=1, cells always land on odd instants while the periodic
        // ticks land on even ones, so no cell ever ties with a tick and the
        // event order is identical for every implementation.
        time += 2 * (1 + static_cast<std::int64_t>(rng.below(
                             static_cast<std::uint64_t>(options.mean_cell_gap - 1))));

        // Pick a VC, preferring one with an open message so messages finish.
        int vc =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(options.flow_count)));
        for (int probe = 0; probe < options.flow_count; ++probe) {
            const int candidate = (vc + probe) % options.flow_count;
            if (progress[static_cast<std::size_t>(candidate)].remaining > 0 ||
                probe == options.flow_count - 1) {
                vc = candidate;
                break;
            }
            if (rng.below(2) == 0) {
                vc = candidate;
                break;
            }
        }

        message_progress& msg = progress[static_cast<std::size_t>(vc)];
        atm_cell cell;
        cell.id = i;
        cell.vc = vc;
        cell.clp = rng.below(5) == 0; // ~20% low-priority cells
        if (msg.remaining == 0) {
            msg.remaining = 2 + static_cast<int>(rng.below(6)); // message of 2-7 cells
            cell.kind = cell_kind::start_of_message;
        } else if (msg.remaining == 1) {
            cell.kind = cell_kind::end_of_message;
        } else {
            cell.kind = cell_kind::continuation;
        }
        msg.remaining -= 1;

        events.push_back({time, /*is_cell=*/true, cell});
    }

    // Ticks: periodic from t=0 until well past the last cell so the buffer
    // drains (each slot needs ticks_per_slot ticks; be generous).
    const std::int64_t horizon =
        time + options.tick_period * (4 * options.cell_count + 16);
    for (std::int64_t t = 0; t <= horizon; t += options.tick_period) {
        events.push_back({t, /*is_cell=*/false, {}});
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const input_event& a, const input_event& b) {
                         return a.time < b.time;
                     });
    return events;
}

} // namespace fcqss::atm
