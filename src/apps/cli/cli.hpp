// fcqss — apps/cli/cli.hpp
// The shared command-line toolkit behind pn_tool (and any future front
// end): a subcommand registry plus the flag-parsing helpers every
// command uses.  A tool declares a table of `command` entries and hands
// argv to dispatch(); the registry owns command lookup, the usage
// listing, and the uniform failure contract:
//
//   exit 2   usage problems — unknown subcommand, unknown flag, a flag
//            missing its value, or an enum flag given a spelling outside
//            its accepted table (the error lists every accepted value)
//
// Integer flags go through int_option, enumeration flags through
// enum_option with an explicit choice table — there is deliberately no
// way to read an enum flag without one, so every enum-ish flag in every
// command rejects unknown values the same way.
#ifndef FCQSS_APPS_CLI_CLI_HPP
#define FCQSS_APPS_CLI_CLI_HPP

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace fcqss::cli {

/// One subcommand: `run` receives the full argv (argv[1] is the command
/// itself, its arguments start at argv[2]).
struct command {
    const char* name;
    /// Argument synopsis shown in the usage listing, e.g.
    /// "[--jobs N] model.pn...".
    const char* synopsis;
    int (*run)(int argc, char** argv);
};

/// Looks argv[1] up in `commands` and runs it.  Unknown or missing
/// subcommands print the usage listing (one line per command) and return
/// 2.  Exceptions escaping a command become "error: <what>" with exit 1.
int dispatch(const char* tool, const command* commands, std::size_t count,
             int argc, char** argv);

/// Prints the usage listing for `commands` to stderr; returns 2.
int usage(const char* tool, const command* commands, std::size_t count);

/// Parses "--flag N" style integer options; advances `i` past the value.
/// Exits 2 when the value is missing or not an integer.
bool int_option(int argc, char** argv, int& i, const char* flag, long& out);

/// Parses "--flag SIZE" byte-size options: a non-negative integer with an
/// optional K/M/G suffix (binary multiples, case-insensitive, optional
/// trailing B or iB — "512K", "64MiB", "1g").  Advances `i` past the
/// value; exits 2 when the value is missing or malformed.
bool byte_option(int argc, char** argv, int& i, const char* flag,
                 unsigned long long& out);

/// One accepted spelling of an enumeration flag.
template <typename E>
struct enum_choice {
    const char* spelling;
    E value;
};

/// Exits 2 with the full accepted list — out-of-line so the template
/// below stays header-only without pulling the message logic with it.
[[noreturn]] void reject_enum_value(const char* flag, const char* got,
                                    const char* const* spellings,
                                    std::size_t count);

[[noreturn]] void missing_value(const char* flag);

/// Parses "--flag value" style enumeration options against a fixed table
/// of accepted spellings; advances `i` past the value.  Unknown values
/// print every accepted spelling and exit 2, so all enum-ish flags fail
/// the same way (same contract as int_option).
template <typename E, std::size_t N>
bool enum_option(int argc, char** argv, int& i, const char* flag,
                 const enum_choice<E> (&choices)[N], E& out)
{
    if (std::strcmp(argv[i], flag) != 0) {
        return false;
    }
    if (i + 1 >= argc) {
        missing_value(flag);
    }
    const char* text = argv[++i];
    for (const enum_choice<E>& choice : choices) {
        if (std::strcmp(choice.spelling, text) == 0) {
            out = choice.value;
            return true;
        }
    }
    const char* spellings[N];
    for (std::size_t c = 0; c < N; ++c) {
        spellings[c] = choices[c].spelling;
    }
    reject_enum_value(flag, text, spellings, N);
}

/// Matches "--flag" (bare) or "--flag=FILE".  `file` keeps the FILE
/// part, empty for the bare form.
bool output_option(const char* arg, const char* flag, bool& enabled,
                   std::string& file);

/// Writes `text` to `path`; returns 1 (with a message) on failure.
int write_text_file(const std::string& path, const std::string& text);

/// Shared --stats[=FILE] / --trace=FILE handling: `enable()` right after
/// argument parsing, `emit()` once the command's work is done.  The
/// metrics JSONL goes to stdout unless --stats named a file; the Chrome
/// trace always needs a file (it is a single large JSON object).
struct telemetry_options {
    bool stats = false;
    std::string stats_file;
    bool trace = false;
    std::string trace_file;

    bool parse(const char* arg);
    [[nodiscard]] int enable() const;
    [[nodiscard]] int emit() const;
};

} // namespace fcqss::cli

#endif // FCQSS_APPS_CLI_CLI_HPP
