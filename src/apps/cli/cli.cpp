#include "apps/cli/cli.hpp"

#include <exception>

#include "obs/obs.hpp"

namespace fcqss::cli {

int usage(const char* tool, const command* commands, std::size_t count)
{
    std::fprintf(stderr, "usage:\n");
    for (std::size_t i = 0; i < count; ++i) {
        std::fprintf(stderr, "  %s %s %s\n", tool, commands[i].name,
                     commands[i].synopsis);
    }
    return 2;
}

int dispatch(const char* tool, const command* commands, std::size_t count,
             int argc, char** argv)
{
    if (argc < 2) {
        return usage(tool, commands, count);
    }
    for (std::size_t i = 0; i < count; ++i) {
        if (std::strcmp(argv[1], commands[i].name) == 0) {
            try {
                return commands[i].run(argc, argv);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 1;
            }
        }
    }
    std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
    return usage(tool, commands, count);
}

bool int_option(int argc, char** argv, int& i, const char* flag, long& out)
{
    if (std::strcmp(argv[i], flag) != 0) {
        return false;
    }
    if (i + 1 >= argc) {
        missing_value(flag);
    }
    const char* text = argv[++i];
    char* end = nullptr;
    out = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s needs an integer, got '%s'\n", flag, text);
        std::exit(2);
    }
    return true;
}

bool byte_option(int argc, char** argv, int& i, const char* flag,
                 unsigned long long& out)
{
    if (std::strcmp(argv[i], flag) != 0) {
        return false;
    }
    if (i + 1 >= argc) {
        missing_value(flag);
    }
    const char* text = argv[++i];
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    unsigned long long scale = 1;
    if (end != text) {
        switch (*end) {
        case 'k': case 'K': scale = 1ULL << 10; ++end; break;
        case 'm': case 'M': scale = 1ULL << 20; ++end; break;
        case 'g': case 'G': scale = 1ULL << 30; ++end; break;
        default: break;
        }
        if (scale != 1 && (*end == 'i' || *end == 'I')) {
            ++end;
        }
        if (*end == 'b' || *end == 'B') {
            ++end;
        }
    }
    if (end == text || *end != '\0' || text[0] == '-' ||
        (scale != 1 && value > ~0ULL / scale)) {
        std::fprintf(stderr,
                     "%s needs a byte size (integer with optional K/M/G "
                     "suffix), got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    out = value * scale;
    return true;
}

void missing_value(const char* flag)
{
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
}

void reject_enum_value(const char* flag, const char* got,
                       const char* const* spellings, std::size_t count)
{
    std::string accepted;
    for (std::size_t i = 0; i < count; ++i) {
        if (!accepted.empty()) {
            accepted += ", ";
        }
        accepted += spellings[i];
    }
    std::fprintf(stderr, "unknown %s value '%s': accepted values are %s\n", flag,
                 got, accepted.c_str());
    std::exit(2);
}

bool output_option(const char* arg, const char* flag, bool& enabled,
                   std::string& file)
{
    const std::size_t length = std::strlen(flag);
    if (std::strncmp(arg, flag, length) != 0) {
        return false;
    }
    if (arg[length] == '\0') {
        enabled = true;
        file.clear();
        return true;
    }
    if (arg[length] == '=') {
        enabled = true;
        file = arg + length + 1;
        return true;
    }
    return false;
}

int write_text_file(const std::string& path, const std::string& text)
{
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    return 0;
}

bool telemetry_options::parse(const char* arg)
{
    return output_option(arg, "--stats", stats, stats_file) ||
           output_option(arg, "--trace", trace, trace_file);
}

int telemetry_options::enable() const
{
    if (trace && trace_file.empty()) {
        std::fprintf(stderr, "--trace needs a file: --trace=FILE\n");
        return 2;
    }
    obs::set_stats_enabled(stats);
    obs::set_tracing_enabled(trace);
    return 0;
}

int telemetry_options::emit() const
{
    int failures = 0;
    if (trace) {
        obs::set_tracing_enabled(false);
        failures += write_text_file(trace_file, obs::chrome_trace_json());
    }
    if (stats) {
        const std::string jsonl = obs::metrics_jsonl();
        if (stats_file.empty()) {
            std::printf("%s", jsonl.c_str());
        } else {
            failures += write_text_file(stats_file, jsonl);
        }
    }
    return failures ? 1 : 0;
}

} // namespace fcqss::cli
