#include "rtos/rtos_sim.hpp"

#include "base/error.hpp"

namespace fcqss::rtos {

void task_context::send(const std::string& task, message m)
{
    sim_.send_internal(task, std::move(m));
}

void rtos_simulator::register_task(const std::string& name, task_handler handler)
{
    if (handlers_.contains(name)) {
        throw model_error("rtos_simulator: duplicate task '" + name + "'");
    }
    if (!handler) {
        throw model_error("rtos_simulator: empty handler for '" + name + "'");
    }
    handlers_.emplace(name, std::move(handler));
}

void rtos_simulator::post_external(std::int64_t time, const std::string& task, message m)
{
    if (!handlers_.contains(task)) {
        throw model_error("rtos_simulator: external event for unknown task '" + task +
                          "'");
    }
    queue_.push({time, next_sequence_++, task, std::move(m), /*external=*/true});
}

void rtos_simulator::send_internal(const std::string& task, message m)
{
    if (!handlers_.contains(task)) {
        throw model_error("rtos_simulator: message to unknown task '" + task + "'");
    }
    report_.total_cycles += costs_.queue_push;
    report_.tasks[current_task_].cycles += costs_.queue_push;
    report_.tasks[current_task_].messages_sent += 1;
    queue_.push({now_, next_sequence_++, task, std::move(m), /*external=*/false});
}

sim_report rtos_simulator::run()
{
    report_ = sim_report{};
    for (const auto& [name, handler] : handlers_) {
        (void)handler;
        report_.tasks.emplace(name, task_report{});
    }

    while (!queue_.empty()) {
        const pending_event event = queue_.top();
        queue_.pop();
        now_ = std::max(now_, event.time);
        current_task_ = event.task;

        task_report& task = report_.tasks[event.task];
        std::int64_t cycles = costs_.task_activation;
        if (event.external) {
            cycles += costs_.interrupt_overhead;
        } else {
            cycles += costs_.queue_pop;
        }

        task_context context(*this);
        const cgen::run_stats stats = handlers_.at(event.task)(context, event.payload);
        cycles += costs_.fragment_cost(stats);

        task.activations += 1;
        task.cycles += cycles;
        report_.total_cycles += cycles;
        report_.events_processed += 1;
    }
    report_.end_time = now_;
    current_task_.clear();
    return report_;
}

} // namespace fcqss::rtos
