// fcqss — rtos/rtos_sim.hpp
// A small run-to-completion RTOS simulator.  Tasks are activated by external
// events (interrupts: the ATM server's Cell and Tick) or by messages posted
// from other tasks (the functional-partitioning baseline chains its five
// module tasks through such queues).  Every activation pays the cost model's
// dispatch overhead; every message pays push/pop — which is precisely the
// overhead quasi-static scheduling removes by fusing rate-dependent work
// into fewer tasks (Sec. 5, Table I).
#ifndef FCQSS_RTOS_RTOS_SIM_HPP
#define FCQSS_RTOS_RTOS_SIM_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "rtos/cost_model.hpp"

namespace fcqss::rtos {

/// A message delivered to a task: a topic plus one integer payload.
struct message {
    std::string topic;
    std::int64_t value = 0;
};

class rtos_simulator;

/// Handed to a running task so it can post messages to peers.
class task_context {
public:
    /// Posts `m` to `task`'s queue (costs queue_push now, queue_pop and an
    /// activation when delivered).
    void send(const std::string& task, message m);

private:
    friend class rtos_simulator;
    explicit task_context(rtos_simulator& sim) : sim_(sim) {}
    rtos_simulator& sim_;
};

/// A task body: reacts to one message, reports its execution statistics.
using task_handler = std::function<cgen::run_stats(task_context&, const message&)>;

/// Per-task accounting.
struct task_report {
    std::int64_t activations = 0;
    std::int64_t cycles = 0;
    std::int64_t messages_sent = 0;
};

/// Whole-run accounting (Table I's "Clock cycles" is total_cycles).
struct sim_report {
    std::int64_t total_cycles = 0;
    std::int64_t events_processed = 0;
    std::int64_t end_time = 0;
    std::map<std::string, task_report> tasks;
};

/// Discrete-event simulator.  External events carry a timestamp; internal
/// messages are delivered at the sending activation's timestamp in FIFO
/// order (run-to-completion semantics, single processor).
class rtos_simulator {
public:
    explicit rtos_simulator(cost_model costs = {}) : costs_(costs) {}

    /// Registers a task; names must be unique.
    void register_task(const std::string& name, task_handler handler);

    /// Schedules an external (interrupt) event for `task` at `time`.
    void post_external(std::int64_t time, const std::string& task, message m);

    /// Runs until all events are drained and returns the accounting.
    [[nodiscard]] sim_report run();

    [[nodiscard]] const cost_model& costs() const noexcept { return costs_; }

private:
    friend class task_context;

    struct pending_event {
        std::int64_t time = 0;
        std::uint64_t sequence = 0;
        std::string task;
        message payload;
        bool external = false;

        /// Min-heap by (time, sequence).
        [[nodiscard]] bool operator>(const pending_event& other) const
        {
            if (time != other.time) {
                return time > other.time;
            }
            return sequence > other.sequence;
        }
    };

    void send_internal(const std::string& task, message m);

    cost_model costs_;
    std::map<std::string, task_handler> handlers_;
    std::priority_queue<pending_event, std::vector<pending_event>, std::greater<>> queue_;
    std::uint64_t next_sequence_ = 0;
    std::int64_t now_ = 0;
    std::string current_task_;
    sim_report report_;
};

} // namespace fcqss::rtos

#endif // FCQSS_RTOS_RTOS_SIM_HPP
