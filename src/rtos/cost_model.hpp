// fcqss — rtos/cost_model.hpp
// Cycle-cost model for the evaluation substrate.  The paper reports "clock
// cycles" for a testbench of 50 ATM cells on an unspecified embedded target;
// we make the cost structure explicit instead: every RTOS service and every
// generated-code operation has a configurable cycle price.  Table I's shape
// comes from the *structure* of the costs (per-activation overhead dominates
// when the same work is split across more tasks), not from the absolute
// numbers.
#ifndef FCQSS_RTOS_COST_MODEL_HPP
#define FCQSS_RTOS_COST_MODEL_HPP

#include <cstdint>

#include "codegen/interpreter.hpp"

namespace fcqss::rtos {

/// Cycle prices.  Defaults approximate a small 32-bit MCU with a lightweight
/// RTOS (activation = dispatcher + context switch; queue ops copy a message).
struct cost_model {
    /// RTOS overhead to activate a task (dispatch + context switch).
    std::int64_t task_activation = 120;
    /// Posting an event/message into another task's queue.
    std::int64_t queue_push = 25;
    /// Reading a message from the task's own queue.
    std::int64_t queue_pop = 25;
    /// Executing one transition's computation (action hook body).
    std::int64_t action = 40;
    /// One counter update in generated code.
    std::int64_t counter_update = 2;
    /// One guard (if/while condition) evaluation.
    std::int64_t guard_evaluation = 2;
    /// One data-dependent choice resolution (reads state, branches).
    std::int64_t choice_query = 6;
    /// Interrupt entry/exit for an external event (Cell/Tick arrival).
    std::int64_t interrupt_overhead = 30;

    /// Cycles consumed by one fragment run under this model.
    [[nodiscard]] std::int64_t fragment_cost(const cgen::run_stats& stats) const
    {
        return stats.actions * action + stats.counter_updates * counter_update +
               stats.guard_evaluations * guard_evaluation +
               stats.choice_queries * choice_query;
    }
};

} // namespace fcqss::rtos

#endif // FCQSS_RTOS_COST_MODEL_HPP
