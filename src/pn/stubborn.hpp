// fcqss — pn/stubborn.hpp
// Deadlock-preserving stubborn-set partial-order reduction (Valmari).  At a
// marking M the engines normally expand every enabled transition; with
// reduction they expand only a *stubborn subset* S ∩ En(M), where S is the
// closure of one enabled seed under two structural rules:
//
//   (D2)  for every enabled t in S, every transition sharing an input place
//         with t is in S — nothing outside S can disable t, and firing t
//         cannot disable anything outside S;
//   (D1)  for every disabled t in S, all producers of one insufficiently
//         marked input place of t (the "scapegoat") are in S — nothing
//         outside S can enable t.
//
// With these, any firing sequence from M to a dead marking can be permuted
// so its first transition lies in S ∩ En(M); by induction every reachable
// dead marking stays reachable in the reduced graph, so deadlock verdicts
// (and the set of reachable dead markings) are preserved exactly.  The full
// reachability *set* is NOT preserved — the reduced graph visits a subset
// of the markings — so only deadlock-style queries may run on it.
//
// Both rules are precomputed once per net from the incidence data (the
// conflict relation is the same consumer index behind the engines'
// incremental enabled sets); the per-state closure is a deterministic
// function of the marking alone, which keeps the parallel engine's
// bit-identical-at-any-thread-count guarantee intact.
#ifndef FCQSS_PN_STUBBORN_HPP
#define FCQSS_PN_STUBBORN_HPP

#include <cstdint>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Which partial-order reduction the exploration engines apply per state.
enum class reduction_kind {
    /// Expand every enabled transition: the full state graph.
    none,
    /// Expand a deadlock-preserving stubborn subset per state.  Preserves
    /// has-deadlock and the set of reachable dead markings; does NOT
    /// preserve the full reachability set or liveness.
    stubborn,
};

/// Per-thread scratch for stubborn_reduction::reduce(): flag arrays sized
/// |T| plus the closure work lists.  Reusing one workspace across states
/// keeps the per-state cost at O(closure), not O(|T|); distinct threads
/// must use distinct workspaces.
struct stubborn_workspace {
    std::vector<std::uint8_t> in_set;     ///< closure membership, reset via members
    std::vector<std::uint8_t> is_enabled; ///< membership in the enabled set
    std::vector<transition_id> stack;     ///< closure work list
    std::vector<transition_id> members;   ///< closure members, for flag reset
    std::vector<transition_id> best;      ///< smallest enabled subset so far
};

/// Structural stubborn-set computer for one net.  Construction precomputes
/// the conflict relation; reduce() is const and safe to call concurrently
/// with per-thread workspaces.
class stubborn_reduction {
public:
    explicit stubborn_reduction(const petri_net& net);

    /// Computes the stubborn subset of `enabled` (the exact enabled set of
    /// `tokens`, ascending) to expand at this marking.  Writes the subset to
    /// `out`, ascending; `out` always contains at least one transition when
    /// `enabled` is non-empty, and equals `enabled` when no reduction
    /// applies.  Deterministic in (tokens, enabled) only.
    void reduce(const std::int64_t* tokens, const std::vector<transition_id>& enabled,
                stubborn_workspace& ws, std::vector<transition_id>& out) const;

private:
    /// Closes over {seed} under D1/D2 at `tokens`, marking members in
    /// ws.in_set / ws.members.  Returns the number of enabled members, or
    /// `bail_out` as soon as that many are seen (the caller already has a
    /// set this small, so the rest of the closure cannot matter).
    [[nodiscard]] std::size_t closure(const std::int64_t* tokens, transition_id seed,
                                      std::size_t bail_out,
                                      stubborn_workspace& ws) const;

    /// The insufficiently marked input place of a disabled t whose producer
    /// set is smallest (ties to the lowest place id) — the D1 scapegoat.
    [[nodiscard]] place_id scapegoat(const std::int64_t* tokens,
                                     transition_id t) const;

    const petri_net* net_;
    /// conflicts_[t]: transitions other than t sharing an input place with t
    /// (the consumers of •t), ascending — the D2 rule, precomputed.
    std::vector<std::vector<transition_id>> conflicts_;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_STUBBORN_HPP
