// fcqss — pn/stubborn.hpp
// Stubborn-set partial-order reduction (Valmari).  At a marking M the
// engines normally expand every enabled transition; with reduction they
// expand only a *stubborn subset* S ∩ En(M), where S is the closure of one
// enabled seed under two structural rules:
//
//   (D2)  for every enabled t in S, every transition sharing an input place
//         with t is in S — nothing outside S can disable t, and firing t
//         cannot disable anything outside S;
//   (D1)  for every disabled t in S, all producers of one insufficiently
//         marked input place of t (the "scapegoat") are in S — nothing
//         outside S can enable t.
//
// With these, any firing sequence from M to a dead marking can be permuted
// so its first transition lies in S ∩ En(M); by induction every reachable
// dead marking stays reachable in the reduced graph, so deadlock verdicts
// (and the set of reachable dead markings) are preserved exactly.  That is
// reduction_strength::deadlock — the full reachability *set* is NOT
// preserved, and neither are liveness or other temporal properties.
//
// reduction_strength::ltl_x layers the classical extra conditions on top,
// so liveness and stutter-invariant reachability queries stay exact too:
//
//   (key)  every stubborn set is built by D2-closing an *enabled* seed, so
//          every enabled member is a key transition: the transitions that
//          could consume from its input places are all inside S, hence no
//          firing sequence outside S can ever disable it.  This holds by
//          construction for both strengths (reduce() guarantees it).
//   (V)    visibility: if S contains an enabled transition that changes the
//          token count of an observed place, S contains every such
//          "visible" transition — visible firings are never reordered past
//          each other, only stuttered.
//   (I)    when an invisible enabled transition exists, the chosen set
//          contains one (seeds are restricted to invisible transitions), so
//          the reduction never forces visible progress it could stutter.
//   (no ignoring)  in every cycle-capable SCC of the reduced graph, every
//          transition enabled somewhere in the SCC fires *from* some state
//          of the SCC (Varpaaniemi's "t occurs in C"; the successor may
//          leave the SCC — every member still reaches the firing state
//          inside C, which is exactly what fireability preservation
//          needs).  This is not a per-state rule: the engines enforce it
//          with a deterministic post-pass over the finished reduced graph
//          (detail::enforce_nonignoring in pn/state_space.hpp) that fully
//          expands one state per offending SCC and re-explores
//          incrementally.  Note the condition is per-SCC, not per-path: it
//          guarantees t stays *fireable* from every explored state, not
//          that every infinite run eventually fires t.
//
// Both per-state rules are precomputed once per net from the incidence data
// (the conflict relation is the same consumer index behind the engines'
// incremental enabled sets); the per-state closure is a deterministic
// function of the marking alone, which keeps the parallel engine's
// bit-identical-at-any-thread-count guarantee intact — the ignoring
// post-pass is sequential and runs on the (already identical) leveled
// graph, so the guarantee survives ltl_x strength too.
#ifndef FCQSS_PN_STUBBORN_HPP
#define FCQSS_PN_STUBBORN_HPP

#include <cstdint>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Which partial-order reduction the exploration engines apply per state.
enum class reduction_kind {
    /// Expand every enabled transition: the full state graph.
    none,
    /// Expand a stubborn subset per state (see reduction_strength for what
    /// the reduced graph preserves).
    stubborn,
};

/// How much a stubborn reduction must preserve.
enum class reduction_strength {
    /// D1/D2 only.  Preserves has-deadlock and the set of reachable dead
    /// markings; does NOT preserve the reachability set, liveness, or any
    /// other temporal property.
    deadlock,
    /// D1/D2 plus visibility (V/I over the observed places) and the
    /// SCC-local "no transition ignored forever" post-pass.  Additionally
    /// preserves transition liveness (every transition's fireability from
    /// every explored state) and stutter-invariant *reachability* queries
    /// over the observed places ("some reachable marking satisfies φ", the
    /// EF fragment of LTL-X — what check_live / check_k_bounded_explicit
    /// need).  Full trace-level LTL-X model checking would need a stronger
    /// per-cycle proviso than the per-SCC one enforced here.
    ltl_x,
};

/// Per-net configuration of the reduction.
struct stubborn_options {
    reduction_strength strength = reduction_strength::deadlock;
    /// Places the query observes (only meaningful under ltl_x): transitions
    /// whose firing changes the token count of an observed place are
    /// *visible* and subject to conditions V and I.  Empty — the right
    /// choice for deadlock and liveness queries — makes every transition
    /// invisible.
    std::vector<place_id> observed_places{};
};

/// Places some firing can *grow*: those where at least one transition has a
/// positive folded net delta (outputs minus inputs), ascending.  A place no
/// transition grows can never exceed its count in the initial marking, so
/// boundedness queries need only observe the growable places — and each
/// per-place EF query stays exact observing just *its* place, the weakest
/// visibility set, which is how check_k_bounded_explicit keeps the ltl_x
/// reduction effective: it explores once per growable place instead of once
/// with every growable place visible.
[[nodiscard]] std::vector<place_id> growable_places(const petri_net& net);

/// Per-thread scratch for stubborn_reduction::reduce(): flag arrays sized
/// |T| plus the closure work lists.  Reusing one workspace across states
/// keeps the per-state cost at O(closure), not O(|T|); distinct threads
/// must use distinct workspaces.
struct stubborn_workspace {
    std::vector<std::uint8_t> in_set;     ///< closure membership, reset via members
    std::vector<std::uint8_t> is_enabled; ///< membership in the enabled set
    std::vector<transition_id> stack;     ///< closure work list
    std::vector<transition_id> members;   ///< closure members, for flag reset
    std::vector<transition_id> best;      ///< smallest enabled subset so far
};

/// Structural stubborn-set computer for one net.  Construction precomputes
/// the conflict relation and the visibility set; reduce() is const and safe
/// to call concurrently with per-thread workspaces.
class stubborn_reduction {
public:
    explicit stubborn_reduction(const petri_net& net, stubborn_options options = {});

    [[nodiscard]] reduction_strength strength() const noexcept { return strength_; }

    /// True when t changes the token count of an observed place (always
    /// false under deadlock strength or with no observed places).
    [[nodiscard]] bool visible(transition_id t) const noexcept
    {
        return !visible_.empty() && visible_[t.index()] != 0;
    }

    /// Computes the stubborn subset of `enabled` (the exact enabled set of
    /// `tokens`, ascending) to expand at this marking.  Writes the subset to
    /// `out`, ascending; `out` always contains at least one transition when
    /// `enabled` is non-empty, and equals `enabled` when no reduction
    /// applies.  Deterministic in (tokens, enabled) only.
    void reduce(const std::int64_t* tokens, const std::vector<transition_id>& enabled,
                stubborn_workspace& ws, std::vector<transition_id>& out) const;

private:
    /// Closes over {seed} under D1/D2 (plus V under ltl_x) at `tokens`,
    /// marking members in ws.in_set / ws.members.  Returns the number of
    /// enabled members, or `bail_out` as soon as that many are seen (the
    /// caller already has a set this small, so the rest of the closure
    /// cannot matter).
    [[nodiscard]] std::size_t closure(const std::int64_t* tokens, transition_id seed,
                                      std::size_t bail_out,
                                      stubborn_workspace& ws) const;

    /// The insufficiently marked input place of a disabled t whose producer
    /// set is smallest (ties to the lowest place id) — the D1 scapegoat.
    [[nodiscard]] place_id scapegoat(const std::int64_t* tokens,
                                     transition_id t) const;

    const petri_net* net_;
    reduction_strength strength_;
    /// conflicts_[t]: transitions other than t sharing an input place with t
    /// (the consumers of •t), ascending — the D2 rule, precomputed.
    std::vector<std::vector<transition_id>> conflicts_;
    /// visible_[t] != 0 when t changes an observed place; empty when nothing
    /// is observed (or strength is deadlock), so visible() is O(1) either way.
    std::vector<std::uint8_t> visible_;
    /// The visible transitions, ascending — condition V pulls this whole
    /// list into any set holding an enabled visible member.
    std::vector<transition_id> visible_list_;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_STUBBORN_HPP
