#include "pn/stubborn.hpp"

#include <algorithm>
#include <cassert>

namespace fcqss::pn {

stubborn_reduction::stubborn_reduction(const petri_net& net) : net_(&net)
{
    conflicts_.resize(net.transition_count());
    for (transition_id t : net.transitions()) {
        std::vector<transition_id>& list = conflicts_[t.index()];
        for (const place_weight& in : net.inputs(t)) {
            for (const transition_weight& c : net.consumers(in.place)) {
                if (c.transition != t) {
                    list.push_back(c.transition);
                }
            }
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
}

place_id stubborn_reduction::scapegoat(const std::int64_t* tokens, transition_id t) const
{
    place_id best;
    std::size_t best_producers = 0;
    for (const place_weight& in : net_->inputs(t)) {
        if (tokens[in.place.index()] < in.weight) {
            const std::size_t producers = net_->producers(in.place).size();
            if (!best.valid() || producers < best_producers) {
                best = in.place;
                best_producers = producers;
                if (producers == 0) {
                    break; // t can never fire again: the empty closure wins
                }
            }
        }
    }
    assert(best.valid()); // a disabled transition has an insufficient input
    return best;
}

std::size_t stubborn_reduction::closure(const std::int64_t* tokens, transition_id seed,
                                        std::size_t bail_out,
                                        stubborn_workspace& ws) const
{
    ws.stack.clear();
    ws.members.clear();
    const auto add = [&](transition_id t) {
        if (!ws.in_set[t.index()]) {
            ws.in_set[t.index()] = 1;
            ws.members.push_back(t);
            ws.stack.push_back(t);
        }
    };
    add(seed);
    std::size_t enabled_members = 0;
    while (!ws.stack.empty()) {
        const transition_id t = ws.stack.back();
        ws.stack.pop_back();
        if (ws.is_enabled[t.index()]) {
            if (++enabled_members >= bail_out) {
                return bail_out; // cannot beat the incumbent; abandon
            }
            for (const transition_id other : conflicts_[t.index()]) {
                add(other);
            }
        } else {
            for (const transition_weight& producer :
                 net_->producers(scapegoat(tokens, t))) {
                add(producer.transition);
            }
        }
    }
    return enabled_members;
}

void stubborn_reduction::reduce(const std::int64_t* tokens,
                                const std::vector<transition_id>& enabled,
                                stubborn_workspace& ws,
                                std::vector<transition_id>& out) const
{
    out.clear();
    if (enabled.size() <= 1) {
        out = enabled;
        return;
    }
    const std::size_t transition_count = net_->transition_count();
    if (ws.in_set.size() != transition_count) {
        ws.in_set.assign(transition_count, 0);
        ws.is_enabled.assign(transition_count, 0);
    }
    for (const transition_id t : enabled) {
        ws.is_enabled[t.index()] = 1;
    }

    // Every enabled transition is a candidate seed; keep the seed whose
    // closure contains the fewest enabled transitions (ties to the lowest
    // seed id, since later seeds only win strictly).  A singleton is
    // optimal, so stop the moment one appears.
    std::size_t best_count = enabled.size();
    ws.best.clear();
    for (const transition_id seed : enabled) {
        const std::size_t count = closure(tokens, seed, best_count, ws);
        if (count < best_count) {
            best_count = count;
            ws.best.clear();
            for (const transition_id t : enabled) {
                if (ws.in_set[t.index()]) {
                    ws.best.push_back(t);
                }
            }
        }
        for (const transition_id t : ws.members) {
            ws.in_set[t.index()] = 0;
        }
        if (best_count == 1) {
            break;
        }
    }
    for (const transition_id t : enabled) {
        ws.is_enabled[t.index()] = 0;
    }

    if (ws.best.empty()) {
        out = enabled; // no seed improved on the full set
    } else {
        out = ws.best;
    }
}

} // namespace fcqss::pn
