#include "pn/stubborn.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace fcqss::pn {

namespace {

/// One flush per reduce() call: the seed loop itself stays counter-free.
void flush_reduce_obs(std::size_t enabled, std::size_t reduced, std::size_t trials)
{
    static obs::counter& calls = obs::get_counter("pn.stubborn.reduce_calls");
    static obs::counter& seed_trials = obs::get_counter("pn.stubborn.seed_trials");
    static obs::counter& enabled_sum = obs::get_counter("pn.stubborn.enabled_sum");
    static obs::counter& reduced_sum = obs::get_counter("pn.stubborn.reduced_sum");
    static obs::histogram& closure_size =
        obs::get_histogram("pn.stubborn.closure_size", "transitions");
    calls.add(1);
    seed_trials.add(trials);
    enabled_sum.add(enabled);
    reduced_sum.add(reduced);
    closure_size.record(reduced);
}

} // namespace

std::vector<place_id> growable_places(const petri_net& net)
{
    std::vector<std::int64_t> delta(net.place_count(), 0);
    std::vector<std::uint8_t> growable(net.place_count(), 0);
    for (transition_id t : net.transitions()) {
        for (const place_weight& out : net.outputs(t)) {
            delta[out.place.index()] += out.weight;
        }
        for (const place_weight& in : net.inputs(t)) {
            delta[in.place.index()] -= in.weight;
        }
        for (const place_weight& out : net.outputs(t)) {
            growable[out.place.index()] |= delta[out.place.index()] > 0 ? 1 : 0;
            delta[out.place.index()] = 0;
        }
        for (const place_weight& in : net.inputs(t)) {
            delta[in.place.index()] = 0;
        }
    }
    std::vector<place_id> places;
    for (const place_id p : net.places()) {
        if (growable[p.index()]) {
            places.push_back(p);
        }
    }
    return places;
}

stubborn_reduction::stubborn_reduction(const petri_net& net, stubborn_options options)
    : net_(&net), strength_(options.strength)
{
    conflicts_.resize(net.transition_count());
    for (transition_id t : net.transitions()) {
        std::vector<transition_id>& list = conflicts_[t.index()];
        for (const place_weight& in : net.inputs(t)) {
            for (const transition_weight& c : net.consumers(in.place)) {
                if (c.transition != t) {
                    list.push_back(c.transition);
                }
            }
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    // Visibility is an ltl_x concern only: deadlock-strength reductions stay
    // byte-identical to the pre-visibility behaviour whatever the caller
    // puts in observed_places.
    if (strength_ == reduction_strength::ltl_x && !options.observed_places.empty()) {
        std::vector<std::uint8_t> observed(net.place_count(), 0);
        for (const place_id p : options.observed_places) {
            observed[p.index()] = 1;
        }
        // t is visible iff its *net* token delta on some observed place is
        // non-zero — a self-loop arc pair that cancels out never changes
        // what the query sees.
        std::vector<std::int64_t> delta(net.place_count(), 0);
        std::vector<std::size_t> touched;
        visible_.assign(net.transition_count(), 0);
        for (transition_id t : net.transitions()) {
            touched.clear();
            for (const place_weight& in : net.inputs(t)) {
                if (delta[in.place.index()] == 0) {
                    touched.push_back(in.place.index());
                }
                delta[in.place.index()] -= in.weight;
            }
            for (const place_weight& out : net.outputs(t)) {
                if (delta[out.place.index()] == 0 && out.weight != 0) {
                    touched.push_back(out.place.index());
                }
                delta[out.place.index()] += out.weight;
            }
            for (const std::size_t place : touched) {
                if (observed[place] != 0 && delta[place] != 0) {
                    visible_[t.index()] = 1;
                }
                delta[place] = 0;
            }
            if (visible_[t.index()] != 0) {
                visible_list_.push_back(t);
            }
        }
        if (visible_list_.empty()) {
            visible_.clear(); // nothing visible: keep the O(1) fast path
        }
    }
}

place_id stubborn_reduction::scapegoat(const std::int64_t* tokens, transition_id t) const
{
    place_id best;
    std::size_t best_producers = 0;
    for (const place_weight& in : net_->inputs(t)) {
        if (tokens[in.place.index()] < in.weight) {
            const std::size_t producers = net_->producers(in.place).size();
            if (!best.valid() || producers < best_producers) {
                best = in.place;
                best_producers = producers;
                if (producers == 0) {
                    break; // t can never fire again: the empty closure wins
                }
            }
        }
    }
    assert(best.valid()); // a disabled transition has an insufficient input
    return best;
}

std::size_t stubborn_reduction::closure(const std::int64_t* tokens, transition_id seed,
                                        std::size_t bail_out,
                                        stubborn_workspace& ws) const
{
    ws.stack.clear();
    ws.members.clear();
    const auto add = [&](transition_id t) {
        if (!ws.in_set[t.index()]) {
            ws.in_set[t.index()] = 1;
            ws.members.push_back(t);
            ws.stack.push_back(t);
        }
    };
    add(seed);
    std::size_t enabled_members = 0;
    bool visible_pulled = false;
    while (!ws.stack.empty()) {
        const transition_id t = ws.stack.back();
        ws.stack.pop_back();
        if (ws.is_enabled[t.index()]) {
            if (++enabled_members >= bail_out) {
                return bail_out; // cannot beat the incumbent; abandon
            }
            for (const transition_id other : conflicts_[t.index()]) {
                add(other);
            }
            // Condition V: an enabled visible member drags every visible
            // transition into the set (disabled ones D1-close as usual), so
            // visible firings are only ever stuttered, never reordered.
            if (!visible_pulled && visible(t)) {
                visible_pulled = true;
                for (const transition_id v : visible_list_) {
                    add(v);
                }
            }
        } else {
            for (const transition_weight& producer :
                 net_->producers(scapegoat(tokens, t))) {
                add(producer.transition);
            }
        }
    }
    return enabled_members;
}

void stubborn_reduction::reduce(const std::int64_t* tokens,
                                const std::vector<transition_id>& enabled,
                                stubborn_workspace& ws,
                                std::vector<transition_id>& out) const
{
    out.clear();
    if (enabled.size() <= 1) {
        out = enabled;
        if (obs::stats_enabled()) {
            flush_reduce_obs(enabled.size(), out.size(), 0);
        }
        return;
    }
    const std::size_t transition_count = net_->transition_count();
    if (ws.in_set.size() != transition_count) {
        ws.in_set.assign(transition_count, 0);
        ws.is_enabled.assign(transition_count, 0);
    }
    for (const transition_id t : enabled) {
        ws.is_enabled[t.index()] = 1;
    }

    // Condition I (ltl_x with a non-empty visibility set): when an
    // invisible enabled transition exists, only invisible seeds are tried —
    // the chosen closure then contains its (enabled, invisible) seed, so
    // the reduction never forces visible-only progress it could stutter.
    // When every enabled transition is visible, condition V makes any seed
    // close over all of them, so the seed choice is moot.
    const bool restrict_to_invisible = [&] {
        if (visible_list_.empty()) {
            return false;
        }
        for (const transition_id t : enabled) {
            if (!visible(t)) {
                return true;
            }
        }
        return false;
    }();

    // Every candidate seed's closure competes; keep the seed whose closure
    // contains the fewest enabled transitions (ties to the lowest seed id,
    // since later seeds only win strictly).  A singleton is optimal, so
    // stop the moment one appears.  Because every seed is enabled, every
    // chosen set has an enabled key transition by construction.
    std::size_t best_count = enabled.size();
    std::size_t obs_trials = 0;
    ws.best.clear();
    for (const transition_id seed : enabled) {
        if (restrict_to_invisible && visible(seed)) {
            continue;
        }
        ++obs_trials;
        const std::size_t count = closure(tokens, seed, best_count, ws);
        if (count < best_count) {
            best_count = count;
            ws.best.clear();
            for (const transition_id t : enabled) {
                if (ws.in_set[t.index()]) {
                    ws.best.push_back(t);
                }
            }
        }
        for (const transition_id t : ws.members) {
            ws.in_set[t.index()] = 0;
        }
        if (best_count == 1) {
            break;
        }
    }
    for (const transition_id t : enabled) {
        ws.is_enabled[t.index()] = 0;
    }

    if (ws.best.empty()) {
        out = enabled; // no seed improved on the full set
    } else {
        out = ws.best;
    }
    if (obs::stats_enabled()) {
        flush_reduce_obs(enabled.size(), out.size(), obs_trials);
    }
}

} // namespace fcqss::pn
