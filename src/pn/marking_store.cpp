#include "pn/marking_store.hpp"

#include "exec/chunk_pager.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fcqss::pn {

namespace {

constexpr std::size_t initial_table_capacity = 64;
constexpr std::size_t target_chunk_bytes = std::size_t{1} << 18; // 256 KiB
constexpr std::size_t decode_cache_slots = 64;
constexpr std::size_t decode_chain_limit = 64;

std::uint64_t splitmix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

marking_store::marking_store(std::size_t width)
    : marking_store(width, nullptr)
{
}

marking_store::marking_store(std::size_t width,
                             std::shared_ptr<exec::chunk_pager> pager)
    : width_(width),
      states_per_chunk_(width == 0
                            ? std::size_t{1} << 16
                            : std::max<std::size_t>(1, target_chunk_bytes /
                                                           (width * sizeof(std::int64_t)))),
      pager_(std::move(pager)),
      table_(initial_table_capacity, invalid_state),
      table_mask_(initial_table_capacity - 1)
{
}

marking_store::~marking_store() = default;
marking_store::marking_store(marking_store&&) noexcept = default;
marking_store& marking_store::operator=(marking_store&&) noexcept = default;

std::uint64_t marking_store::component_mix(std::size_t place, std::int64_t count) noexcept
{
    return splitmix64(static_cast<std::uint64_t>(place) * 0x9e3779b97f4a7c15ULL ^
                      static_cast<std::uint64_t>(count));
}

std::uint64_t marking_store::hash_tokens(const std::int64_t* tokens,
                                         std::size_t count) noexcept
{
    std::uint64_t hash = 0x2545f4914f6cdd1dULL ^ count;
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= component_mix(i, tokens[i]);
    }
    return hash;
}

bool marking_store::equal_at(state_id id, const std::int64_t* candidate) const noexcept
{
    return width_ == 0 ||
           std::memcmp(tokens(id).data(), candidate, width_ * sizeof(std::int64_t)) == 0;
}

state_id marking_store::find(const std::int64_t* candidate,
                             std::uint64_t hash) const noexcept
{
    for (std::size_t slot = hash & table_mask_;; slot = (slot + 1) & table_mask_) {
        const state_id id = table_[slot];
        if (id == invalid_state) {
            return invalid_state;
        }
        if (hashes_[id] == hash && equal_at(id, candidate)) {
            return id;
        }
    }
}

void marking_store::allocate_chunk()
{
    if (pager_ != nullptr) {
        // Keep exactly the bump chunk being filled pinned: the frontier of
        // writes (and the densest probe target) stays resident whatever the
        // budget does to colder chunks.
        if (!pager_chunk_ids_.empty()) {
            pager_->unpin(pager_chunk_ids_.back());
        }
        const std::size_t bytes =
            states_per_chunk_ * width_ * sizeof(std::int64_t);
        const auto [id, data] = pager_->allocate(bytes);
        pager_->pin(id);
        pager_chunk_ids_.push_back(id);
        chunk_rows_.push_back(static_cast<std::int64_t*>(data));
    } else {
        owned_chunks_.emplace_back(new std::int64_t[states_per_chunk_ * width_]);
        chunk_rows_.push_back(owned_chunks_.back().get());
    }
}

void marking_store::record_parent(
    state_id id, state_id parent,
    std::span<const std::pair<std::uint32_t, std::int64_t>> deltas)
{
    if (pager_ == nullptr) {
        return;
    }
    if (delta_of_.size() <= id) {
        delta_of_.resize(id + 1);
    }
    delta_ref& ref = delta_of_[id];
    ref.parent = parent;
    ref.begin = static_cast<std::uint32_t>(delta_pool_.size());
    ref.count = static_cast<std::uint32_t>(deltas.size());
    delta_pool_.insert(delta_pool_.end(), deltas.begin(), deltas.end());
}

const std::int64_t* marking_store::cold_row(state_id id)
{
    const std::size_t own = id - adopted_count_;
    const std::size_t chunk = own / states_per_chunk_;
    const std::int64_t* direct =
        chunk_rows_[chunk] + (own % states_per_chunk_) * width_;
    if (pager_chunk_ids_.empty() || pager_->resident(pager_chunk_ids_[chunk])) {
        return direct;
    }
    if (decode_cache_.empty()) {
        decode_cache_.resize(decode_cache_slots);
    }
    decode_slot& slot = decode_cache_[id % decode_cache_slots];
    if (slot.id == id) {
        ++stats_.decode_hits;
        return slot.row.data();
    }
    // Walk the parent chain until something materializable: a row in a
    // resident chunk, an already-decoded cache slot, or — failing both
    // within the depth cap — a forced (faulting) read of the last ancestor.
    state_id chain[decode_chain_limit];
    std::size_t depth = 0;
    state_id cur = id;
    const std::int64_t* base = nullptr;
    bool faulted = false;
    for (;;) {
        const std::size_t cur_own = cur - adopted_count_;
        const std::size_t cur_chunk = cur_own / states_per_chunk_;
        const std::int64_t* cur_direct =
            chunk_rows_[cur_chunk] + (cur_own % states_per_chunk_) * width_;
        if (pager_->resident(pager_chunk_ids_[cur_chunk])) {
            base = cur_direct;
            break;
        }
        const decode_slot& cached = decode_cache_[cur % decode_cache_slots];
        if (cached.id == cur) {
            base = cached.row.data();
            break;
        }
        const bool has_parent = cur < delta_of_.size() &&
                                delta_of_[cur].parent != invalid_state &&
                                delta_of_[cur].parent >= adopted_count_;
        if (!has_parent || depth == decode_chain_limit) {
            base = cur_direct; // refaults the page: the decode miss
            faulted = true;
            break;
        }
        chain[depth++] = cur;
        cur = delta_of_[cur].parent;
    }
    // Replay deltas from the base down to id, materializing into the slot.
    slot.row.assign(base, base + width_);
    for (std::size_t i = depth; i-- > 0;) {
        const delta_ref& ref = delta_of_[chain[i]];
        for (std::uint32_t d = 0; d < ref.count; ++d) {
            const auto& [place, change] = delta_pool_[ref.begin + d];
            slot.row[place] += change;
        }
    }
    slot.id = id;
    if (faulted) {
        ++stats_.decode_misses;
    } else {
        ++stats_.decode_hits;
    }
    return slot.row.data();
}

void marking_store::start_bulk_build(std::size_t count)
{
    assert(size() == 0 && "bulk build requires an empty store");
    grow_bulk_build(count);
}

void marking_store::grow_bulk_build(std::size_t count)
{
    assert(count >= size());
    const std::size_t own = count - adopted_count_;
    const std::size_t chunk_count =
        (own + states_per_chunk_ - 1) / states_per_chunk_;
    chunk_rows_.reserve(chunk_count);
    while (chunk_rows_.size() < chunk_count) {
        allocate_chunk();
    }
    hashes_.resize(count);
}

void marking_store::finish_bulk_build()
{
    std::size_t capacity = initial_table_capacity;
    while (size() * 10 >= capacity * 7) {
        capacity *= 2;
    }
    rebuild_table(capacity);
}

void marking_store::start_adopt(std::size_t count)
{
    assert(size() == 0 && chunk_rows_.empty() &&
           "adoption requires an empty store");
    adopted_count_ = count;
    adopted_rows_.resize(count);
    hashes_.resize(count);
}

void marking_store::finish_adopt(std::vector<std::unique_ptr<marking_store>> backing)
{
    adopted_backing_ = std::move(backing);
    finish_bulk_build();
}

void marking_store::rebuild_table(std::size_t capacity)
{
    ++stats_.resizes;
    table_.assign(capacity, invalid_state);
    table_mask_ = capacity - 1;
    for (state_id id = 0; id < static_cast<state_id>(size()); ++id) {
        std::size_t slot = hashes_[id] & table_mask_;
        while (table_[slot] != invalid_state) {
            slot = (slot + 1) & table_mask_;
        }
        table_[slot] = id;
    }
}

std::size_t marking_store::arena_bytes() const noexcept
{
    std::size_t bytes =
        chunk_rows_.size() * states_per_chunk_ * width_ * sizeof(std::int64_t);
    for (const auto& store : adopted_backing_) {
        bytes += store->arena_bytes();
    }
    return bytes;
}

std::size_t marking_store::memory_bytes() const noexcept
{
    std::size_t bytes =
        chunk_rows_.size() * states_per_chunk_ * width_ * sizeof(std::int64_t) +
        hashes_.size() * sizeof(std::uint64_t) + table_.size() * sizeof(state_id) +
        adopted_rows_.size() * sizeof(const std::int64_t*) +
        delta_pool_.size() * sizeof(delta_pool_[0]) +
        delta_of_.size() * sizeof(delta_of_[0]);
    for (const auto& store : adopted_backing_) {
        bytes += store->memory_bytes();
    }
    return bytes;
}

} // namespace fcqss::pn
