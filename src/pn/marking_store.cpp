#include "pn/marking_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace fcqss::pn {

namespace {

constexpr std::size_t initial_table_capacity = 64;
constexpr std::size_t target_chunk_bytes = std::size_t{1} << 18; // 256 KiB

std::uint64_t splitmix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

marking_store::marking_store(std::size_t width)
    : width_(width),
      states_per_chunk_(width == 0
                            ? std::size_t{1} << 16
                            : std::max<std::size_t>(1, target_chunk_bytes /
                                                           (width * sizeof(std::int64_t)))),
      table_(initial_table_capacity, invalid_state),
      table_mask_(initial_table_capacity - 1)
{
}

std::uint64_t marking_store::component_mix(std::size_t place, std::int64_t count) noexcept
{
    return splitmix64(static_cast<std::uint64_t>(place) * 0x9e3779b97f4a7c15ULL ^
                      static_cast<std::uint64_t>(count));
}

std::uint64_t marking_store::hash_tokens(const std::int64_t* tokens,
                                         std::size_t count) noexcept
{
    std::uint64_t hash = 0x2545f4914f6cdd1dULL ^ count;
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= component_mix(i, tokens[i]);
    }
    return hash;
}

bool marking_store::equal_at(state_id id, const std::int64_t* candidate) const noexcept
{
    return width_ == 0 ||
           std::memcmp(tokens(id).data(), candidate, width_ * sizeof(std::int64_t)) == 0;
}

state_id marking_store::find(const std::int64_t* candidate,
                             std::uint64_t hash) const noexcept
{
    for (std::size_t slot = hash & table_mask_;; slot = (slot + 1) & table_mask_) {
        const state_id id = table_[slot];
        if (id == invalid_state) {
            return invalid_state;
        }
        if (hashes_[id] == hash && equal_at(id, candidate)) {
            return id;
        }
    }
}

void marking_store::start_bulk_build(std::size_t count)
{
    assert(size() == 0 && "bulk build requires an empty store");
    grow_bulk_build(count);
}

void marking_store::grow_bulk_build(std::size_t count)
{
    assert(count >= size());
    const std::size_t chunk_count =
        (count + states_per_chunk_ - 1) / states_per_chunk_;
    chunks_.reserve(chunk_count);
    while (chunks_.size() < chunk_count) {
        chunks_.emplace_back(new std::int64_t[states_per_chunk_ * width_]);
    }
    hashes_.resize(count);
}

void marking_store::finish_bulk_build()
{
    std::size_t capacity = initial_table_capacity;
    while (size() * 10 >= capacity * 7) {
        capacity *= 2;
    }
    rebuild_table(capacity);
}

void marking_store::rebuild_table(std::size_t capacity)
{
    ++stats_.resizes;
    table_.assign(capacity, invalid_state);
    table_mask_ = capacity - 1;
    for (state_id id = 0; id < static_cast<state_id>(size()); ++id) {
        std::size_t slot = hashes_[id] & table_mask_;
        while (table_[slot] != invalid_state) {
            slot = (slot + 1) & table_mask_;
        }
        table_[slot] = id;
    }
}

std::size_t marking_store::memory_bytes() const noexcept
{
    return chunks_.size() * states_per_chunk_ * width_ * sizeof(std::int64_t) +
           hashes_.size() * sizeof(std::uint64_t) + table_.size() * sizeof(state_id);
}

} // namespace fcqss::pn
