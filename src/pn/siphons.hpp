// fcqss — pn/siphons.hpp
// Siphon and trap analysis.  Hack's MG decomposition — which the paper's
// Reduction Algorithm modifies — comes from the same structure theory in
// which Commoner's theorem characterizes liveness of free-choice nets:
// a live FC net has a marked trap inside every siphon.  This module provides
// that classical check as a complement to the QSS diagnostics.
#ifndef FCQSS_PN_SIPHONS_HPP
#define FCQSS_PN_SIPHONS_HPP

#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// A set of places, ascending by id.
using place_set = std::vector<place_id>;

/// True when S is a siphon: preset(S) is a subset of postset(S) — once a
/// siphon empties it stays empty.
[[nodiscard]] bool is_siphon(const petri_net& net, const place_set& places);

/// True when S is a trap: postset(S) is a subset of preset(S) — once marked
/// it stays marked.
[[nodiscard]] bool is_trap(const petri_net& net, const place_set& places);

/// All minimal (non-empty) siphons, by place-set inclusion.  Exponential in
/// the worst case; `max_results` caps the enumeration.
[[nodiscard]] std::vector<place_set> minimal_siphons(const petri_net& net,
                                                     std::size_t max_results = 4096);

/// The largest trap contained in `places` (possibly empty).
[[nodiscard]] place_set maximal_trap_within(const petri_net& net,
                                            const place_set& places);

/// True when `places` contains a token under the net's initial marking.
[[nodiscard]] bool is_marked_set(const petri_net& net, const place_set& places);

/// Commoner's property: every minimal siphon contains an initially marked
/// trap.  For free-choice nets this is equivalent to liveness of (N, mu0)
/// (Commoner's theorem).  Nets with source transitions or source places are
/// outside the theorem's hypotheses; callers should check those separately.
[[nodiscard]] bool has_commoner_property(const petri_net& net);

} // namespace fcqss::pn

#endif // FCQSS_PN_SIPHONS_HPP
