// fcqss — pn/coverability.hpp
// Karp–Miller coverability tree.  Decides boundedness of (N, mu0) exactly —
// the property the paper contrasts with quasi-static schedulability: a net
// with source transitions is unbounded under arbitrary firing, yet may still
// be QSS-schedulable because the *schedule* controls firing.  Tests and
// benches use this to demonstrate that distinction.
#ifndef FCQSS_PN_COVERABILITY_HPP
#define FCQSS_PN_COVERABILITY_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "pn/marking.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Token count in an omega-marking; `omega` represents "unboundedly many".
struct omega_count {
    static constexpr std::int64_t omega_value = std::numeric_limits<std::int64_t>::max();
    std::int64_t value = 0;

    [[nodiscard]] bool is_omega() const noexcept { return value == omega_value; }
    friend bool operator==(const omega_count&, const omega_count&) = default;
};

/// Marking extended with omega components (Karp–Miller generalized marking).
using omega_marking = std::vector<omega_count>;

/// One node of the coverability tree.
struct coverability_node {
    omega_marking state;
    /// Parent index (self for the root) — acceleration walks this chain.
    std::size_t parent = 0;
    /// Transition fired from the parent (invalid for the root).
    transition_id via;
    /// (transition, child index) pairs.
    std::vector<std::pair<transition_id, std::size_t>> children;
};

struct coverability_options {
    std::size_t max_nodes = 200000;
};

struct coverability_tree {
    std::vector<coverability_node> nodes;
    bool truncated = false;

    [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }
};

/// Builds the Karp–Miller tree from the net's initial marking.
[[nodiscard]] coverability_tree
build_coverability_tree(const petri_net& net, const coverability_options& options = {});

/// True when no omega appears in the tree: the net is bounded for arbitrary
/// firing from its initial marking.  (Exact when !tree.truncated.)
[[nodiscard]] bool is_bounded(const coverability_tree& tree);

/// True when the net is k-bounded (every place <= k in every node).
[[nodiscard]] bool is_k_bounded(const coverability_tree& tree, std::int64_t k);

/// Places that acquire omega somewhere in the tree — the places where tokens
/// can accumulate without bound.
[[nodiscard]] std::vector<place_id> unbounded_places(const coverability_tree& tree);

/// True when some node of the tree covers `target` componentwise (with omega
/// covering everything) — the classical coverability query.
[[nodiscard]] bool is_coverable(const coverability_tree& tree, const marking& target);

} // namespace fcqss::pn

#endif // FCQSS_PN_COVERABILITY_HPP
