// fcqss — pn/structure.hpp
// Structural queries: sources/sinks, choices/merges, the Equal Conflict
// Relation (Teruel), and graph views of the net.
#ifndef FCQSS_PN_STRUCTURE_HPP
#define FCQSS_PN_STRUCTURE_HPP

#include <vector>

#include "graph/digraph.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Transitions with empty preset — the paper models environment inputs
/// (e.g. the ATM server's Cell and Tick) as source transitions.
[[nodiscard]] std::vector<transition_id> source_transitions(const petri_net& net);

/// Transitions with empty postset (outputs to the environment).
[[nodiscard]] std::vector<transition_id> sink_transitions(const petri_net& net);

/// Places with empty preset.  Inside a T-reduction these signal finite
/// execution (Fig. 7): nothing can replenish them.
[[nodiscard]] std::vector<place_id> source_places(const petri_net& net);

/// Places with empty postset.
[[nodiscard]] std::vector<place_id> sink_places(const petri_net& net);

/// Choice (conflict) places: |p postset| > 1.  These model data-dependent
/// control (if-then-else, while-do).
[[nodiscard]] std::vector<place_id> choice_places(const petri_net& net);

/// Merge places: |p preset| > 1.
[[nodiscard]] std::vector<place_id> merge_places(const petri_net& net);

/// The Equal Conflict Relation Q (Sec. 2): Q(t, t') == 1 iff
/// Pre[., t] == Pre[., t'] != 0 — identical non-empty input-place vectors,
/// so whenever one is enabled both are.
[[nodiscard]] bool in_equal_conflict(const petri_net& net, transition_id a,
                                     transition_id b);

/// True when t consumes from some choice place (t participates in a
/// conflict).  In a free-choice net this coincides with |ECS(t)| > 1.
[[nodiscard]] bool is_conflict_transition(const petri_net& net, transition_id t);

/// Bipartite digraph view: vertices [0, |P|) are places,
/// [|P|, |P|+|T|) are transitions.
[[nodiscard]] graph::digraph to_digraph(const petri_net& net);

/// True when the net's graph is strongly connected.
[[nodiscard]] bool is_strongly_connected(const petri_net& net);

/// True when the net's graph is weakly connected.
[[nodiscard]] bool is_weakly_connected(const petri_net& net);

/// Summary statistics used by the experiment reports (Sec. 5 quotes
/// "49 transitions and 41 places, of which 11 non-deterministic choices").
struct net_statistics {
    std::size_t places = 0;
    std::size_t transitions = 0;
    std::size_t arcs = 0;
    std::size_t choices = 0;
    std::size_t merges = 0;
    std::size_t source_transitions = 0;
    std::size_t sink_transitions = 0;
};

[[nodiscard]] net_statistics statistics(const petri_net& net);

} // namespace fcqss::pn

#endif // FCQSS_PN_STRUCTURE_HPP
