// fcqss — pn/parallel_explore.hpp
// Sharded parallel BFS over the arena-interned state-space engine.  The
// marking universe is partitioned into hash-prefix shards, each owning a
// private marking_store (arena + open-addressing table) that only one
// worker thread ever mutates; successors that hash to another shard travel
// through per-(chunk, shard) handoff outboxes between barriers, so the hot
// paths need no locks at all.  Exploration is level-synchronous, and ids
// are (re)assigned after every level in sequential discovery order, which
// makes the result *bit-identical* to explore_state_space() — same state
// ids, same CSR edge layout, same truncation behaviour — for every thread
// and shard count.  See the "Determinism" note in parallel_explore.cpp.
#ifndef FCQSS_PN_PARALLEL_EXPLORE_HPP
#define FCQSS_PN_PARALLEL_EXPLORE_HPP

#include <cstddef>
#include <cstdint>

#include "pn/petri_net.hpp"
#include "pn/state_space.hpp"

namespace fcqss::pn {

/// How the parallel engine schedules exploration.
enum class exploration_order {
    /// Level-synchronous: barrier-separated phases per BFS level, ids
    /// assigned as the levels complete.  Scaling is capped by the slowest
    /// shard of each level, but every intermediate structure is already in
    /// canonical order.
    ordered,
    /// Barrier-free: shards run free over per-shard inbox queues with work
    /// stealing (exec/shard_queues.hpp), overlapping expansion and dedup
    /// across levels.  The run produces a stable state *set*; one
    /// deterministic renumber pass (BFS discovery order over the final
    /// graph) then restores canonical ids, so the published result is still
    /// bit-identical to explore_state_space() at any thread/shard count.
    /// When the state budget actually binds (the reachable set minus
    /// token-cap drops exceeds max_states), a free run cannot know which
    /// states the sequential prefix keeps, so the engine detects the budget
    /// crossing, discards the free run and re-runs level-synchronously —
    /// truncation semantics stay exact at the cost of the speedup, which a
    /// binding budget caps anyway.
    unordered,
};

struct parallel_explore_options {
    /// Worker threads; 0 picks the hardware concurrency.  1 still runs the
    /// sharded engine on a single worker (the differential tests rely on
    /// exercising the same code path at every thread count).
    std::size_t threads = 0;
    /// Hash-prefix shard count; rounded up to a power of two.  0 derives
    /// one from the resolved thread count (2x threads, so work stays
    /// balanced when one shard's frontier slice runs hot).
    std::size_t shards = 0;
    /// Budgets, mirroring state_space_options.
    std::size_t max_states = 100000;
    std::int64_t max_tokens_per_place = 1 << 20;
    /// Soft ceiling on resident arena bytes shared by the result and every
    /// per-shard store; 0 = unlimited.  See state_space_options::max_bytes —
    /// the published graph is bit-identical at any spill ratio.
    std::size_t max_bytes = 0;
    /// Per-state partial-order reduction (pn/stubborn.hpp).  The stubborn
    /// subset is a deterministic function of each marking alone, so the
    /// bit-identical-at-any-thread-count guarantee holds for reduced
    /// exploration too: explore_parallel with reduction equals
    /// explore_state_space with the same reduction.
    reduction_kind reduction = reduction_kind::none;
    /// Reduction strength (pn/stubborn.hpp).  Under ltl_x the ignoring
    /// fix-up runs as the same deterministic sequential post-pass both
    /// engines share (detail::enforce_nonignoring), on the already
    /// bit-identical leveled graph — so the guarantee above survives.
    reduction_strength strength = reduction_strength::deadlock;
    /// Places the query observes (the ltl_x visibility set).
    std::vector<place_id> observed_places{};
    /// Scheduling discipline (see exploration_order).  Both orders publish
    /// the same bit-identical result; `unordered` trades the level barrier
    /// for a renumber pass and wins on wide, skewed frontiers.
    exploration_order order = exploration_order::ordered;
};

/// Breadth-first exploration from the net's initial marking on the sharded
/// parallel engine.  Returns the same states, ids, edges and truncation
/// verdict as explore_state_space() regardless of options.threads /
/// options.shards.
[[nodiscard]] state_space explore_parallel(const petri_net& net,
                                           const parallel_explore_options& options = {});

} // namespace fcqss::pn

#endif // FCQSS_PN_PARALLEL_EXPLORE_HPP
