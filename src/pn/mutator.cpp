#include "pn/mutator.hpp"

#include <algorithm>
#include <utility>

#include "base/prng.hpp"
#include "pn/builder.hpp"

namespace fcqss::pn {

const char* to_string(mutation_kind kind)
{
    switch (kind) {
    case mutation_kind::add_arc:
        return "add_arc";
    case mutation_kind::remove_arc:
        return "remove_arc";
    case mutation_kind::redirect_arc:
        return "redirect_arc";
    case mutation_kind::merge_places:
        return "merge_places";
    case mutation_kind::split_place:
        return "split_place";
    case mutation_kind::perturb_weight:
        return "perturb_weight";
    case mutation_kind::perturb_marking:
        return "perturb_marking";
    case mutation_kind::drop_transition:
        return "drop_transition";
    case mutation_kind::duplicate_transition:
        return "duplicate_transition";
    }
    return "?";
}

namespace {

/// Mutable intermediate form: names, tokens, and a flat deduplicated arc
/// list.  Mutations edit the sketch; the finished net is rebuilt through
/// net_builder, so every mutant passes the same validation as any other
/// construction path.
struct sketch_arc {
    bool place_to_transition = true;
    std::uint32_t place = 0;
    std::uint32_t transition = 0;
    std::int64_t weight = 1;
};

struct net_sketch {
    std::string name;
    std::vector<std::string> place_names;
    std::vector<std::int64_t> tokens;
    std::vector<std::string> transition_names;
    std::vector<sketch_arc> arcs;
    int serial = 0; ///< suffix source for fresh node names

    [[nodiscard]] std::size_t find_arc(bool place_to_transition, std::uint32_t place,
                                       std::uint32_t transition) const
    {
        for (std::size_t i = 0; i < arcs.size(); ++i) {
            if (arcs[i].place_to_transition == place_to_transition &&
                arcs[i].place == place && arcs[i].transition == transition) {
                return i;
            }
        }
        return arcs.size();
    }

    [[nodiscard]] bool has_place(const std::string& name) const
    {
        return std::find(place_names.begin(), place_names.end(), name) !=
               place_names.end();
    }

    [[nodiscard]] bool has_transition(const std::string& name) const
    {
        return std::find(transition_names.begin(), transition_names.end(), name) !=
               transition_names.end();
    }

    /// `base` + "_m<serial>", bumping the serial past any collision with a
    /// node already in the sketch (possible when a mutant is mutated again).
    [[nodiscard]] std::string fresh_name(const std::string& base, bool place)
    {
        for (;;) {
            std::string candidate = base + "_m" + std::to_string(serial++);
            if (place ? !has_place(candidate) : !has_transition(candidate)) {
                return candidate;
            }
        }
    }
};

net_sketch to_sketch(const petri_net& net)
{
    net_sketch s;
    s.name = net.name();
    s.place_names.reserve(net.place_count());
    s.tokens.reserve(net.place_count());
    for (const place_id p : net.places()) {
        s.place_names.push_back(net.place_name(p));
        s.tokens.push_back(net.initial_tokens(p));
    }
    s.transition_names.reserve(net.transition_count());
    for (const transition_id t : net.transitions()) {
        s.transition_names.push_back(net.transition_name(t));
        for (const place_weight& in : net.inputs(t)) {
            s.arcs.push_back({true, static_cast<std::uint32_t>(in.place.index()),
                              static_cast<std::uint32_t>(t.index()), in.weight});
        }
        for (const place_weight& out : net.outputs(t)) {
            s.arcs.push_back({false, static_cast<std::uint32_t>(out.place.index()),
                              static_cast<std::uint32_t>(t.index()), out.weight});
        }
    }
    return s;
}

petri_net from_sketch(const net_sketch& s)
{
    net_builder builder(s.name);
    std::vector<place_id> places;
    places.reserve(s.place_names.size());
    for (std::size_t p = 0; p < s.place_names.size(); ++p) {
        places.push_back(builder.add_place(s.place_names[p], s.tokens[p]));
    }
    std::vector<transition_id> transitions;
    transitions.reserve(s.transition_names.size());
    for (const std::string& name : s.transition_names) {
        transitions.push_back(builder.add_transition(name));
    }
    for (const sketch_arc& arc : s.arcs) {
        if (arc.place_to_transition) {
            builder.add_arc(places[arc.place], transitions[arc.transition], arc.weight);
        } else {
            builder.add_arc(transitions[arc.transition], places[arc.place], arc.weight);
        }
    }
    return std::move(builder).build();
}

/// Drops every arc touching place `p`, removes the place, and renumbers the
/// arc list's place indices past it.
void erase_place(net_sketch& s, std::uint32_t p)
{
    std::erase_if(s.arcs, [p](const sketch_arc& arc) { return arc.place == p; });
    for (sketch_arc& arc : s.arcs) {
        if (arc.place > p) {
            --arc.place;
        }
    }
    s.place_names.erase(s.place_names.begin() + p);
    s.tokens.erase(s.tokens.begin() + p);
}

// Each operator returns true when it applied.  Operands are interpreted
// modulo the current counts, so any subset of a plan stays applicable.

bool apply_add_arc(net_sketch& s, const mutation& m)
{
    if (s.place_names.empty() || s.transition_names.empty()) {
        return false;
    }
    const auto p = static_cast<std::uint32_t>(m.a % s.place_names.size());
    const auto t = static_cast<std::uint32_t>((m.b >> 1) % s.transition_names.size());
    const bool place_to_transition = (m.b & 1u) != 0;
    if (s.find_arc(place_to_transition, p, t) != s.arcs.size()) {
        return false;
    }
    s.arcs.push_back({place_to_transition, p, t, std::max<std::int64_t>(1, m.value)});
    return true;
}

bool apply_remove_arc(net_sketch& s, const mutation& m)
{
    if (s.arcs.empty()) {
        return false;
    }
    s.arcs.erase(s.arcs.begin() + static_cast<std::ptrdiff_t>(m.a % s.arcs.size()));
    return true;
}

bool apply_redirect_arc(net_sketch& s, const mutation& m)
{
    if (s.arcs.empty()) {
        return false;
    }
    const std::size_t index = m.a % s.arcs.size();
    sketch_arc moved = s.arcs[index];
    if ((m.b & 1u) != 0) {
        moved.place = static_cast<std::uint32_t>((m.b >> 1) % s.place_names.size());
    } else {
        moved.transition =
            static_cast<std::uint32_t>((m.b >> 1) % s.transition_names.size());
    }
    const std::size_t existing =
        s.find_arc(moved.place_to_transition, moved.place, moved.transition);
    if (existing != s.arcs.size()) {
        return false; // includes redirect-to-self
    }
    s.arcs[index] = moved;
    return true;
}

bool apply_merge_places(net_sketch& s, const mutation& m)
{
    if (s.place_names.size() < 2) {
        return false;
    }
    const auto into = static_cast<std::uint32_t>(m.a % s.place_names.size());
    auto victim = static_cast<std::uint32_t>(m.b % s.place_names.size());
    if (victim == into) {
        victim = (victim + 1) % static_cast<std::uint32_t>(s.place_names.size());
    }
    s.tokens[into] += s.tokens[victim];
    // Re-point the victim's arcs at `into`, folding weight into any arc
    // already connecting the same pair (duplicate arcs are not a thing).
    for (std::size_t i = 0; i < s.arcs.size(); ++i) {
        if (s.arcs[i].place != victim) {
            continue;
        }
        const std::size_t existing =
            s.find_arc(s.arcs[i].place_to_transition, into, s.arcs[i].transition);
        if (existing != s.arcs.size()) {
            s.arcs[existing].weight += s.arcs[i].weight;
            s.arcs[i].weight = 0; // mark for removal below
        } else {
            s.arcs[i].place = into;
        }
    }
    std::erase_if(s.arcs, [](const sketch_arc& arc) { return arc.weight == 0; });
    erase_place(s, victim);
    return true;
}

bool apply_split_place(net_sketch& s, const mutation& m)
{
    if (s.place_names.empty()) {
        return false;
    }
    const auto p = static_cast<std::uint32_t>(m.a % s.place_names.size());
    std::vector<std::size_t> consumer_arcs;
    for (std::size_t i = 0; i < s.arcs.size(); ++i) {
        if (s.arcs[i].place_to_transition && s.arcs[i].place == p) {
            consumer_arcs.push_back(i);
        }
    }
    if (consumer_arcs.size() < 2) {
        return false;
    }
    const auto clone = static_cast<std::uint32_t>(s.place_names.size());
    s.place_names.push_back(s.fresh_name(s.place_names[p], true));
    s.tokens.push_back(s.tokens[p]);
    // Every second consumer moves to the clone; every producer of p also
    // feeds the clone, so the moved consumers stay reachable.
    for (std::size_t i = 1; i < consumer_arcs.size(); i += 2) {
        s.arcs[consumer_arcs[i]].place = clone;
    }
    const std::size_t arc_count = s.arcs.size();
    for (std::size_t i = 0; i < arc_count; ++i) {
        if (!s.arcs[i].place_to_transition && s.arcs[i].place == p) {
            s.arcs.push_back({false, clone, s.arcs[i].transition, s.arcs[i].weight});
        }
    }
    return true;
}

bool apply_perturb_weight(net_sketch& s, const mutation& m)
{
    if (s.arcs.empty()) {
        return false;
    }
    sketch_arc& arc = s.arcs[m.a % s.arcs.size()];
    const std::int64_t weight = std::max<std::int64_t>(1, m.value);
    if (arc.weight == weight) {
        return false;
    }
    arc.weight = weight;
    return true;
}

bool apply_perturb_marking(net_sketch& s, const mutation& m)
{
    if (s.place_names.empty()) {
        return false;
    }
    std::int64_t& tokens = s.tokens[m.a % s.place_names.size()];
    const std::int64_t value = std::max<std::int64_t>(0, m.value);
    if (tokens == value) {
        return false;
    }
    tokens = value;
    return true;
}

bool apply_drop_transition(net_sketch& s, const mutation& m)
{
    if (s.transition_names.size() < 2) {
        return false; // a mutant keeps at least one transition
    }
    const auto t = static_cast<std::uint32_t>(m.a % s.transition_names.size());
    std::erase_if(s.arcs, [t](const sketch_arc& arc) { return arc.transition == t; });
    for (sketch_arc& arc : s.arcs) {
        if (arc.transition > t) {
            --arc.transition;
        }
    }
    s.transition_names.erase(s.transition_names.begin() + t);
    return true;
}

bool apply_duplicate_transition(net_sketch& s, const mutation& m)
{
    if (s.transition_names.empty()) {
        return false;
    }
    const auto t = static_cast<std::uint32_t>(m.a % s.transition_names.size());
    const auto clone = static_cast<std::uint32_t>(s.transition_names.size());
    s.transition_names.push_back(s.fresh_name(s.transition_names[t], false));
    const std::size_t arc_count = s.arcs.size();
    for (std::size_t i = 0; i < arc_count; ++i) {
        if (s.arcs[i].transition == t) {
            s.arcs.push_back(
                {s.arcs[i].place_to_transition, s.arcs[i].place, clone,
                 s.arcs[i].weight});
        }
    }
    return true;
}

bool apply_one(net_sketch& s, const mutation& m)
{
    switch (m.kind) {
    case mutation_kind::add_arc:
        return apply_add_arc(s, m);
    case mutation_kind::remove_arc:
        return apply_remove_arc(s, m);
    case mutation_kind::redirect_arc:
        return apply_redirect_arc(s, m);
    case mutation_kind::merge_places:
        return apply_merge_places(s, m);
    case mutation_kind::split_place:
        return apply_split_place(s, m);
    case mutation_kind::perturb_weight:
        return apply_perturb_weight(s, m);
    case mutation_kind::perturb_marking:
        return apply_perturb_marking(s, m);
    case mutation_kind::drop_transition:
        return apply_drop_transition(s, m);
    case mutation_kind::duplicate_transition:
        return apply_duplicate_transition(s, m);
    }
    return false;
}

} // namespace

std::vector<mutation> plan_mutations(const petri_net& base, std::uint64_t seed,
                                     const mutation_options& options)
{
    // The base net's size folds into the stream so structurally different
    // nets draw different plans from the same seed; for a fixed base the
    // plan is a pure function of the seed.
    prng rng(seed ^ (base.place_count() * 0x9e3779b97f4a7c15ULL) ^
             (base.transition_count() << 17));
    std::vector<mutation> plan;
    plan.reserve(static_cast<std::size_t>(std::max(0, options.count)));
    for (int i = 0; i < options.count; ++i) {
        mutation m;
        m.kind = static_cast<mutation_kind>(rng.below(mutation_kind_count));
        m.a = static_cast<std::uint32_t>(rng.next());
        m.b = static_cast<std::uint32_t>(rng.next());
        switch (m.kind) {
        case mutation_kind::add_arc:
        case mutation_kind::perturb_weight:
            m.value = rng.range(1, std::max<std::int64_t>(1, options.max_weight));
            break;
        case mutation_kind::perturb_marking:
            m.value = rng.range(0, std::max<std::int64_t>(0, options.max_tokens));
            break;
        default:
            m.value = 1;
            break;
        }
        plan.push_back(m);
    }
    return plan;
}

mutation_result apply_mutations(const petri_net& base, const std::vector<mutation>& plan)
{
    net_sketch s = to_sketch(base);
    mutation_result result;
    result.applied.reserve(plan.size());
    for (const mutation& m : plan) {
        if (apply_one(s, m)) {
            result.applied.push_back(m);
        }
    }
    result.net = from_sketch(s);
    return result;
}

mutation_result mutate(const petri_net& base, std::uint64_t seed,
                       const mutation_options& options)
{
    return apply_mutations(base, plan_mutations(base, seed, options));
}

} // namespace fcqss::pn
