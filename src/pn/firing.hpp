// fcqss — pn/firing.hpp
// The token game: enabling and firing of transitions (Sec. 2).
#ifndef FCQSS_PN_FIRING_HPP
#define FCQSS_PN_FIRING_HPP

#include <optional>
#include <vector>

#include "pn/marking.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// A firing sequence sigma: transitions in firing order.
using firing_sequence = std::vector<transition_id>;

/// True when every input place p of t holds at least F(p, t) tokens.
/// Source transitions (empty preset) are always enabled.
[[nodiscard]] bool is_enabled(const petri_net& net, const marking& m, transition_id t);

/// Fires t: removes F(p, t) tokens from each input place, adds F(t, p) to
/// each output place.  Throws domain_error when t is not enabled.
void fire(const petri_net& net, marking& m, transition_id t);

/// Fires t without re-checking enabledness.  Precondition:
/// is_enabled(net, m, t); token counts go negative (silently) otherwise.
/// This is the fast path fire/try_fire delegate to after their one check.
void fire_unchecked(const petri_net& net, marking& m, transition_id t);

/// Fires t if enabled; returns whether it fired.  Enabledness is checked
/// exactly once.
bool try_fire(const petri_net& net, marking& m, transition_id t);

/// All transitions enabled at m, in ascending id order.
[[nodiscard]] std::vector<transition_id> enabled_transitions(const petri_net& net,
                                                             const marking& m);

/// True when no transition is enabled at m (the marking is dead).
[[nodiscard]] bool is_deadlocked(const petri_net& net, const marking& m);

/// Fires the whole sequence from m; returns the reached marking, or nullopt
/// when some transition in the sequence is not enabled at its turn.
[[nodiscard]] std::optional<marking> fire_sequence(const petri_net& net, marking m,
                                                   const firing_sequence& sequence);

/// The firing-count vector f(sigma): entry t counts occurrences of t.
[[nodiscard]] std::vector<std::int64_t>
firing_count_vector(const petri_net& net, const firing_sequence& sequence);

/// True when firing `sequence` from the net's initial marking succeeds and
/// returns to the initial marking — i.e. the sequence is a *finite complete
/// cycle* in the paper's sense.
[[nodiscard]] bool is_finite_complete_cycle(const petri_net& net,
                                            const firing_sequence& sequence);

/// Renders a sequence as "t1 t2 t4" using net names.
[[nodiscard]] std::string to_string(const petri_net& net,
                                    const firing_sequence& sequence);

} // namespace fcqss::pn

#endif // FCQSS_PN_FIRING_HPP
