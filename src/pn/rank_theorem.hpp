// fcqss — pn/rank_theorem.hpp
// The Rank Theorem of free-choice structure theory (Desel/Esparza; the same
// theory Hack's MG decomposition and Teruel's Equal Conflict work — both
// cited by the paper — belong to): a free-choice net is WELL-FORMED (some
// marking makes it live and bounded) iff
//   (1) it has a strictly positive T-invariant,
//   (2) it has a strictly positive P-invariant, and
//   (3) rank(C) = |clusters| - 1,
// where a cluster is the smallest set closed under "place p and transition t
// belong together when p is an input of t".  Well-formedness applies to
// strongly connected autonomous nets; the QSS algorithm deliberately handles
// the complementary reactive class (nets with sources/sinks), so this module
// rounds out the structure-theory toolbox for the cases QSS excludes.
#ifndef FCQSS_PN_RANK_THEOREM_HPP
#define FCQSS_PN_RANK_THEOREM_HPP

#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// A cluster: places and transitions grouped by shared input arcs.
struct cluster {
    std::vector<place_id> places;
    std::vector<transition_id> transitions;
};

/// The cluster partition of the net.
[[nodiscard]] std::vector<cluster> clusters_of(const petri_net& net);

/// Result of the rank-theorem evaluation.
struct rank_check {
    bool has_positive_t_invariant = false;
    bool has_positive_p_invariant = false;
    std::size_t rank = 0;
    std::size_t cluster_count = 0;
    bool rank_condition = false;

    /// The theorem's verdict (meaningful for strongly connected FC nets).
    [[nodiscard]] bool well_formed() const noexcept
    {
        return has_positive_t_invariant && has_positive_p_invariant && rank_condition;
    }
};

/// Evaluates the three conditions.  Throws domain_error when the net is not
/// free-choice (the theorem does not apply).
[[nodiscard]] rank_check check_rank_theorem(const petri_net& net);

} // namespace fcqss::pn

#endif // FCQSS_PN_RANK_THEOREM_HPP
