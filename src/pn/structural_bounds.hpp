// fcqss — pn/structural_bounds.hpp
// Structural (marking-independent-execution) place bounds from P-invariants:
// if y is a P-invariant with y[p] > 0, then for every reachable marking
// m(p) <= (y . m0) / y[p].  These bounds hold for ARBITRARY firing — they
// complement the schedule-relative bounds of qss::schedule_buffer_bounds
// and witness the conservative-component structure of a net.
#ifndef FCQSS_PN_STRUCTURAL_BOUNDS_HPP
#define FCQSS_PN_STRUCTURAL_BOUNDS_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Per-place structural bound, or nullopt when no P-invariant covers the
/// place (the place is not structurally bounded; it may still be bounded
/// under a schedule).
[[nodiscard]] std::vector<std::optional<std::int64_t>>
structural_place_bounds(const petri_net& net);

/// True when every place has a structural bound (the net is structurally
/// bounded = conservative-covered), regardless of how transitions fire.
[[nodiscard]] bool is_structurally_bounded(const petri_net& net);

} // namespace fcqss::pn

#endif // FCQSS_PN_STRUCTURAL_BOUNDS_HPP
