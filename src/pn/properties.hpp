// fcqss — pn/properties.hpp
// Behavioural property checks from Sec. 2: boundedness, safeness,
// deadlock-freedom, liveness.  All are decided on the explicit reachability
// graph (exact for bounded nets) or the coverability tree.
#ifndef FCQSS_PN_PROPERTIES_HPP
#define FCQSS_PN_PROPERTIES_HPP

#include <optional>
#include <string>

#include "pn/reachability.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Tri-state verdict: properties checked on a truncated exploration cannot
/// always be decided.
enum class verdict {
    yes,
    no,
    unknown,
};

[[nodiscard]] std::string to_string(verdict v);

/// k-boundedness over the reachable markings (Sec. 2).  Exact via Karp–Miller.
[[nodiscard]] verdict check_k_bounded(const petri_net& net, std::int64_t k);

/// k-boundedness decided on the explicit reachability graph instead of the
/// coverability tree (useful when the caller already pays for exploration,
/// or wants the engines' thread/reduction knobs).  An over-k witness is
/// definite even on a truncated exploration; "yes" needs the full graph.
/// With a stubborn reduction the strength is upgraded to ltl_x and each
/// *growable* place is queried in its own exploration observing just that
/// place (the weakest exact visibility set); non-growable places are
/// settled by a root-marking scan.  Definite verdicts match the
/// unreduced check exactly; only which truncated runs come back unknown
/// can differ (see the README reduction-guarantees table).
[[nodiscard]] verdict check_k_bounded_explicit(const petri_net& net, std::int64_t k,
                                              const reachability_options& options = {});

/// Safeness = 1-boundedness.  Lin's method (Sec. 1) assumes this; the paper's
/// point is that QSS does not.
[[nodiscard]] verdict check_safe(const petri_net& net);

/// Deadlock-freedom: from every reachable marking some transition can fire.
[[nodiscard]] verdict check_deadlock_free(const petri_net& net,
                                          const reachability_options& options = {});

/// Liveness: for every reachable marking and every transition t, some
/// continuation re-enables t.  Decided on the reachability graph via SCC
/// analysis (only meaningful for bounded nets; returns unknown otherwise).
[[nodiscard]] verdict check_live(const petri_net& net,
                                 const reachability_options& options = {});

} // namespace fcqss::pn

#endif // FCQSS_PN_PROPERTIES_HPP
