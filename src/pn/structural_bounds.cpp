#include "pn/structural_bounds.hpp"

#include "pn/invariants.hpp"

namespace fcqss::pn {

std::vector<std::optional<std::int64_t>> structural_place_bounds(const petri_net& net)
{
    std::vector<std::optional<std::int64_t>> bounds(net.place_count());
    const auto invariants = p_invariants(net);
    const auto& m0 = net.initial_marking_vector();
    for (const linalg::int_vector& y : invariants) {
        const std::int64_t weighted_total = weighted_token_sum(y, m0);
        for (std::size_t p = 0; p < net.place_count(); ++p) {
            if (y[p] <= 0) {
                continue;
            }
            const std::int64_t bound = weighted_total / y[p];
            if (!bounds[p].has_value() || bound < *bounds[p]) {
                bounds[p] = bound;
            }
        }
    }
    return bounds;
}

bool is_structurally_bounded(const petri_net& net)
{
    for (const auto& bound : structural_place_bounds(net)) {
        if (!bound.has_value()) {
            return false;
        }
    }
    return true;
}

} // namespace fcqss::pn
