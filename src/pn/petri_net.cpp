#include "pn/petri_net.hpp"

#include "base/error.hpp"

namespace fcqss::pn {

namespace {

void check_place(const petri_net& net, place_id p)
{
    if (!p.valid() || p.index() >= net.place_count()) {
        throw model_error("petri_net: place id out of range");
    }
}

void check_transition(const petri_net& net, transition_id t)
{
    if (!t.valid() || t.index() >= net.transition_count()) {
        throw model_error("petri_net: transition id out of range");
    }
}

} // namespace

const std::string& petri_net::place_name(place_id p) const
{
    check_place(*this, p);
    return place_names_[p.index()];
}

const std::string& petri_net::transition_name(transition_id t) const
{
    check_transition(*this, t);
    return transition_names_[t.index()];
}

place_id petri_net::find_place(const std::string& name) const
{
    const auto it = place_by_name_.find(name);
    return it == place_by_name_.end() ? place_id{} : it->second;
}

transition_id petri_net::find_transition(const std::string& name) const
{
    const auto it = transition_by_name_.find(name);
    return it == transition_by_name_.end() ? transition_id{} : it->second;
}

const std::vector<place_weight>& petri_net::inputs(transition_id t) const
{
    check_transition(*this, t);
    return transition_inputs_[t.index()];
}

const std::vector<place_weight>& petri_net::outputs(transition_id t) const
{
    check_transition(*this, t);
    return transition_outputs_[t.index()];
}

const std::vector<transition_weight>& petri_net::consumers(place_id p) const
{
    check_place(*this, p);
    return place_consumers_[p.index()];
}

const std::vector<transition_weight>& petri_net::producers(place_id p) const
{
    check_place(*this, p);
    return place_producers_[p.index()];
}

std::int64_t petri_net::arc_weight(place_id p, transition_id t) const
{
    check_place(*this, p);
    check_transition(*this, t);
    for (const place_weight& in : transition_inputs_[t.index()]) {
        if (in.place == p) {
            return in.weight;
        }
    }
    return 0;
}

std::int64_t petri_net::arc_weight(transition_id t, place_id p) const
{
    check_place(*this, p);
    check_transition(*this, t);
    for (const place_weight& out : transition_outputs_[t.index()]) {
        if (out.place == p) {
            return out.weight;
        }
    }
    return 0;
}

std::int64_t petri_net::initial_tokens(place_id p) const
{
    check_place(*this, p);
    return initial_marking_[p.index()];
}

} // namespace fcqss::pn
