#include "pn/marking.hpp"

#include <numeric>

#include "base/error.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

marking::marking(std::vector<std::int64_t> tokens) : tokens_(std::move(tokens))
{
    for (std::int64_t count : tokens_) {
        if (count < 0) {
            throw model_error("marking: negative token count");
        }
    }
}

std::int64_t marking::tokens(place_id p) const
{
    if (!p.valid() || p.index() >= tokens_.size()) {
        throw model_error("marking::tokens: place id out of range");
    }
    return tokens_[p.index()];
}

void marking::set_tokens(place_id p, std::int64_t count)
{
    if (!p.valid() || p.index() >= tokens_.size()) {
        throw model_error("marking::set_tokens: place id out of range");
    }
    if (count < 0) {
        throw model_error("marking::set_tokens: negative token count");
    }
    tokens_[p.index()] = count;
}

void marking::add_tokens(place_id p, std::int64_t delta)
{
    if (!p.valid() || p.index() >= tokens_.size()) {
        throw model_error("marking::add_tokens: place id out of range");
    }
    const std::int64_t next = tokens_[p.index()] + delta;
    if (next < 0) {
        throw model_error("marking::add_tokens: token count would become negative");
    }
    tokens_[p.index()] = next;
}

std::int64_t marking::total() const noexcept
{
    return std::accumulate(tokens_.begin(), tokens_.end(), std::int64_t{0});
}

bool marking::covers(const marking& other) const
{
    if (size() != other.size()) {
        throw model_error("marking::covers: size mismatch");
    }
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        if (tokens_[i] < other.tokens_[i]) {
            return false;
        }
    }
    return true;
}

std::string marking::to_string() const
{
    std::string text = "(";
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        if (i != 0) {
            text += ", ";
        }
        text += std::to_string(tokens_[i]);
    }
    text += ")";
    return text;
}

std::string marking::to_string(const petri_net& net) const
{
    std::string text = "{";
    bool first = true;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        if (tokens_[i] == 0) {
            continue;
        }
        if (!first) {
            text += ", ";
        }
        first = false;
        text += net.place_name(place_id{static_cast<std::int32_t>(i)});
        text += ": ";
        text += std::to_string(tokens_[i]);
    }
    text += "}";
    return text;
}

marking initial_marking(const petri_net& net)
{
    return marking(net.initial_marking_vector());
}

std::size_t marking_hash::operator()(const marking& m) const noexcept
{
    // FNV-1a over the token counts.
    std::size_t hash = 14695981039346656037ULL;
    for (std::int64_t count : m.vector()) {
        auto bits = static_cast<std::uint64_t>(count);
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (bits >> (byte * 8)) & 0xffU;
            hash *= 1099511628211ULL;
        }
    }
    return hash;
}

} // namespace fcqss::pn
