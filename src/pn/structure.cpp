#include "pn/structure.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "graph/traversal.hpp"

namespace fcqss::pn {

std::vector<transition_id> source_transitions(const petri_net& net)
{
    std::vector<transition_id> result;
    for (transition_id t : net.transitions()) {
        if (net.inputs(t).empty()) {
            result.push_back(t);
        }
    }
    return result;
}

std::vector<transition_id> sink_transitions(const petri_net& net)
{
    std::vector<transition_id> result;
    for (transition_id t : net.transitions()) {
        if (net.outputs(t).empty()) {
            result.push_back(t);
        }
    }
    return result;
}

std::vector<place_id> source_places(const petri_net& net)
{
    std::vector<place_id> result;
    for (place_id p : net.places()) {
        if (net.producers(p).empty()) {
            result.push_back(p);
        }
    }
    return result;
}

std::vector<place_id> sink_places(const petri_net& net)
{
    std::vector<place_id> result;
    for (place_id p : net.places()) {
        if (net.consumers(p).empty()) {
            result.push_back(p);
        }
    }
    return result;
}

std::vector<place_id> choice_places(const petri_net& net)
{
    std::vector<place_id> result;
    for (place_id p : net.places()) {
        if (net.consumers(p).size() > 1) {
            result.push_back(p);
        }
    }
    return result;
}

std::vector<place_id> merge_places(const petri_net& net)
{
    std::vector<place_id> result;
    for (place_id p : net.places()) {
        if (net.producers(p).size() > 1) {
            result.push_back(p);
        }
    }
    return result;
}

bool in_equal_conflict(const petri_net& net, transition_id a, transition_id b)
{
    const std::vector<place_weight>& in_a = net.inputs(a);
    const std::vector<place_weight>& in_b = net.inputs(b);
    if (in_a.empty() || in_b.empty() || in_a.size() != in_b.size()) {
        return false;
    }
    // Compare Pre vectors as sorted (place, weight) lists.
    auto sorted = [](std::vector<place_weight> v) {
        std::sort(v.begin(), v.end(), [](const place_weight& x, const place_weight& y) {
            return x.place < y.place;
        });
        return v;
    };
    return sorted(in_a) == sorted(in_b);
}

bool is_conflict_transition(const petri_net& net, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        if (net.consumers(in.place).size() > 1) {
            return true;
        }
    }
    return false;
}

graph::digraph to_digraph(const petri_net& net)
{
    const std::size_t place_count = net.place_count();
    graph::digraph g(place_count + net.transition_count());
    for (transition_id t : net.transitions()) {
        const std::size_t tv = place_count + t.index();
        for (const place_weight& in : net.inputs(t)) {
            g.add_edge(in.place.index(), tv);
        }
        for (const place_weight& out : net.outputs(t)) {
            g.add_edge(tv, out.place.index());
        }
    }
    return g;
}

bool is_strongly_connected(const petri_net& net)
{
    return graph::is_strongly_connected(to_digraph(net));
}

bool is_weakly_connected(const petri_net& net)
{
    return graph::is_weakly_connected(to_digraph(net));
}

net_statistics statistics(const petri_net& net)
{
    net_statistics stats;
    stats.places = net.place_count();
    stats.transitions = net.transition_count();
    stats.arcs = net.arc_count();
    stats.choices = choice_places(net).size();
    stats.merges = merge_places(net).size();
    stats.source_transitions = source_transitions(net).size();
    stats.sink_transitions = sink_transitions(net).size();
    return stats;
}

} // namespace fcqss::pn
