// fcqss — pn/builder.hpp
// Incremental construction of petri_net instances with validation at build().
#ifndef FCQSS_PN_BUILDER_HPP
#define FCQSS_PN_BUILDER_HPP

#include <cstdint>
#include <string>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Builds a petri_net.  Node names must be unique per kind; arcs must have
/// positive weight; duplicate arcs between the same pair are rejected (use a
/// single arc with the combined weight instead).
///
/// Typical use:
///   net_builder b("fig3a");
///   auto p1 = b.add_place("p1");
///   auto t1 = b.add_transition("t1");
///   b.add_arc(t1, p1);
///   petri_net net = std::move(b).build();
class net_builder {
public:
    explicit net_builder(std::string net_name);

    /// Adds a place with `initial_tokens` tokens in the initial marking.
    place_id add_place(const std::string& name, std::int64_t initial_tokens = 0);

    transition_id add_transition(const std::string& name);

    /// Adds the arc place -> transition with weight F(p, t).
    void add_arc(place_id from, transition_id to, std::int64_t weight = 1);
    /// Adds the arc transition -> place with weight F(t, p).
    void add_arc(transition_id from, place_id to, std::int64_t weight = 1);

    /// Changes the initial marking of an already-added place.
    void set_initial_tokens(place_id p, std::int64_t tokens);

    /// Validates and returns the finished net.  The builder is consumed.
    [[nodiscard]] petri_net build() &&;

    /// Validates and returns the finished net, leaving the builder reusable
    /// for further extension (used by the random-net generators in tests).
    [[nodiscard]] petri_net build_copy() const;

private:
    petri_net net_;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_BUILDER_HPP
