// fcqss — pn/net_class.hpp
// Detection of the net subclasses from Sec. 2: Marked Graph, Conflict-Free
// net, Free-Choice net, and Teruel's Equal Conflict net.  The QSS algorithm
// accepts (extended) free-choice nets whose conflicts are equal conflicts.
#ifndef FCQSS_PN_NET_CLASS_HPP
#define FCQSS_PN_NET_CLASS_HPP

#include <string>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Marked Graph: every place has at most one producer and one consumer.
/// Models concurrency and synchronization but no conflict; SDF graphs map
/// onto marked graphs (Sec. 2).
[[nodiscard]] bool is_marked_graph(const petri_net& net);

/// Conflict-Free net: every place has at most one consumer.  T-reductions
/// are conflict-free by construction.
[[nodiscard]] bool is_conflict_free(const petri_net& net);

/// Free-Choice net (the paper's definition): every arc from a place is
/// either the unique outgoing arc of that place or the unique incoming arc
/// of its target transition.  Equivalently, if |p postset| > 1 then every
/// consumer of p has preset {p}.
[[nodiscard]] bool is_free_choice(const petri_net& net);

/// Equal-Conflict discipline on top of free choice: all consumers of a
/// choice place have identical Pre vectors (same single place, same weight),
/// so enabling one enables all — "the outcome of a choice depends on the
/// value rather than on the arrival time of a token".
[[nodiscard]] bool is_equal_conflict_free_choice(const petri_net& net);

/// Explains the first free-choice violation found, or "" when free-choice.
/// Used to produce actionable diagnostics for rejected inputs.
[[nodiscard]] std::string describe_free_choice_violation(const petri_net& net);

/// Coarsest-to-finest classification for reporting.
enum class net_class {
    marked_graph,
    conflict_free,
    free_choice,
    general,
};

[[nodiscard]] net_class classify(const petri_net& net);

[[nodiscard]] std::string to_string(net_class c);

} // namespace fcqss::pn

#endif // FCQSS_PN_NET_CLASS_HPP
