#include "pn/net_class.hpp"

#include "pn/structure.hpp"

namespace fcqss::pn {

bool is_marked_graph(const petri_net& net)
{
    for (place_id p : net.places()) {
        if (net.producers(p).size() > 1 || net.consumers(p).size() > 1) {
            return false;
        }
    }
    return true;
}

bool is_conflict_free(const petri_net& net)
{
    for (place_id p : net.places()) {
        if (net.consumers(p).size() > 1) {
            return false;
        }
    }
    return true;
}

bool is_free_choice(const petri_net& net)
{
    for (place_id p : net.places()) {
        const auto& consumers = net.consumers(p);
        if (consumers.size() <= 1) {
            continue;
        }
        for (const transition_weight& consumer : consumers) {
            if (net.inputs(consumer.transition).size() != 1) {
                return false;
            }
        }
    }
    return true;
}

bool is_equal_conflict_free_choice(const petri_net& net)
{
    if (!is_free_choice(net)) {
        return false;
    }
    for (place_id p : net.places()) {
        const auto& consumers = net.consumers(p);
        if (consumers.size() <= 1) {
            continue;
        }
        const std::int64_t first_weight = consumers.front().weight;
        for (const transition_weight& consumer : consumers) {
            if (consumer.weight != first_weight) {
                return false;
            }
        }
    }
    return true;
}

std::string describe_free_choice_violation(const petri_net& net)
{
    for (place_id p : net.places()) {
        const auto& consumers = net.consumers(p);
        if (consumers.size() <= 1) {
            continue;
        }
        for (const transition_weight& consumer : consumers) {
            if (net.inputs(consumer.transition).size() != 1) {
                return "place '" + net.place_name(p) +
                       "' is a choice but its consumer '" +
                       net.transition_name(consumer.transition) +
                       "' has additional input places (free-choice requires every "
                       "successor of a choice to have exactly one predecessor place)";
            }
        }
    }
    return "";
}

net_class classify(const petri_net& net)
{
    if (is_marked_graph(net)) {
        return net_class::marked_graph;
    }
    if (is_conflict_free(net)) {
        return net_class::conflict_free;
    }
    if (is_free_choice(net)) {
        return net_class::free_choice;
    }
    return net_class::general;
}

std::string to_string(net_class c)
{
    switch (c) {
    case net_class::marked_graph: return "marked graph";
    case net_class::conflict_free: return "conflict-free net";
    case net_class::free_choice: return "free-choice net";
    case net_class::general: return "general Petri net";
    }
    return "unknown";
}

} // namespace fcqss::pn
