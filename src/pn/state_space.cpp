#include "pn/state_space.hpp"

#include <algorithm>
#include <optional>

namespace fcqss::pn {

namespace detail {

bool enabled_in(const petri_net& net, const std::int64_t* tokens, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        if (tokens[in.place.index()] < in.weight) {
            return false;
        }
    }
    return true;
}

std::vector<std::vector<transition_id>> affected_transitions(const petri_net& net)
{
    std::vector<std::vector<transition_id>> affected(net.transition_count());
    for (transition_id t : net.transitions()) {
        std::vector<transition_id>& list = affected[t.index()];
        for (const place_weight& in : net.inputs(t)) {
            for (const transition_weight& c : net.consumers(in.place)) {
                list.push_back(c.transition);
            }
        }
        for (const place_weight& out : net.outputs(t)) {
            for (const transition_weight& c : net.consumers(out.place)) {
                list.push_back(c.transition);
            }
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return affected;
}

void merge_enabled(const petri_net& net,
                   const std::vector<transition_id>& parent_enabled,
                   const std::vector<transition_id>& recheck,
                   const std::int64_t* tokens, std::vector<transition_id>& out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < parent_enabled.size() || j < recheck.size()) {
        if (j == recheck.size() ||
            (i < parent_enabled.size() && parent_enabled[i] < recheck[j])) {
            out.push_back(parent_enabled[i++]);
        } else {
            if (i < parent_enabled.size() && parent_enabled[i] == recheck[j]) {
                ++i;
            }
            const transition_id candidate = recheck[j++];
            if (enabled_in(net, tokens, candidate)) {
                out.push_back(candidate);
            }
        }
    }
}

} // namespace detail

marking state_space::marking_of(state_id s) const
{
    const std::span<const std::int64_t> span = store_.tokens(s);
    return marking(std::vector<std::int64_t>(span.begin(), span.end()));
}

state_space explore_state_space(const petri_net& net, const state_space_options& options)
{
    const std::size_t width = net.place_count();
    const std::int64_t cap = options.max_tokens_per_place;

    state_space result;
    result.store_ = marking_store(width);

    const std::vector<std::vector<transition_id>> affected =
        detail::affected_transitions(net);

    const std::vector<std::int64_t>& m0 = net.initial_marking_vector();
    const std::uint64_t root_hash = marking_store::hash_tokens(m0.data(), width);
    result.store_.intern(m0.data(), root_hash);

    // Every interned state except possibly the root obeys the token cap in
    // every place (successors are rejected otherwise), so per-edge cap
    // checking only needs the places the fired transition raised.  The root
    // is taken as given; if it already exceeds the cap somewhere, its own
    // expansion scans the full vector instead.
    bool root_over_cap = false;
    for (std::int64_t count : m0) {
        if (count > cap) {
            root_over_cap = true;
            break;
        }
    }

    // Per-state enabled sets (ascending by transition id), kept only until
    // the state is expanded.  The root's is the one full scan.
    std::vector<std::vector<transition_id>> enabled_of(1);
    for (transition_id t : net.transitions()) {
        if (detail::enabled_in(net, m0.data(), t)) {
            enabled_of[0].push_back(t);
        }
    }

    std::vector<std::int64_t> scratch(width);
    std::vector<transition_id> merged;
    result.edge_offsets_.push_back(0);

    // Optional stubborn-set reduction: only a deadlock-preserving subset of
    // each state's enabled set is expanded.  The *full* enabled sets are
    // still maintained incrementally — successors derive theirs from the
    // parent's full set, reduced or not.
    std::optional<stubborn_reduction> stubborn;
    if (options.reduction == reduction_kind::stubborn) {
        stubborn.emplace(net);
    }
    stubborn_workspace stubborn_ws;
    std::vector<transition_id> reduced;

    // Discovery order is expansion order: states get ascending ids and are
    // expanded in id order, which is exactly the reference BFS.
    for (state_id s = 0; s < static_cast<state_id>(result.store_.size()); ++s) {
        const std::span<const std::int64_t> current = result.store_.tokens(s);
        std::copy(current.begin(), current.end(), scratch.begin());
        const std::uint64_t current_hash = result.store_.stored_hash(s);
        const std::vector<transition_id> enabled = std::move(enabled_of[s]);
        const bool full_cap_scan = root_over_cap && s == 0;

        const std::vector<transition_id>* expand = &enabled;
        if (stubborn) {
            stubborn->reduce(scratch.data(), enabled, stubborn_ws, reduced);
            expand = &reduced;
        }
        for (transition_id t : *expand) {
            // Fire t into scratch, updating the hash per touched place.
            std::uint64_t next_hash = current_hash;
            bool over_cap = false;
            for (const place_weight& in : net.inputs(t)) {
                std::int64_t& count = scratch[in.place.index()];
                next_hash ^= marking_store::component_mix(in.place.index(), count);
                count -= in.weight;
                next_hash ^= marking_store::component_mix(in.place.index(), count);
            }
            for (const place_weight& out : net.outputs(t)) {
                std::int64_t& count = scratch[out.place.index()];
                next_hash ^= marking_store::component_mix(out.place.index(), count);
                count += out.weight;
                next_hash ^= marking_store::component_mix(out.place.index(), count);
                over_cap |= count > cap;
            }
            if (full_cap_scan && !over_cap) {
                for (const std::int64_t count : scratch) {
                    if (count > cap) {
                        over_cap = true;
                        break;
                    }
                }
            }

            if (over_cap) {
                result.truncated_ = true;
            } else {
                const auto [to, inserted] =
                    result.store_.intern(scratch.data(), next_hash, options.max_states);
                if (to == invalid_state) {
                    result.truncated_ = true;
                } else {
                    result.edges_.push_back({t, to});
                    if (inserted) {
                        // Incremental enabled set of the successor: statuses
                        // carry over except for the consumers of touched
                        // places, which are re-checked against scratch.
                        detail::merge_enabled(net, enabled, affected[t.index()],
                                              scratch.data(), merged);
                        enabled_of.push_back(merged);
                    }
                }
            }

            // Revert scratch to the tokens of s for the next enabled t.
            for (const place_weight& in : net.inputs(t)) {
                scratch[in.place.index()] += in.weight;
            }
            for (const place_weight& out : net.outputs(t)) {
                scratch[out.place.index()] -= out.weight;
            }
        }
        result.edge_offsets_.push_back(result.edges_.size());
    }
    return result;
}

token_game::token_game(const petri_net& net)
    : net_(&net), tokens_(net.initial_marking_vector())
{
}

void token_game::reset()
{
    tokens_ = net_->initial_marking_vector();
}

bool token_game::enabled(transition_id t) const
{
    return detail::enabled_in(*net_, tokens_.data(), t);
}

bool token_game::try_fire(transition_id t)
{
    if (!enabled(t)) {
        return false;
    }
    for (const place_weight& in : net_->inputs(t)) {
        tokens_[in.place.index()] -= in.weight;
    }
    for (const place_weight& out : net_->outputs(t)) {
        tokens_[out.place.index()] += out.weight;
    }
    return true;
}

std::optional<std::size_t> token_game::run(const firing_sequence& sequence)
{
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        if (!try_fire(sequence[i])) {
            return i;
        }
    }
    return std::nullopt;
}

bool token_game::at_initial() const
{
    return tokens_ == net_->initial_marking_vector();
}

} // namespace fcqss::pn
