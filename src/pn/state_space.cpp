#include "pn/state_space.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "exec/chunk_pager.hpp"
#include "exec/executor.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "obs/obs.hpp"

namespace fcqss::pn {

namespace detail {

marking_store& space_access::store(state_space& space)
{
    return space.store_;
}

std::vector<state_space_edge>& space_access::edges(state_space& space)
{
    return space.edges_;
}

std::vector<std::size_t>& space_access::edge_offsets(state_space& space)
{
    return space.edge_offsets_;
}

bool& space_access::truncated(state_space& space)
{
    return space.truncated_;
}

bool& space_access::unordered_fallback(state_space& space)
{
    return space.unordered_fallback_;
}

void flush_store_obs(const marking_store& store)
{
    if (!obs::stats_enabled()) {
        return;
    }
    static obs::counter& probes = obs::get_counter("pn.store.hash_probes");
    static obs::counter& hits = obs::get_counter("pn.store.dedup_hits");
    static obs::counter& inserts = obs::get_counter("pn.store.inserts");
    static obs::counter& rejects = obs::get_counter("pn.store.budget_rejects");
    static obs::counter& resizes = obs::get_counter("pn.store.table_resizes");
    static obs::counter& arena = obs::get_counter("pn.store.arena_bytes", "bytes");
    static obs::counter& chunks = obs::get_counter("pn.store.chunks");
    static obs::counter& decode_hits = obs::get_counter("pn.mem.decode_hits");
    static obs::counter& decode_misses = obs::get_counter("pn.mem.decode_misses");
    const marking_store_stats& s = store.stats();
    probes.add(s.probes);
    hits.add(s.dedup_hits);
    inserts.add(s.inserts);
    rejects.add(s.budget_rejects);
    resizes.add(s.resizes);
    arena.add(store.memory_bytes());
    chunks.add(store.chunk_count());
    decode_hits.add(s.decode_hits);
    decode_misses.add(s.decode_misses);
}

std::vector<delta_list> firing_deltas(const petri_net& net)
{
    std::vector<delta_list> deltas(net.transition_count());
    for (transition_id t : net.transitions()) {
        delta_list& list = deltas[t.index()];
        for (const place_weight& in : net.inputs(t)) {
            list.emplace_back(static_cast<std::uint32_t>(in.place.index()),
                              -in.weight);
        }
        for (const place_weight& out : net.outputs(t)) {
            list.emplace_back(static_cast<std::uint32_t>(out.place.index()),
                              out.weight);
        }
        std::sort(list.begin(), list.end());
        // Fold arcs touching the same place into one net delta; drop zeros.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < list.size();) {
            std::int64_t sum = 0;
            const std::uint32_t place = list[i].first;
            for (; i < list.size() && list[i].first == place; ++i) {
                sum += list[i].second;
            }
            if (sum != 0) {
                list[kept++] = {place, sum};
            }
        }
        list.resize(kept);
    }
    return deltas;
}

bool enabled_in(const petri_net& net, const std::int64_t* tokens, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        if (tokens[in.place.index()] < in.weight) {
            return false;
        }
    }
    return true;
}

std::vector<std::vector<transition_id>> affected_transitions(const petri_net& net)
{
    std::vector<std::vector<transition_id>> affected(net.transition_count());
    for (transition_id t : net.transitions()) {
        std::vector<transition_id>& list = affected[t.index()];
        for (const place_weight& in : net.inputs(t)) {
            for (const transition_weight& c : net.consumers(in.place)) {
                list.push_back(c.transition);
            }
        }
        for (const place_weight& out : net.outputs(t)) {
            for (const transition_weight& c : net.consumers(out.place)) {
                list.push_back(c.transition);
            }
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return affected;
}

void merge_enabled(const petri_net& net,
                   const std::vector<transition_id>& parent_enabled,
                   const std::vector<transition_id>& recheck,
                   const std::int64_t* tokens, std::vector<transition_id>& out)
{
    out.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < parent_enabled.size() || j < recheck.size()) {
        if (j == recheck.size() ||
            (i < parent_enabled.size() && parent_enabled[i] < recheck[j])) {
            out.push_back(parent_enabled[i++]);
        } else {
            if (i < parent_enabled.size() && parent_enabled[i] == recheck[j]) {
                ++i;
            }
            const transition_id candidate = recheck[j++];
            if (enabled_in(net, tokens, candidate)) {
                out.push_back(candidate);
            }
        }
    }
}

// The ltl_x ignoring fix-up.  The reduced graph built by D1/D2 (+V/I) sets
// alone can starve a transition forever: a cycle of cheap closures keeps
// expanding one process while another stays enabled and untouched, which
// breaks liveness and fireability verdicts.  Ignoring can only happen along
// an infinite path, and every infinite path of a finite graph is eventually
// trapped in one cycle-capable SCC, so the SCC-local proviso below — every
// transition enabled somewhere in such an SCC fires somewhere in it — is
// exactly "no transition is ignored forever".  (Trivial SCCs without a
// self-loop cannot trap a path and are exempt, which is what keeps the
// reduction intact on acyclic regions.)  The pass works on mutable
// per-state edge rows and rebuilds the CSR once at the end; it expands one
// state per offending SCC per round and re-explores only the freshly
// discovered states, never restarting from scratch.
void enforce_nonignoring(const petri_net& net, const stubborn_reduction& reduction,
                         state_space& space, const state_space_options& options,
                         exec::executor* pool)
{
    obs::span pass_span("explore.nonignoring");
    std::uint64_t obs_rounds = 0;
    std::uint64_t obs_reexpansions = 0;
    const std::size_t width = net.place_count();
    const std::int64_t cap = options.max_tokens_per_place;
    marking_store& store = space.store_;

    // Mutable per-state edge rows, materialized lazily on the first
    // offender; until then every read goes straight to the engine's CSR.
    // The common case — an acyclic reduced graph, or one whose
    // cycle-capable SCCs already fire everything — pays one Tarjan and no
    // copy at all.  Once materialized, rows.size() is the number of
    // *expanded* states; trailing freshly-interned states are pending.
    std::vector<std::vector<state_space_edge>> rows;
    bool materialized = false;
    const auto successors_of =
        [&](state_id s) -> std::span<const state_space_edge> {
        if (materialized) {
            return {rows[s].data(), rows[s].size()};
        }
        return space.successors(s);
    };

    // Enabled sets, computed lazily and cached — a state's tokens never
    // change, and only cycle-capable SCC members and re-expanded states
    // ever need theirs, so acyclic regions cost nothing here.
    std::vector<std::vector<transition_id>> enabled_cache(space.state_count());
    std::vector<std::uint8_t> enabled_known(space.state_count(), 0);
    const auto enabled_of =
        [&](state_id s) -> const std::vector<transition_id>& {
        if (!enabled_known[s]) {
            enabled_known[s] = 1;
            const std::int64_t* tokens = store.tokens(s).data();
            for (transition_id t : net.transitions()) {
                if (enabled_in(net, tokens, t)) {
                    enabled_cache[s].push_back(t);
                }
            }
        }
        return enabled_cache[s];
    };

    std::vector<std::uint8_t> fully_expanded(space.state_count(), 0);

    // One fired successor, precomputed off the critical interning path.
    // The token vector, its hash and the cap verdict are pure functions of
    // (parent tokens, transition), so batches of candidates can be
    // generated concurrently; only the intern — which assigns ids — stays
    // sequential, in (state id, transition id) order, which is exactly the
    // order the single-threaded pass interns in.
    struct fire_candidate {
        transition_id via{0};
        std::uint64_t hash = 0;
        bool over_cap = false;
        std::vector<std::int64_t> tokens;
    };
    // Fires t from s into a candidate.  The full-vector cap scan is
    // equivalent to the engines' per-touched-place check (every interned
    // parent except possibly the root already obeys the cap) and also
    // covers the over-cap-root case.
    const auto fire_from = [&](state_id s, transition_id t) {
        fire_candidate cand;
        cand.via = t;
        const std::span<const std::int64_t> current = store.tokens(s);
        cand.tokens.assign(current.begin(), current.end());
        for (const place_weight& in : net.inputs(t)) {
            cand.tokens[in.place.index()] -= in.weight;
        }
        for (const place_weight& out : net.outputs(t)) {
            cand.tokens[out.place.index()] += out.weight;
        }
        for (const std::int64_t count : cand.tokens) {
            if (count > cap) {
                cand.over_cap = true;
                return cand;
            }
        }
        cand.hash = marking_store::hash_tokens(cand.tokens.data(), width);
        return cand;
    };
    // Runs gen(0..count-1) on the pool when one is given and the batch is
    // worth a dispatch, inline otherwise; either path computes the same
    // values into disjoint per-index slots.
    const auto run_batch = [&](std::size_t count,
                               const std::function<void(std::size_t)>& gen) {
        if (pool != nullptr && count > 1) {
            pool->for_each_index(count, gen);
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                gen(i);
            }
        }
    };
    // Interns one generated candidate and appends the edge to rows[s];
    // budget-dropped successors (token cap, state budget) mark the space
    // truncated, exactly like in-engine expansion.
    const auto merge_candidate = [&](state_id s, const fire_candidate& cand) {
        if (cand.over_cap) {
            space.truncated_ = true;
            return;
        }
        const auto [to, inserted] =
            store.intern(cand.tokens.data(), cand.hash, options.max_states);
        if (to == invalid_state) {
            space.truncated_ = true;
            return;
        }
        static_cast<void>(inserted);
        rows[s].push_back({cand.via, to});
    };

    // Expands every pending state (freshly interned, no row yet) with the
    // normal per-state reduction, in id order; expansion may intern more.
    // Each batch generates its candidates (enabled scan, stubborn closure,
    // firing, hashing) via run_batch, then merges them sequentially in
    // (state id, transition id) order.
    std::vector<stubborn_workspace> batch_ws;
    std::vector<std::vector<transition_id>> batch_reduced;
    const auto expand_tail = [&] {
        while (rows.size() < store.size()) {
            const std::size_t begin = rows.size();
            const std::size_t count = store.size() - begin;
            rows.resize(begin + count);
            enabled_cache.resize(begin + count);
            enabled_known.resize(begin + count, 0);
            fully_expanded.resize(begin + count, 0);
            if (batch_ws.size() < count) {
                batch_ws.resize(count);
                batch_reduced.resize(count);
            }
            std::vector<std::size_t> enabled_counts(count, 0);
            std::vector<std::vector<fire_candidate>> batch(count);
            run_batch(count, [&](std::size_t i) {
                const state_id s = static_cast<state_id>(begin + i);
                const std::vector<transition_id>& enabled = enabled_of(s);
                enabled_counts[i] = enabled.size();
                reduction.reduce(store.tokens(s).data(), enabled, batch_ws[i],
                                 batch_reduced[i]);
                batch[i].reserve(batch_reduced[i].size());
                for (const transition_id t : batch_reduced[i]) {
                    batch[i].push_back(fire_from(s, t));
                }
            });
            for (std::size_t i = 0; i < count; ++i) {
                const state_id s = static_cast<state_id>(begin + i);
                for (const fire_candidate& cand : batch[i]) {
                    merge_candidate(s, cand);
                }
                fully_expanded[s] = batch[i].size() == enabled_counts[i] ? 1 : 0;
            }
        }
    };

    std::vector<std::uint8_t> fired(net.transition_count(), 0);
    for (;;) {
        ++obs_rounds;
        const std::size_t states = materialized ? rows.size() : space.state_count();
        graph::digraph state_graph(states);
        for (state_id s = 0; s < static_cast<state_id>(states); ++s) {
            for (const state_space_edge& edge : successors_of(s)) {
                state_graph.add_edge(s, edge.to);
            }
        }
        const graph::scc_result sccs =
            graph::strongly_connected_components(state_graph);

        std::vector<state_id> offenders;
        for (std::size_t c = 0; c < sccs.component_count(); ++c) {
            const std::vector<std::size_t>& members = sccs.members[c];
            bool cyclic = members.size() > 1;
            if (!cyclic) {
                for (const state_space_edge& edge :
                     successors_of(static_cast<state_id>(members.front()))) {
                    cyclic |= static_cast<std::size_t>(edge.to) == members.front();
                }
            }
            if (!cyclic) {
                continue;
            }
            std::fill(fired.begin(), fired.end(), 0);
            for (const std::size_t v : members) {
                for (const state_space_edge& edge :
                     successors_of(static_cast<state_id>(v))) {
                    fired[edge.via.index()] = 1;
                }
            }
            // The offender: the smallest-id member enabling an ignored
            // transition that is not fully expanded yet.  When every such
            // member is already fully expanded, the missing edges were
            // budget-dropped — the space is truncated and the verdicts
            // downstream are unknown anyway, so the SCC is left alone.
            state_id pick = invalid_state;
            for (const std::size_t v : members) {
                if (fully_expanded[v]) {
                    continue;
                }
                for (const transition_id t : enabled_of(static_cast<state_id>(v))) {
                    if (!fired[t.index()]) {
                        pick = static_cast<state_id>(v);
                        break;
                    }
                }
                if (pick != invalid_state) {
                    break;
                }
            }
            if (pick != invalid_state) {
                offenders.push_back(pick);
            }
        }
        if (offenders.empty()) {
            break;
        }
        obs_reexpansions += offenders.size();
        if (!materialized) {
            rows.resize(space.state_count());
            for (state_id s = 0; s < static_cast<state_id>(rows.size()); ++s) {
                const std::span<const state_space_edge> edges = space.successors(s);
                rows[s].assign(edges.begin(), edges.end());
            }
            materialized = true;
        }
        std::sort(offenders.begin(), offenders.end());
        // Generate every offender's missing successors concurrently (their
        // enabled sets are already cached — the pick above computed them),
        // then intern in (offender id, transition id) order.
        std::vector<std::vector<fire_candidate>> missing(offenders.size());
        run_batch(offenders.size(), [&](std::size_t i) {
            const state_id s = offenders[i];
            for (const transition_id t : enabled_cache[s]) {
                bool present = false;
                for (const state_space_edge& edge : rows[s]) {
                    present |= edge.via == t;
                }
                if (!present) {
                    missing[i].push_back(fire_from(s, t));
                }
            }
        });
        for (std::size_t i = 0; i < offenders.size(); ++i) {
            const state_id s = offenders[i];
            fully_expanded[s] = 1;
            for (const fire_candidate& cand : missing[i]) {
                merge_candidate(s, cand);
            }
            std::sort(rows[s].begin(), rows[s].end(),
                      [](const state_space_edge& a, const state_space_edge& b) {
                          return a.via < b.via;
                      });
        }
        expand_tail();
    }

    if (obs::stats_enabled()) {
        static obs::counter& rounds = obs::get_counter("pn.ltlx.rounds");
        static obs::counter& reexpansions = obs::get_counter("pn.ltlx.reexpansions");
        rounds.add(obs_rounds);
        reexpansions.add(obs_reexpansions);
    }
    pass_span.arg("rounds", static_cast<std::int64_t>(obs_rounds));
    pass_span.arg("reexpansions", static_cast<std::int64_t>(obs_reexpansions));

    if (!materialized) {
        return; // nothing was ever ignored: the engine's CSR stands as-is
    }
    // Rebuild the CSR from the final rows.
    space.edges_.clear();
    space.edge_offsets_.assign(1, 0);
    for (const std::vector<state_space_edge>& row : rows) {
        space.edges_.insert(space.edges_.end(), row.begin(), row.end());
        space.edge_offsets_.push_back(space.edges_.size());
    }
}

} // namespace detail

marking state_space::marking_of(state_id s) const
{
    const std::span<const std::int64_t> span = store_.tokens(s);
    return marking(std::vector<std::int64_t>(span.begin(), span.end()));
}

state_space explore_state_space(const petri_net& net, const state_space_options& options)
{
    obs::span run_span("explore.seq");
    const std::size_t width = net.place_count();
    const std::int64_t cap = options.max_tokens_per_place;

    state_space result;
    // Under a byte budget the arena spills through a pager; the shared_ptr
    // rides inside the store so the mappings outlive the exploration for as
    // long as the returned space does.
    std::shared_ptr<exec::chunk_pager> pager;
    if (options.max_bytes != 0) {
        pager = std::make_shared<exec::chunk_pager>(
            exec::chunk_pager_options{.max_resident_bytes = options.max_bytes});
    }
    result.store_ = marking_store(width, pager);

    // With a pager, every inserted state records its (parent, firing delta)
    // so equality probes against evicted rows can decode instead of fault.
    std::vector<detail::delta_list> deltas;
    if (pager != nullptr) {
        deltas = detail::firing_deltas(net);
    }

    // Progress counters are flushed as deltas every few thousand expansions
    // (and once at the end), so a concurrent snapshot() sees them grow
    // monotonically without the expansion loop paying per-state atomics.
    std::size_t flushed_states = 0;
    std::size_t flushed_edges = 0;
    const auto flush_progress = [&] {
        if (!obs::stats_enabled()) {
            return;
        }
        static obs::counter& states_counter = obs::get_counter("pn.explore.states");
        static obs::counter& edges_counter = obs::get_counter("pn.explore.edges");
        states_counter.add(result.store_.size() - flushed_states);
        edges_counter.add(result.edges_.size() - flushed_edges);
        flushed_states = result.store_.size();
        flushed_edges = result.edges_.size();
    };

    const std::vector<std::vector<transition_id>> affected =
        detail::affected_transitions(net);

    const std::vector<std::int64_t>& m0 = net.initial_marking_vector();
    const std::uint64_t root_hash = marking_store::hash_tokens(m0.data(), width);
    result.store_.intern(m0.data(), root_hash);

    // Every interned state except possibly the root obeys the token cap in
    // every place (successors are rejected otherwise), so per-edge cap
    // checking only needs the places the fired transition raised.  The root
    // is taken as given; if it already exceeds the cap somewhere, its own
    // expansion scans the full vector instead.
    bool root_over_cap = false;
    for (std::int64_t count : m0) {
        if (count > cap) {
            root_over_cap = true;
            break;
        }
    }

    // Per-state enabled sets (ascending by transition id), kept only until
    // the state is expanded.  The root's is the one full scan.
    std::vector<std::vector<transition_id>> enabled_of(1);
    for (transition_id t : net.transitions()) {
        if (detail::enabled_in(net, m0.data(), t)) {
            enabled_of[0].push_back(t);
        }
    }

    std::vector<std::int64_t> scratch(width);
    std::vector<transition_id> merged;
    result.edge_offsets_.push_back(0);

    // Optional stubborn-set reduction: only a deadlock-preserving subset of
    // each state's enabled set is expanded.  The *full* enabled sets are
    // still maintained incrementally — successors derive theirs from the
    // parent's full set, reduced or not.
    std::optional<stubborn_reduction> stubborn;
    if (options.reduction == reduction_kind::stubborn) {
        stubborn.emplace(net, stubborn_options{.strength = options.strength,
                                               .observed_places = options.observed_places});
    }
    stubborn_workspace stubborn_ws;
    std::vector<transition_id> reduced;

    // Discovery order is expansion order: states get ascending ids and are
    // expanded in id order, which is exactly the reference BFS.
    for (state_id s = 0; s < static_cast<state_id>(result.store_.size()); ++s) {
        const std::span<const std::int64_t> current = result.store_.tokens(s);
        std::copy(current.begin(), current.end(), scratch.begin());
        const std::uint64_t current_hash = result.store_.stored_hash(s);
        const std::vector<transition_id> enabled = std::move(enabled_of[s]);
        const bool full_cap_scan = root_over_cap && s == 0;

        const std::vector<transition_id>* expand = &enabled;
        if (stubborn) {
            stubborn->reduce(scratch.data(), enabled, stubborn_ws, reduced);
            expand = &reduced;
        }
        for (transition_id t : *expand) {
            // Fire t into scratch, updating the hash per touched place.
            std::uint64_t next_hash = current_hash;
            bool over_cap = false;
            for (const place_weight& in : net.inputs(t)) {
                std::int64_t& count = scratch[in.place.index()];
                next_hash ^= marking_store::component_mix(in.place.index(), count);
                count -= in.weight;
                next_hash ^= marking_store::component_mix(in.place.index(), count);
            }
            for (const place_weight& out : net.outputs(t)) {
                std::int64_t& count = scratch[out.place.index()];
                next_hash ^= marking_store::component_mix(out.place.index(), count);
                count += out.weight;
                next_hash ^= marking_store::component_mix(out.place.index(), count);
                over_cap |= count > cap;
            }
            if (full_cap_scan && !over_cap) {
                for (const std::int64_t count : scratch) {
                    if (count > cap) {
                        over_cap = true;
                        break;
                    }
                }
            }

            if (over_cap) {
                result.truncated_ = true;
            } else {
                const auto [to, inserted] =
                    result.store_.intern(scratch.data(), next_hash, options.max_states);
                if (to == invalid_state) {
                    result.truncated_ = true;
                } else {
                    result.edges_.push_back({t, to});
                    if (inserted) {
                        if (pager != nullptr) {
                            result.store_.record_parent(to, s, deltas[t.index()]);
                        }
                        // Incremental enabled set of the successor: statuses
                        // carry over except for the consumers of touched
                        // places, which are re-checked against scratch.
                        detail::merge_enabled(net, enabled, affected[t.index()],
                                              scratch.data(), merged);
                        enabled_of.push_back(merged);
                    }
                }
            }

            // Revert scratch to the tokens of s for the next enabled t.
            for (const place_weight& in : net.inputs(t)) {
                scratch[in.place.index()] += in.weight;
            }
            for (const place_weight& out : net.outputs(t)) {
                scratch[out.place.index()] -= out.weight;
            }
        }
        result.edge_offsets_.push_back(result.edges_.size());
        if ((s & 0x1fff) == 0x1fff) {
            flush_progress();
        }
    }
    if (stubborn && options.strength == reduction_strength::ltl_x) {
        flush_progress();
        detail::enforce_nonignoring(net, *stubborn, result, options);
    }
    flush_progress();
    detail::flush_store_obs(result.store_);
    if (pager != nullptr) {
        pager->flush_obs();
    }
    if (result.truncated_ && obs::stats_enabled()) {
        obs::get_counter("pn.explore.truncations").add(1);
    }
    run_span.arg("states", static_cast<std::int64_t>(result.store_.size()));
    run_span.arg("edges", static_cast<std::int64_t>(result.edges_.size()));
    return result;
}

token_game::token_game(const petri_net& net)
    : net_(&net), tokens_(net.initial_marking_vector())
{
}

void token_game::reset()
{
    tokens_ = net_->initial_marking_vector();
}

bool token_game::enabled(transition_id t) const
{
    return detail::enabled_in(*net_, tokens_.data(), t);
}

bool token_game::try_fire(transition_id t)
{
    if (!enabled(t)) {
        return false;
    }
    for (const place_weight& in : net_->inputs(t)) {
        tokens_[in.place.index()] -= in.weight;
    }
    for (const place_weight& out : net_->outputs(t)) {
        tokens_[out.place.index()] += out.weight;
    }
    return true;
}

std::optional<std::size_t> token_game::run(const firing_sequence& sequence)
{
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        if (!try_fire(sequence[i])) {
            return i;
        }
    }
    return std::nullopt;
}

bool token_game::at_initial() const
{
    return tokens_ == net_->initial_marking_vector();
}

} // namespace fcqss::pn
