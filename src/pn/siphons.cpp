#include "pn/siphons.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace fcqss::pn {

namespace {

// Membership bitmap from a place set.
std::vector<bool> to_bitmap(const petri_net& net, const place_set& places)
{
    std::vector<bool> in_set(net.place_count(), false);
    for (place_id p : places) {
        if (!p.valid() || p.index() >= net.place_count()) {
            throw model_error("siphons: place id out of range");
        }
        in_set[p.index()] = true;
    }
    return in_set;
}

place_set from_bitmap(const std::vector<bool>& bitmap)
{
    place_set result;
    for (std::size_t i = 0; i < bitmap.size(); ++i) {
        if (bitmap[i]) {
            result.emplace_back(static_cast<std::int32_t>(i));
        }
    }
    return result;
}

} // namespace

bool is_siphon(const petri_net& net, const place_set& places)
{
    if (places.empty()) {
        return false;
    }
    const std::vector<bool> in_set = to_bitmap(net, places);
    // Every transition producing into the set must also consume from it.
    for (place_id p : places) {
        for (const transition_weight& producer : net.producers(p)) {
            bool consumes_from_set = false;
            for (const place_weight& in : net.inputs(producer.transition)) {
                if (in_set[in.place.index()]) {
                    consumes_from_set = true;
                    break;
                }
            }
            if (!consumes_from_set) {
                return false;
            }
        }
    }
    return true;
}

bool is_trap(const petri_net& net, const place_set& places)
{
    if (places.empty()) {
        return false;
    }
    const std::vector<bool> in_set = to_bitmap(net, places);
    // Every transition consuming from the set must also produce into it.
    for (place_id p : places) {
        for (const transition_weight& consumer : net.consumers(p)) {
            bool produces_into_set = false;
            for (const place_weight& out : net.outputs(consumer.transition)) {
                if (in_set[out.place.index()]) {
                    produces_into_set = true;
                    break;
                }
            }
            if (!produces_into_set) {
                return false;
            }
        }
    }
    return true;
}

std::vector<place_set> minimal_siphons(const petri_net& net, std::size_t max_results)
{
    // Enumerate candidate seeds and close each seed into the smallest siphon
    // containing it, then keep the inclusion-minimal closures.  The closure
    // of {p}: whenever a producer of a member does not consume from the set,
    // one of the producer's input places must be added; we branch over that
    // choice (bounded depth-first search).
    std::vector<place_set> results;

    struct frame {
        std::vector<bool> in_set;
    };

    const auto already_have_subset = [&](const std::vector<bool>& candidate) {
        for (const place_set& existing : results) {
            bool subset = true;
            for (place_id p : existing) {
                if (!candidate[p.index()]) {
                    subset = false;
                    break;
                }
            }
            if (subset) {
                return true;
            }
        }
        return false;
    };

    const auto record = [&](const std::vector<bool>& bitmap) {
        place_set candidate = from_bitmap(bitmap);
        // Drop supersets of known siphons; remove known siphons that are
        // supersets of the new one.
        for (const place_set& existing : results) {
            if (std::includes(candidate.begin(), candidate.end(), existing.begin(),
                              existing.end())) {
                return;
            }
        }
        std::erase_if(results, [&](const place_set& existing) {
            return std::includes(existing.begin(), existing.end(), candidate.begin(),
                                 candidate.end());
        });
        results.push_back(std::move(candidate));
    };

    for (place_id seed : net.places()) {
        std::vector<frame> stack;
        frame initial;
        initial.in_set.assign(net.place_count(), false);
        initial.in_set[seed.index()] = true;
        stack.push_back(std::move(initial));

        std::size_t expansions = 0;
        while (!stack.empty() && results.size() < max_results &&
               expansions < 16 * max_results) {
            ++expansions;
            frame current = std::move(stack.back());
            stack.pop_back();

            // Find a violation: a producer of a member that does not consume
            // from the set.
            transition_id violating;
            for (std::size_t pi = 0; pi < current.in_set.size() && !violating.valid();
                 ++pi) {
                if (!current.in_set[pi]) {
                    continue;
                }
                const place_id p{static_cast<std::int32_t>(pi)};
                for (const transition_weight& producer : net.producers(p)) {
                    bool consumes = false;
                    for (const place_weight& in : net.inputs(producer.transition)) {
                        if (current.in_set[in.place.index()]) {
                            consumes = true;
                            break;
                        }
                    }
                    if (!consumes) {
                        violating = producer.transition;
                        break;
                    }
                }
            }

            if (!violating.valid()) {
                record(current.in_set);
                continue;
            }

            const auto& repair_choices = net.inputs(violating);
            if (repair_choices.empty()) {
                // A source transition produces into the set: no siphon can
                // contain this branch (source transitions never consume).
                continue;
            }
            if (already_have_subset(current.in_set)) {
                continue;
            }
            for (const place_weight& choice : repair_choices) {
                if (current.in_set[choice.place.index()]) {
                    continue;
                }
                frame next = current;
                next.in_set[choice.place.index()] = true;
                stack.push_back(std::move(next));
            }
        }
    }

    std::sort(results.begin(), results.end());
    results.erase(std::unique(results.begin(), results.end()), results.end());
    return results;
}

place_set maximal_trap_within(const petri_net& net, const place_set& places)
{
    // Standard fixpoint: repeatedly delete places whose consumer fails to
    // produce back into the current set.
    std::vector<bool> in_set = to_bitmap(net, places);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t pi = 0; pi < in_set.size(); ++pi) {
            if (!in_set[pi]) {
                continue;
            }
            const place_id p{static_cast<std::int32_t>(pi)};
            for (const transition_weight& consumer : net.consumers(p)) {
                bool produces_back = false;
                for (const place_weight& out : net.outputs(consumer.transition)) {
                    if (in_set[out.place.index()]) {
                        produces_back = true;
                        break;
                    }
                }
                if (!produces_back) {
                    in_set[pi] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
    return from_bitmap(in_set);
}

bool is_marked_set(const petri_net& net, const place_set& places)
{
    for (place_id p : places) {
        if (net.initial_tokens(p) > 0) {
            return true;
        }
    }
    return false;
}

bool has_commoner_property(const petri_net& net)
{
    for (const place_set& siphon : minimal_siphons(net)) {
        const place_set trap = maximal_trap_within(net, siphon);
        if (trap.empty() || !is_marked_set(net, trap)) {
            return false;
        }
    }
    return true;
}

} // namespace fcqss::pn
