#include "pn/coverability.hpp"

#include <algorithm>
#include <deque>

#include "base/error.hpp"
#include "linalg/checked.hpp"
#include "pn/marking_store.hpp"
#include "pn/state_space.hpp"

namespace fcqss::pn {

namespace {

// Flattens an omega-marking to raw counts (omega encodes as its sentinel
// value) so it can be interned in a marking_store for deduplication.
void flatten(const omega_marking& m, std::vector<std::int64_t>& out)
{
    out.resize(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
        out[i] = m[i].value;
    }
}

omega_marking to_omega(const std::vector<std::int64_t>& tokens)
{
    omega_marking m(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        m[i].value = tokens[i];
    }
    return m;
}

bool omega_enabled(const petri_net& net, const omega_marking& m, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        const omega_count& c = m[in.place.index()];
        if (!c.is_omega() && c.value < in.weight) {
            return false;
        }
    }
    return true;
}

omega_marking omega_fire(const petri_net& net, omega_marking m, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        omega_count& c = m[in.place.index()];
        if (!c.is_omega()) {
            c.value -= in.weight;
        }
    }
    for (const place_weight& out : net.outputs(t)) {
        omega_count& c = m[out.place.index()];
        if (!c.is_omega()) {
            // Saturate into omega rather than overflowing; a count this large
            // is indistinguishable from unbounded for analysis purposes.
            if (c.value > omega_count::omega_value - out.weight) {
                c.value = omega_count::omega_value;
            } else {
                c.value += out.weight;
            }
        }
    }
    return m;
}

// a <= b componentwise, omega dominating.
bool omega_leq(const omega_marking& a, const omega_marking& b)
{
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].is_omega() && !b[i].is_omega()) {
            return false;
        }
        if (!a[i].is_omega() && !b[i].is_omega() && a[i].value > b[i].value) {
            return false;
        }
    }
    return true;
}

} // namespace

coverability_tree build_coverability_tree(const petri_net& net,
                                          const coverability_options& options)
{
    coverability_tree tree;
    tree.nodes.push_back(
        {to_omega(net.initial_marking_vector()), 0, transition_id{}, {}});

    // Global dedup: an omega-marking seen anywhere already generates the
    // same subtree, so only its first occurrence is expanded.  This turns
    // the Karp–Miller tree into the (equivalent for boundedness and
    // coverability) coverability graph and avoids path-count blowup on
    // symmetric nets.  The seen set is an arena-backed marking_store
    // (omega flattened to its sentinel count) instead of a node-based
    // unordered_set.
    marking_store expanded(net.place_count());
    std::vector<std::int64_t> flat;
    flatten(tree.nodes.front().state, flat);
    expanded.intern(flat.data(), marking_store::hash_tokens(flat.data(), flat.size()));

    // Incremental enabled sets, exactly like the exploration engines: on
    // flattened counts (omega = its sentinel, which exceeds every arc
    // weight) detail::enabled_in coincides with omega_enabled, so a child's
    // enabled set is its parent's with only affected[t] re-checked — plus
    // the consumers of any place the acceleration pumped to omega, since
    // pumping can enable transitions t never touched.  The root's set is
    // the one full scan over T.
    const std::vector<std::vector<transition_id>> affected =
        detail::affected_transitions(net);
    std::vector<std::vector<transition_id>> enabled_of(1);
    for (transition_id t : net.transitions()) {
        if (omega_enabled(net, tree.nodes.front().state, t)) {
            enabled_of[0].push_back(t);
        }
    }

    std::vector<std::size_t> pumped;
    std::vector<transition_id> recheck;
    std::deque<std::size_t> frontier{0};
    while (!frontier.empty()) {
        const std::size_t node_index = frontier.front();
        frontier.pop_front();
        const std::vector<transition_id> enabled = std::move(enabled_of[node_index]);

        for (transition_id t : enabled) {
            omega_marking next = omega_fire(net, tree.nodes[node_index].state, t);

            // Acceleration: any strictly-dominated ancestor pumps its strictly
            // smaller components to omega.
            pumped.clear();
            std::size_t at = node_index;
            while (true) {
                const omega_marking& ancestor = tree.nodes[at].state;
                if (omega_leq(ancestor, next) && ancestor != next) {
                    for (std::size_t i = 0; i < next.size(); ++i) {
                        const bool strictly_greater =
                            !ancestor[i].is_omega() &&
                            (next[i].is_omega() || next[i].value > ancestor[i].value);
                        if (strictly_greater) {
                            if (!next[i].is_omega()) {
                                pumped.push_back(i);
                            }
                            next[i].value = omega_count::omega_value;
                        }
                    }
                }
                if (at == tree.nodes[at].parent) {
                    break;
                }
                at = tree.nodes[at].parent;
            }

            if (tree.nodes.size() >= options.max_nodes) {
                tree.truncated = true;
                return tree;
            }
            flatten(next, flat);
            const bool fresh =
                expanded
                    .intern(flat.data(),
                            marking_store::hash_tokens(flat.data(), flat.size()))
                    .second;
            const std::size_t child_index = tree.nodes.size();
            tree.nodes.push_back({std::move(next), node_index, t, {}});
            tree.nodes[node_index].children.emplace_back(t, child_index);
            if (fresh) {
                frontier.push_back(child_index);
                recheck.assign(affected[t.index()].begin(), affected[t.index()].end());
                for (const std::size_t place : pumped) {
                    for (const transition_weight& c :
                         net.consumers(place_id{static_cast<std::int32_t>(place)})) {
                        recheck.push_back(c.transition);
                    }
                }
                if (!pumped.empty()) {
                    std::sort(recheck.begin(), recheck.end());
                    recheck.erase(std::unique(recheck.begin(), recheck.end()),
                                  recheck.end());
                }
                enabled_of.resize(tree.nodes.size());
                detail::merge_enabled(net, enabled, recheck, flat.data(),
                                      enabled_of[child_index]);
            }
        }
    }
    return tree;
}

bool is_bounded(const coverability_tree& tree)
{
    for (const coverability_node& node : tree.nodes) {
        for (const omega_count& c : node.state) {
            if (c.is_omega()) {
                return false;
            }
        }
    }
    return true;
}

bool is_k_bounded(const coverability_tree& tree, std::int64_t k)
{
    for (const coverability_node& node : tree.nodes) {
        for (const omega_count& c : node.state) {
            if (c.is_omega() || c.value > k) {
                return false;
            }
        }
    }
    return true;
}

std::vector<place_id> unbounded_places(const coverability_tree& tree)
{
    if (tree.nodes.empty()) {
        return {};
    }
    std::vector<bool> unbounded(tree.nodes.front().state.size(), false);
    for (const coverability_node& node : tree.nodes) {
        for (std::size_t i = 0; i < node.state.size(); ++i) {
            if (node.state[i].is_omega()) {
                unbounded[i] = true;
            }
        }
    }
    std::vector<place_id> result;
    for (std::size_t i = 0; i < unbounded.size(); ++i) {
        if (unbounded[i]) {
            result.emplace_back(static_cast<std::int32_t>(i));
        }
    }
    return result;
}

bool is_coverable(const coverability_tree& tree, const marking& target)
{
    for (const coverability_node& node : tree.nodes) {
        bool covers = true;
        const auto& tokens = target.vector();
        if (tokens.size() != node.state.size()) {
            throw model_error("is_coverable: marking size mismatch");
        }
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (!node.state[i].is_omega() && node.state[i].value < tokens[i]) {
                covers = false;
                break;
            }
        }
        if (covers) {
            return true;
        }
    }
    return false;
}

} // namespace fcqss::pn
