#include "pn/properties.hpp"

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "pn/coverability.hpp"

namespace fcqss::pn {

std::string to_string(verdict v)
{
    switch (v) {
    case verdict::yes: return "yes";
    case verdict::no: return "no";
    case verdict::unknown: return "unknown";
    }
    return "unknown";
}

verdict check_k_bounded(const petri_net& net, std::int64_t k)
{
    const coverability_tree tree = build_coverability_tree(net);
    if (tree.truncated) {
        return verdict::unknown;
    }
    return is_k_bounded(tree, k) ? verdict::yes : verdict::no;
}

verdict check_safe(const petri_net& net)
{
    return check_k_bounded(net, 1);
}

verdict check_k_bounded_explicit(const petri_net& net, std::int64_t k,
                                 const reachability_options& options)
{
    // "Some place exceeds k" is a stutter-invariant reachability query, so
    // a stubborn reduction must observe the queried places — but only the
    // *growable* ones (some transition has a positive net delta there): a
    // place no firing grows never exceeds its initial count, which the
    // root-marking scan below settles directly.  Under reduction each
    // growable place is then queried in its own exploration with
    // observed_places = {that place} — the weakest exact visibility set —
    // instead of observing all growable places at once, which makes every
    // transition touching any of them visible and can degenerate the ltl_x
    // reduction to (nearly) the full graph.  Each per-place run preserves
    // reachability of "p exceeds k" exactly, so an over-k bound is a
    // definite no and a clean (untruncated) sweep is a definite yes.
    for (const std::int64_t count : net.initial_marking_vector()) {
        if (count > k) {
            return verdict::no; // the root marking itself is the witness
        }
    }
    if (options.reduction != reduction_kind::stubborn) {
        const state_space space = explore_space(net, options);
        for (const std::int64_t bound : place_bounds(space)) {
            if (bound > k) {
                return verdict::no; // a witness marking is definite either way
            }
        }
        return space.truncated() ? verdict::unknown : verdict::yes;
    }
    bool truncated = false;
    for (const place_id p : growable_places(net)) {
        reachability_options opts = options;
        opts.strength = reduction_strength::ltl_x;
        opts.observed_places = {p};
        const state_space space = explore_space(net, opts);
        if (place_bounds(space)[p.index()] > k) {
            return verdict::no;
        }
        truncated |= space.truncated();
    }
    return truncated ? verdict::unknown : verdict::yes;
}

verdict check_deadlock_free(const petri_net& net, const reachability_options& options)
{
    // Served straight off the compact state space: no marking-object graph
    // is ever materialized.
    const state_space space = explore_space(net, options);
    if (find_deadlock(net, space).has_value()) {
        return verdict::no;
    }
    return space.truncated() ? verdict::unknown : verdict::yes;
}

verdict check_live(const petri_net& net, const reachability_options& options)
{
    // Liveness quantifies over every transition from every reachable
    // marking, which deadlock-strength stubborn sets do not preserve — but
    // ltl_x-strength ones do (the SCC-local non-ignoring proviso keeps
    // fireability exact; no place needs observing).  A caller-requested
    // reduction is therefore upgraded, not forced off.
    reachability_options opts = options;
    if (opts.reduction == reduction_kind::stubborn) {
        opts.strength = reduction_strength::ltl_x;
        opts.observed_places.clear();
    }
    const state_space space = explore_space(net, opts);
    if (space.truncated()) {
        return verdict::unknown;
    }
    const std::size_t states = space.state_count();
    if (states == 0 || net.transition_count() == 0) {
        return verdict::no;
    }

    // Liveness on a finite reachability graph: t is live iff every marking
    // can reach a marking that enables t.  Equivalently, in the condensation
    // of the state graph every *bottom* SCC must contain an edge labelled t.
    graph::digraph state_graph(states);
    for (state_id v = 0; v < static_cast<state_id>(states); ++v) {
        for (const state_space_edge& edge : space.successors(v)) {
            state_graph.add_edge(v, edge.to);
        }
    }
    const graph::scc_result sccs = graph::strongly_connected_components(state_graph);

    // A bottom SCC has no edge leaving it.
    std::vector<bool> is_bottom(sccs.component_count(), true);
    for (state_id v = 0; v < static_cast<state_id>(states); ++v) {
        for (const state_space_edge& edge : space.successors(v)) {
            if (sccs.component[v] != sccs.component[edge.to]) {
                is_bottom[sccs.component[v]] = false;
            }
        }
    }

    for (std::size_t c = 0; c < sccs.component_count(); ++c) {
        if (!is_bottom[c]) {
            continue;
        }
        std::vector<bool> fires_in_scc(net.transition_count(), false);
        for (std::size_t v : sccs.members[c]) {
            for (const state_space_edge& edge :
                 space.successors(static_cast<state_id>(v))) {
                if (sccs.component[edge.to] == c) {
                    fires_in_scc[edge.via.index()] = true;
                }
            }
        }
        for (bool fired : fires_in_scc) {
            if (!fired) {
                return verdict::no;
            }
        }
    }
    return verdict::yes;
}

} // namespace fcqss::pn
