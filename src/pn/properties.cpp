#include "pn/properties.hpp"

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "pn/coverability.hpp"

namespace fcqss::pn {

std::string to_string(verdict v)
{
    switch (v) {
    case verdict::yes: return "yes";
    case verdict::no: return "no";
    case verdict::unknown: return "unknown";
    }
    return "unknown";
}

verdict check_k_bounded(const petri_net& net, std::int64_t k)
{
    const coverability_tree tree = build_coverability_tree(net);
    if (tree.truncated) {
        return verdict::unknown;
    }
    return is_k_bounded(tree, k) ? verdict::yes : verdict::no;
}

verdict check_safe(const petri_net& net)
{
    return check_k_bounded(net, 1);
}

verdict check_deadlock_free(const petri_net& net, const reachability_options& options)
{
    const reachability_graph graph = explore(net, options);
    if (find_deadlock(net, graph).has_value()) {
        return verdict::no;
    }
    return graph.truncated ? verdict::unknown : verdict::yes;
}

verdict check_live(const petri_net& net, const reachability_options& options)
{
    const reachability_graph graph = explore(net, options);
    if (graph.truncated) {
        return verdict::unknown;
    }
    if (graph.nodes.empty() || net.transition_count() == 0) {
        return verdict::no;
    }

    // Liveness on a finite reachability graph: t is live iff every marking
    // can reach a marking that enables t.  Equivalently, in the condensation
    // of the state graph every *bottom* SCC must contain an edge labelled t.
    graph::digraph state_graph(graph.size());
    for (std::size_t v = 0; v < graph.size(); ++v) {
        for (const auto& [t, w] : graph.nodes[v].successors) {
            state_graph.add_edge(v, w);
        }
    }
    const graph::scc_result sccs = graph::strongly_connected_components(state_graph);

    // A bottom SCC has no edge leaving it.
    std::vector<bool> is_bottom(sccs.component_count(), true);
    for (std::size_t v = 0; v < graph.size(); ++v) {
        for (const auto& [t, w] : graph.nodes[v].successors) {
            if (sccs.component[v] != sccs.component[w]) {
                is_bottom[sccs.component[v]] = false;
            }
        }
    }

    for (std::size_t c = 0; c < sccs.component_count(); ++c) {
        if (!is_bottom[c]) {
            continue;
        }
        std::vector<bool> fires_in_scc(net.transition_count(), false);
        for (std::size_t v : sccs.members[c]) {
            for (const auto& [t, w] : graph.nodes[v].successors) {
                if (sccs.component[w] == c) {
                    fires_in_scc[t.index()] = true;
                }
            }
        }
        for (bool fired : fires_in_scc) {
            if (!fired) {
                return verdict::no;
            }
        }
    }
    return verdict::yes;
}

} // namespace fcqss::pn
