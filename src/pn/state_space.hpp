// fcqss — pn/state_space.hpp
// The shared explicit-state exploration engine behind reachability,
// deadlock, executability and valid-schedule checking.  Markings live in an
// arena-backed marking_store; successor generation keeps each state's
// enabled set incrementally — after firing t only the consumers of the
// places t touched are re-checked (via petri_net::consumers), instead of
// re-scanning every transition — and successor hashes are updated
// Zobrist-style from the parent's hash in O(|arcs of t|).
#ifndef FCQSS_PN_STATE_SPACE_HPP
#define FCQSS_PN_STATE_SPACE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pn/firing.hpp"
#include "pn/marking.hpp"
#include "pn/marking_store.hpp"
#include "pn/petri_net.hpp"
#include "pn/stubborn.hpp"

namespace fcqss::exec {
class executor;
}

namespace fcqss::pn {

struct parallel_explore_options;
struct state_space_edge;
class state_space;

/// Budgets for explicit exploration, mirroring reachability_options.
struct state_space_options {
    std::size_t max_states = 100000;
    std::int64_t max_tokens_per_place = 1 << 20;
    /// Soft ceiling on resident arena bytes; 0 = unlimited (heap arena).
    /// Non-zero routes arena chunks through an exec::chunk_pager backed by
    /// an mmap'd spill file, evicting cold chunks past the budget.  The
    /// explored graph is bit-identical either way — only residency changes.
    std::size_t max_bytes = 0;
    /// Per-state partial-order reduction (pn/stubborn.hpp).  `stubborn`
    /// preserves deadlock verdicts and the set of reachable dead markings,
    /// not the full reachability set.
    reduction_kind reduction = reduction_kind::none;
    /// How much the stubborn reduction preserves (pn/stubborn.hpp):
    /// `deadlock` applies D1/D2 only; `ltl_x` adds the visibility
    /// conditions over `observed_places` and the SCC-local "no transition
    /// ignored forever" post-pass, so transition liveness and
    /// stutter-invariant queries stay exact on the reduced graph.
    reduction_strength strength = reduction_strength::deadlock;
    /// Places the query observes (the ltl_x visibility set — see
    /// stubborn_options::observed_places).  Empty is right for deadlock and
    /// liveness queries; boundedness-style queries observe the places they
    /// bound.
    std::vector<place_id> observed_places{};
};

namespace detail {

/// (place, token delta) of one firing, ascending by place; places whose
/// count does not change are omitted.
using delta_list = std::vector<std::pair<std::uint32_t, std::int64_t>>;

/// Per-transition sparse firing deltas, indexed by transition index.  Both
/// engines use these for O(|arcs|) successor construction, and the
/// sequential engine forwards them to marking_store::record_parent so cold
/// rows can be decoded instead of faulted back in.
[[nodiscard]] std::vector<delta_list> firing_deltas(const petri_net& net);

/// True when `tokens` (length |P|) enables t.
[[nodiscard]] bool enabled_in(const petri_net& net, const std::int64_t* tokens,
                              transition_id t);

/// affected[t]: the transitions whose enabledness can change when t fires —
/// the consumers of every place t consumes from or produces into.  Both
/// engines drive their incremental enabled-set updates off this table.
[[nodiscard]] std::vector<std::vector<transition_id>>
affected_transitions(const petri_net& net);

/// The incremental enabled-set step shared by both engines: the successor's
/// enabled set is the parent's (`parent_enabled`, ascending) with the
/// members of `recheck` (ascending) re-tested against the successor tokens.
/// The result is written to `out` (cleared first), ascending.
void merge_enabled(const petri_net& net, const std::vector<transition_id>& parent_enabled,
                   const std::vector<transition_id>& recheck,
                   const std::int64_t* tokens, std::vector<transition_id>& out);

/// The ltl_x "no transition ignored forever" post-pass shared by both
/// engines: over the finished reduced graph, every SCC that can sustain a
/// cycle (two or more states, or a self-loop) and ignores a transition —
/// enabled at some member state but fired from none — gets its smallest
/// such state fully expanded; freshly discovered states are then explored
/// with the normal per-state reduction, and the check repeats until no SCC
/// ignores anything.  Deterministic in (net, reduction, space, options)
/// alone, so running it after either engine keeps the
/// bit-identical-at-any-thread-count guarantee.  Budgets are respected
/// exactly like in-engine expansion (dropped successors mark the space
/// truncated).
///
/// When `pool` is given, the per-SCC re-expansions and the re-exploration
/// of freshly discovered states run their candidate generation (firing,
/// cap scan, hashing, stubborn closure) on the executor; candidates are
/// then interned by a sequential merge in (state id, transition id) order —
/// the exact order the inline path interns in — so the result is
/// bit-identical with or without the pool at any thread count.
void enforce_nonignoring(const petri_net& net, const stubborn_reduction& reduction,
                         state_space& space, const state_space_options& options,
                         exec::executor* pool = nullptr);

/// Adds one store's dedup-work tallies (probes, dedup hits, inserts, budget
/// rejects, table resizes, arena footprint, chunk count) to the global
/// pn.store.* obs counters.  No-op when stats are off.  Both engines call
/// this once per store at the end of a run — the stores themselves count
/// with plain members so the hot probe loop never touches an atomic.
void flush_store_obs(const marking_store& store);

/// Private-member access for the exploration engines in parallel_explore.cpp
/// (which live in an anonymous namespace and so cannot be friends by name).
struct space_access {
    [[nodiscard]] static marking_store& store(state_space& space);
    [[nodiscard]] static std::vector<state_space_edge>& edges(state_space& space);
    [[nodiscard]] static std::vector<std::size_t>& edge_offsets(state_space& space);
    [[nodiscard]] static bool& truncated(state_space& space);
    [[nodiscard]] static bool& unordered_fallback(state_space& space);
};

} // namespace detail

/// One outgoing edge of a state: the transition fired and the successor.
struct state_space_edge {
    transition_id via;
    state_id to;

    friend bool operator==(const state_space_edge&, const state_space_edge&) = default;
};

/// The explored fragment of the reachability graph in compact form: interned
/// states plus a CSR edge list (states are expanded in discovery order, so
/// edges of state s occupy one contiguous run).
class state_space {
public:
    [[nodiscard]] const marking_store& store() const noexcept { return store_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return store_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
    /// True when a budget stopped exploration; "for all reachable markings"
    /// verdicts then only hold for the explored region.
    [[nodiscard]] bool truncated() const noexcept { return truncated_; }
    /// True when an unordered run hit a binding state budget and re-ran
    /// level-synchronously (the kept prefix of a free run is
    /// order-dependent, so truncation semantics belong to the leveled
    /// engine).  The result is still exact-truncation correct; this flag
    /// only records that the requested exploration order was not used.
    [[nodiscard]] bool unordered_fallback() const noexcept
    {
        return unordered_fallback_;
    }

    /// Token counts of state s (a stable span into the arena).
    [[nodiscard]] std::span<const std::int64_t> tokens(state_id s) const noexcept
    {
        return store_.tokens(s);
    }
    /// Outgoing edges of s, ascending by transition id.
    [[nodiscard]] std::span<const state_space_edge> successors(state_id s) const noexcept
    {
        return {edges_.data() + edge_offsets_[s],
                edge_offsets_[s + 1] - edge_offsets_[s]};
    }

    /// Materializes state s as a marking object.
    [[nodiscard]] marking marking_of(state_id s) const;

private:
    friend state_space explore_state_space(const petri_net& net,
                                           const state_space_options& options);
    friend state_space explore_parallel(const petri_net& net,
                                        const parallel_explore_options& options);
    friend void detail::enforce_nonignoring(const petri_net& net,
                                            const stubborn_reduction& reduction,
                                            state_space& space,
                                            const state_space_options& options,
                                            exec::executor* pool);
    friend struct detail::space_access;

    marking_store store_{0};
    std::vector<state_space_edge> edges_;
    /// size state_count()+1; successors of s are edges_[offsets[s]..offsets[s+1]).
    std::vector<std::size_t> edge_offsets_;
    bool truncated_ = false;
    bool unordered_fallback_ = false;
};

/// Breadth-first exploration from the net's initial marking.  Visits exactly
/// the states and edges of the naive reference exploration (reachability.cpp
/// explore_reference), in the same order.
[[nodiscard]] state_space explore_state_space(const petri_net& net,
                                              const state_space_options& options = {});

/// A reusable token-game runner over a dense token vector: one allocation
/// per game, checked enabling, unchecked firing (pn::fire_unchecked).  The
/// schedule-replay loops (qss executability / validity) use this instead of
/// marking objects to avoid per-step allocation and double enabledness
/// checks.
class token_game {
public:
    explicit token_game(const petri_net& net);

    /// Resets the tokens to the net's initial marking.
    void reset();

    [[nodiscard]] bool enabled(transition_id t) const;
    /// Fires t when enabled; returns whether it fired.
    bool try_fire(transition_id t);
    /// Fires the whole sequence; returns the first failing position, or
    /// nullopt when every transition fired.
    std::optional<std::size_t> run(const firing_sequence& sequence);

    /// True when the current tokens equal the initial marking.
    [[nodiscard]] bool at_initial() const;
    [[nodiscard]] const std::vector<std::int64_t>& tokens() const noexcept
    {
        return tokens_;
    }

private:
    const petri_net* net_;
    std::vector<std::int64_t> tokens_;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_STATE_SPACE_HPP
