// fcqss — pn/petri_net.hpp
// The paper's underlying formal model (Sec. 2): a weighted place/transition
// net N = (P, T, F) together with an initial marking.  Instances are built
// through pn::net_builder and immutable afterwards, so analyses can cache
// structural facts safely.
#ifndef FCQSS_PN_PETRI_NET_HPP
#define FCQSS_PN_PETRI_NET_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/ids.hpp"

namespace fcqss::pn {

// The strong index types live in fcqss::; re-export them so dependent
// modules can spell pn::place_id / pn::transition_id.
using fcqss::id_range;
using fcqss::place_id;
using fcqss::transition_id;

/// One weighted arc endpoint seen from a transition: the place and F weight.
struct place_weight {
    place_id place;
    std::int64_t weight = 1;

    friend bool operator==(const place_weight&, const place_weight&) = default;
};

/// One weighted arc endpoint seen from a place: the transition and F weight.
struct transition_weight {
    transition_id transition;
    std::int64_t weight = 1;

    friend bool operator==(const transition_weight&, const transition_weight&) = default;
};

/// Immutable weighted Petri net with named nodes and an initial marking.
///
/// Terminology follows the paper: for a node x, the *preset* is the set of
/// nodes with an arc into x and the *postset* the set of nodes x arcs into.
/// A place with |postset| > 1 is a *choice* (conflict); with |preset| > 1 a
/// *merge*.  Transitions/places with empty presets are *sources*, with empty
/// postsets *sinks*.
class petri_net {
public:
    /// Number of places |P|.
    [[nodiscard]] std::size_t place_count() const noexcept { return place_names_.size(); }
    /// Number of transitions |T|.
    [[nodiscard]] std::size_t transition_count() const noexcept
    {
        return transition_names_.size();
    }
    /// Number of distinct arcs in F.
    [[nodiscard]] std::size_t arc_count() const noexcept { return arc_count_; }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] const std::string& place_name(place_id p) const;
    [[nodiscard]] const std::string& transition_name(transition_id t) const;

    /// Looks a place up by name; the id is invalid when absent.
    [[nodiscard]] place_id find_place(const std::string& name) const;
    /// Looks a transition up by name; the id is invalid when absent.
    [[nodiscard]] transition_id find_transition(const std::string& name) const;

    /// Input places of t with weights: the vector Pre[., t].
    [[nodiscard]] const std::vector<place_weight>& inputs(transition_id t) const;
    /// Output places of t with weights: the vector Post[., t].
    [[nodiscard]] const std::vector<place_weight>& outputs(transition_id t) const;
    /// Transitions that consume from p (the postset of p).
    [[nodiscard]] const std::vector<transition_weight>& consumers(place_id p) const;
    /// Transitions that produce into p (the preset of p).
    [[nodiscard]] const std::vector<transition_weight>& producers(place_id p) const;

    /// F(p, t): the arc weight from place to transition, 0 when absent.
    [[nodiscard]] std::int64_t arc_weight(place_id p, transition_id t) const;
    /// F(t, p): the arc weight from transition to place, 0 when absent.
    [[nodiscard]] std::int64_t arc_weight(transition_id t, place_id p) const;

    /// Initial token count of place p.
    [[nodiscard]] std::int64_t initial_tokens(place_id p) const;
    /// The full initial marking as a vector indexed by place.
    [[nodiscard]] const std::vector<std::int64_t>& initial_marking_vector() const noexcept
    {
        return initial_marking_;
    }

    /// All place ids, 0..|P|-1, as a zero-cost view (convenience for
    /// range-for; nothing is materialized).
    [[nodiscard]] id_range<place_id> places() const noexcept
    {
        return id_range<place_id>{place_count()};
    }
    /// All transition ids, 0..|T|-1, as a zero-cost view.
    [[nodiscard]] id_range<transition_id> transitions() const noexcept
    {
        return id_range<transition_id>{transition_count()};
    }

private:
    friend class net_builder;

    std::string name_;
    std::vector<std::string> place_names_;
    std::vector<std::string> transition_names_;
    std::unordered_map<std::string, place_id> place_by_name_;
    std::unordered_map<std::string, transition_id> transition_by_name_;
    std::vector<std::vector<place_weight>> transition_inputs_;
    std::vector<std::vector<place_weight>> transition_outputs_;
    std::vector<std::vector<transition_weight>> place_consumers_;
    std::vector<std::vector<transition_weight>> place_producers_;
    std::vector<std::int64_t> initial_marking_;
    std::size_t arc_count_ = 0;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_PETRI_NET_HPP
