#include "pn/parallel_explore.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "exec/chunk_pager.hpp"
#include "exec/executor.hpp"
#include "exec/shard_queues.hpp"
#include "obs/obs.hpp"

// Determinism
// -----------
// The explorer is level-synchronous: every BFS level runs as a fixed phase
// sequence with barriers (the executor's for_each_index) in between.
//
//   A  expand    parallel over contiguous frontier chunks: compute each
//                successor's Zobrist hash read-only from the parent's token
//                row and the firing's sparse delta list, and route a
//                16-byte candidate (hash, parent, transition) to the shard
//                owning the hash prefix through per-(chunk, shard) outboxes
//                — no shared mutable state and no token copies at all.
//   B  dedup     parallel over shards: each owner drains the outboxes
//                aimed at it and resolves candidates against its private
//                store with marking_store::intern_with — equality against a
//                stored vector is a delta-aware compare of (parent row +
//                firing delta), and an accepted insertion reconstructs the
//                tokens straight into the arena slot, so a candidate's
//                counts are never materialized anywhere else.  Doomed
//                fresh candidates (the flood at a budget-crossing level)
//                cost one table probe each, exactly like the sequential
//                engine's failed interns: each shard stops interning after
//                `available` fresh markings, because a candidate whose
//                shard-local discovery rank is past the global budget
//                remainder cannot win globally either.  Chunks are drained
//                in ascending order, and chunk ranges / per-parent
//                successor lists are themselves ascending, so each shard
//                meets candidates in ascending (parent id, transition id)
//                order — the first occurrence of a fresh marking is its
//                sequential discovery edge, and the shard's fresh list ends
//                up sorted by that key.
//   C  renumber  sequential, cheap: k-way-merge the shards' fresh lists by
//                (parent id, transition id) and hand out global ids in that
//                order.  This is sequential BFS discovery order, so ids are
//                independent of the thread/shard count and equal to the
//                sequential engine's.  Fresh markings beyond the budget
//                keep an invalid global id forever, exactly like a failed
//                intern in the sequential engine.
//   D  edges     sequential append of this level's CSR rows in parent id
//                order; candidates resolving to an invalid global id are
//                dropped and flagged as truncation.
//   E  publish   parallel over the next frontier: each kept state's token
//                row and hash are written into the *result* store (grown by
//                whole levels, so ids are final and earlier rows never
//                move), and its enabled set is merged incrementally from
//                its discovering parent's set (detail::merge_enabled).
//                Phases A and B of the next level read parent rows straight
//                from the result store — safe because the only writes to it
//                happen here, behind barriers, to slots no other phase
//                reads yet.  This doubles as the output assembly: when the
//                loop ends, the result store already holds every state in
//                global id order and only the lookup table remains to be
//                built (finish_bulk_build).
//
// Small frontiers skip the thread pool entirely (run_indexed): a deep,
// narrow graph — a 10k-level pipeline chain, say — degenerates to the
// sequential engine plus bookkeeping instead of paying three barriers per
// level.
//
// Because every cross-thread effect is separated by a barrier and every
// order-sensitive step runs on deterministic keys, the result is
// bit-identical to explore_state_space() at any thread count, truncation
// included.

namespace fcqss::pn {

namespace {

/// One successor produced in phase A, resolved by its destination shard in
/// phase B.  Tokens are not carried: the resolver rebuilds them on demand
/// from the result-store row of `parent` and the delta list of `via`.
struct candidate {
    std::uint64_t hash;
    state_id parent; ///< global id of the discovering state
    transition_id via;
    state_id resolved = invalid_state; ///< local id in the destination shard
};

/// Handoff buffer for one (expansion chunk, destination shard) pair.
struct outbox {
    std::vector<candidate> cands;
};

/// Reference from a parent's ordered successor list into an outbox.
struct edge_ref {
    std::uint32_t shard;
    std::uint32_t index;
};

/// Per-chunk expansion state, reused across levels.
struct chunk_state {
    std::vector<outbox> to_shard;
    std::vector<edge_ref> refs;           ///< per-parent refs, concatenated
    std::vector<std::uint32_t> ref_count; ///< candidates per parent
    bool saw_over_cap = false;
    /// Stubborn-set scratch; chunks are single-owner per barrier phase, so
    /// per-chunk scratch keeps phase A lock-free under reduction too.
    stubborn_workspace stubborn_ws;
    std::vector<transition_id> reduced;
};

/// A marking first seen this level, keyed by its discovering edge.
struct fresh_entry {
    state_id parent;
    transition_id via;
    state_id local;
};

/// One hash-prefix shard: a private store plus the local -> global id map.
struct shard_state {
    marking_store store;
    std::vector<state_id> global_of_local;
    std::vector<fresh_entry> fresh; ///< this level, ascending (parent, via)

    shard_state(std::size_t width, std::shared_ptr<exec::chunk_pager> pager)
        : store(width, std::move(pager))
    {
    }
};

/// Where a kept global id lives in the shard stores (the copy source for
/// phase E's publish step).
struct locator {
    std::uint32_t shard;
    state_id local;
};

/// (place, token delta) lists now live in detail:: (state_space.cpp) so the
/// sequential engine can record them as cold-row decode deltas too.
using detail::delta_list;
using detail::firing_deltas;

/// The shared spill pager of one exploration run (null when unlimited):
/// every store — result and per-shard — draws chunks from it, so they
/// compete for one --max-bytes budget.
std::shared_ptr<exec::chunk_pager> make_run_pager(std::size_t max_bytes)
{
    if (max_bytes == 0) {
        return nullptr;
    }
    return std::make_shared<exec::chunk_pager>(
        exec::chunk_pager_options{.max_resident_bytes = max_bytes});
}

bool key_less(const fresh_entry& a, const fresh_entry& b)
{
    return a.parent != b.parent ? a.parent < b.parent : a.via < b.via;
}

/// Runs fn(0..count-1) on the pool, or inline when the work is too small to
/// amortize a barrier.  Either path computes the same thing.
template <typename Fn>
void run_indexed(exec::executor& pool, std::size_t count, bool inline_run,
                 const Fn& fn)
{
    if (inline_run) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
    } else {
        pool.for_each_index(count, fn);
    }
}

/// The level-synchronous engine (exploration_order::ordered) — and the
/// exact-truncation fallback for unordered runs whose state budget binds.
state_space explore_leveled(const petri_net& net,
                            const parallel_explore_options& options)
{
    obs::span run_span("explore.parallel");
    const std::size_t width = net.place_count();
    const std::int64_t cap = options.max_tokens_per_place;
    const std::size_t threads = exec::resolve_thread_count(options.threads);
    run_span.arg("threads", static_cast<std::int64_t>(threads));

    std::size_t shard_count = options.shards ? options.shards : 2 * threads;
    std::size_t shard_bits = 0;
    while ((std::size_t{1} << shard_bits) < shard_count) {
        ++shard_bits;
    }
    shard_count = std::size_t{1} << shard_bits;
    // Top hash bits pick the shard; low bits index the shard's table, so the
    // two never alias.
    const auto shard_of = [shard_bits](std::uint64_t hash) -> std::uint32_t {
        return shard_bits == 0 ? 0u
                               : static_cast<std::uint32_t>(hash >> (64 - shard_bits));
    };

    exec::executor pool(threads);
    const std::size_t max_chunks = threads * 4;
    // Frontiers smaller than this run inline: three barriers per level are
    // only worth paying when a level carries real work.
    const std::size_t inline_below = std::max<std::size_t>(64, 2 * threads);

    const std::vector<std::vector<transition_id>> affected =
        detail::affected_transitions(net);
    const std::vector<delta_list> deltas = firing_deltas(net);

    // Stubborn-set reduction: phase A expands only the deadlock-preserving
    // subset of each frontier state's enabled set.  The subset depends on
    // the marking alone (never on thread/shard/chunk assignment), so the
    // determinism argument below is untouched; full enabled sets are still
    // maintained in phase E for the incremental updates.
    std::optional<stubborn_reduction> stubborn;
    if (options.reduction == reduction_kind::stubborn) {
        stubborn.emplace(net, stubborn_options{.strength = options.strength,
                                               .observed_places = options.observed_places});
    }

    const std::shared_ptr<exec::chunk_pager> pager =
        make_run_pager(options.max_bytes);
    std::vector<shard_state> shards;
    shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        shards.emplace_back(width, pager);
    }
    std::vector<chunk_state> chunks(max_chunks);
    for (chunk_state& chunk : chunks) {
        chunk.to_shard.resize(shard_count);
    }

    state_space result;
    marking_store& rstore = detail::space_access::store(result);
    std::vector<state_space_edge>& redges = detail::space_access::edges(result);
    std::vector<std::size_t>& roffsets = detail::space_access::edge_offsets(result);
    rstore = marking_store(width, pager);
    roffsets.push_back(0);
    bool truncated = false;

    // Global id 0 is the root: published into the result store immediately
    // (phases A/B read parent rows from there) and interned into its shard
    // for deduplication.
    const std::vector<std::int64_t>& m0 = net.initial_marking_vector();
    const std::uint64_t root_hash = marking_store::hash_tokens(m0.data(), width);
    rstore.start_bulk_build(1);
    std::memcpy(rstore.bulk_tokens(0), m0.data(),
                width * sizeof(std::int64_t));
    rstore.set_bulk_hash(0, root_hash);
    std::vector<locator> locators;
    {
        const std::uint32_t s = shard_of(root_hash);
        const auto [local, inserted] = shards[s].store.intern(m0.data(), root_hash);
        assert(inserted);
        static_cast<void>(inserted);
        shards[s].global_of_local.push_back(0);
        locators.push_back({s, local});
    }
    std::size_t state_count = 1;

    // See explore_state_space: the root is taken as given; when it already
    // exceeds the token cap somewhere, its successors get a full-vector scan.
    bool root_over_cap = false;
    for (std::int64_t count : m0) {
        if (count > cap) {
            root_over_cap = true;
            break;
        }
    }

    // Enabled sets of the current frontier, then of the next one; the
    // root's is the one full scan.
    std::vector<std::vector<transition_id>> cur_enabled(1);
    for (transition_id t : net.transitions()) {
        if (detail::enabled_in(net, m0.data(), t)) {
            cur_enabled[0].push_back(t);
        }
    }
    std::vector<std::vector<transition_id>> next_enabled;
    std::vector<fresh_entry> kept; ///< this level's renumbered fresh states

    // Telemetry tallies, accumulated in locals and flushed at level / run
    // boundaries so the phase loops never touch an atomic (obs/obs.hpp).
    // States and edges flush per level: a concurrent snapshot() sees them
    // grow monotonically while the run is in flight.
    std::uint64_t obs_phase_a_ns = 0;
    std::uint64_t obs_phase_b_ns = 0;
    std::uint64_t obs_phase_e_ns = 0;
    std::uint64_t obs_levels = 0;
    std::uint64_t obs_inline_levels = 0;
    std::uint64_t obs_candidates = 0;
    std::size_t obs_flushed_states = 0;
    std::size_t obs_flushed_edges = 0;
    const auto flush_progress = [&] {
        if (!obs::stats_enabled()) {
            return;
        }
        static obs::counter& states_counter = obs::get_counter("pn.explore.states");
        static obs::counter& edges_counter = obs::get_counter("pn.explore.edges");
        states_counter.add(rstore.size() - obs_flushed_states);
        edges_counter.add(redges.size() - obs_flushed_edges);
        obs_flushed_states = rstore.size();
        obs_flushed_edges = redges.size();
    };

    std::size_t level_begin = 0;
    std::size_t level_end = 1;
    while (level_begin < level_end) {
        const std::size_t frontier = level_end - level_begin;
        const bool inline_run = frontier < inline_below;
        const std::size_t chunk_count =
            inline_run ? 1 : std::min(frontier, max_chunks);
        const auto chunk_range = [&](std::size_t c) {
            return std::pair{level_begin + frontier * c / chunk_count,
                             level_begin + frontier * (c + 1) / chunk_count};
        };
        // Budget remainder before this level's fresh markings are counted;
        // phases B and C both key off it.
        const std::size_t available =
            state_count >= options.max_states ? 0 : options.max_states - state_count;

        ++obs_levels;
        obs_inline_levels += inline_run ? 1 : 0;
        const bool obs_timing = obs::stats_enabled();

        // Phase A: expand the frontier into per-(chunk, shard) outboxes.
        const std::uint64_t obs_a_begin = obs_timing ? obs::now_ns() : 0;
        run_indexed(pool, chunk_count, inline_run, [&](std::size_t c) {
            obs::span phase_span("phase.expand", "chunk",
                                 static_cast<std::int64_t>(c));
            chunk_state& chunk = chunks[c];
            for (outbox& ob : chunk.to_shard) {
                ob.cands.clear();
            }
            chunk.refs.clear();
            chunk.ref_count.clear();
            chunk.saw_over_cap = false;

            const auto [begin, end] = chunk_range(c);
            for (std::size_t p = begin; p < end; ++p) {
                const std::int64_t* row =
                    rstore.tokens(static_cast<state_id>(p)).data();
                const std::uint64_t row_hash =
                    rstore.stored_hash(static_cast<state_id>(p));
                const bool full_cap_scan = root_over_cap && p == 0;

                const std::vector<transition_id>& enabled =
                    cur_enabled[p - level_begin];
                const std::vector<transition_id>* expand = &enabled;
                if (stubborn) {
                    stubborn->reduce(row, enabled, chunk.stubborn_ws, chunk.reduced);
                    expand = &chunk.reduced;
                }
                std::uint32_t emitted = 0;
                for (transition_id t : *expand) {
                    std::uint64_t next_hash = row_hash;
                    bool over_cap = false;
                    const delta_list& delta = deltas[t.index()];
                    for (const auto& [place, d] : delta) {
                        const std::int64_t now = row[place];
                        const std::int64_t then = now + d;
                        next_hash ^= marking_store::component_mix(place, now) ^
                                     marking_store::component_mix(place, then);
                        over_cap |= d > 0 && then > cap;
                    }
                    if (full_cap_scan && !over_cap) {
                        // Over-cap root counts stay over cap unless lowered.
                        std::size_t at = 0;
                        for (std::size_t place = 0; place < width; ++place) {
                            std::int64_t then = row[place];
                            if (at < delta.size() && delta[at].first == place) {
                                then += delta[at++].second;
                            }
                            if (then > cap) {
                                over_cap = true;
                                break;
                            }
                        }
                    }

                    if (over_cap) {
                        chunk.saw_over_cap = true;
                    } else {
                        const std::uint32_t dest = shard_of(next_hash);
                        outbox& ob = chunk.to_shard[dest];
                        ob.cands.push_back({next_hash, static_cast<state_id>(p), t,
                                            invalid_state});
                        chunk.refs.push_back(
                            {dest, static_cast<std::uint32_t>(ob.cands.size() - 1)});
                        ++emitted;
                    }
                }
                chunk.ref_count.push_back(emitted);
            }
            phase_span.arg("candidates",
                           static_cast<std::int64_t>(chunk.refs.size()));
        });
        if (obs_timing) {
            obs_phase_a_ns += obs::now_ns() - obs_a_begin;
            for (std::size_t c = 0; c < chunk_count; ++c) {
                obs_candidates += chunks[c].refs.size();
            }
        }

        // Phase B: every shard drains its inboxes and resolves candidates.
        const std::uint64_t obs_b_begin = obs_timing ? obs::now_ns() : 0;
        run_indexed(pool, shard_count, inline_run, [&](std::size_t s) {
            obs::span phase_span("phase.dedup", "shard",
                                 static_cast<std::int64_t>(s));
            shard_state& shard = shards[s];
            shard.fresh.clear();
            // Fresh markings past the budget remainder cannot be kept (the
            // shard-local discovery rank is a lower bound on the global
            // one), so stop interning there and let them resolve invalid.
            const std::size_t intern_limit = shard.store.size() + available;
            for (std::size_t c = 0; c < chunk_count; ++c) {
                for (candidate& cand : chunks[c].to_shard[s].cands) {
                    const std::int64_t* row =
                        rstore.tokens(cand.parent).data();
                    const delta_list& delta = deltas[cand.via.index()];
                    // stored == row + delta, compared as memcmp runs between
                    // the (few) delta places so the common long stretches
                    // stay vectorized.
                    const auto equals = [&](const std::int64_t* stored) {
                        std::size_t prev = 0;
                        for (const auto& [place, d] : delta) {
                            if (std::memcmp(stored + prev, row + prev,
                                            (place - prev) * sizeof(std::int64_t)) !=
                                0) {
                                return false;
                            }
                            if (stored[place] != row[place] + d) {
                                return false;
                            }
                            prev = place + 1;
                        }
                        return std::memcmp(stored + prev, row + prev,
                                           (width - prev) * sizeof(std::int64_t)) == 0;
                    };
                    const auto fill = [&](std::int64_t* slot) {
                        std::memcpy(slot, row, width * sizeof(std::int64_t));
                        for (const auto& [place, d] : delta) {
                            slot[place] += d;
                        }
                    };
                    const auto [local, inserted] =
                        shard.store.intern_with(cand.hash, intern_limit, equals, fill);
                    cand.resolved = local;
                    if (inserted) {
                        assert(shard.fresh.empty() ||
                               key_less(shard.fresh.back(),
                                        {cand.parent, cand.via, local}));
                        shard.fresh.push_back({cand.parent, cand.via, local});
                        shard.global_of_local.push_back(invalid_state);
                    }
                }
            }
            phase_span.arg("fresh", static_cast<std::int64_t>(shard.fresh.size()));
        });
        if (obs_timing) {
            obs_phase_b_ns += obs::now_ns() - obs_b_begin;
        }

        // Phase C: renumber this level's fresh markings in sequential
        // discovery order — a k-way merge of the shards' sorted fresh lists
        // — and apply the state budget.
        std::size_t total_fresh = 0;
        for (const shard_state& shard : shards) {
            total_fresh += shard.fresh.size();
        }
        const std::size_t keep = std::min(total_fresh, available);

        kept.clear();
        std::vector<std::size_t> head(shard_count, 0);
        for (std::size_t i = 0; i < keep; ++i) {
            std::size_t best = shard_count;
            for (std::size_t s = 0; s < shard_count; ++s) {
                if (head[s] < shards[s].fresh.size() &&
                    (best == shard_count ||
                     key_less(shards[s].fresh[head[s]],
                              shards[best].fresh[head[best]]))) {
                    best = s;
                }
            }
            const fresh_entry entry = shards[best].fresh[head[best]++];
            const state_id gid = static_cast<state_id>(state_count++);
            shards[best].global_of_local[entry.local] = gid;
            locators.push_back({static_cast<std::uint32_t>(best), entry.local});
            kept.push_back(entry);
        }

        // Phase D: append this level's CSR rows in parent id order.
        for (std::size_t c = 0; c < chunk_count; ++c) {
            const chunk_state& chunk = chunks[c];
            truncated |= chunk.saw_over_cap;
            std::size_t at = 0;
            for (const std::uint32_t count : chunk.ref_count) {
                for (std::uint32_t r = 0; r < count; ++r) {
                    const edge_ref ref = chunk.refs[at++];
                    const candidate& cand = chunk.to_shard[ref.shard].cands[ref.index];
                    const state_id to =
                        cand.resolved == invalid_state
                            ? invalid_state
                            : shards[ref.shard].global_of_local[cand.resolved];
                    if (to == invalid_state) {
                        truncated = true;
                    } else {
                        redges.push_back({cand.via, to});
                    }
                }
                roffsets.push_back(redges.size());
            }
        }

        // Phase E: publish the kept states into the result store and build
        // their enabled sets.
        next_enabled.assign(keep, {});
        rstore.grow_bulk_build(state_count);
        const std::uint64_t obs_e_begin = obs_timing ? obs::now_ns() : 0;
        if (keep != 0) {
            const std::size_t publish_chunks =
                inline_run ? 1 : std::min(keep, max_chunks);
            run_indexed(pool, publish_chunks, inline_run, [&](std::size_t c) {
                obs::span phase_span("phase.publish", "chunk",
                                     static_cast<std::int64_t>(c));
                const std::size_t begin = keep * c / publish_chunks;
                const std::size_t end = keep * (c + 1) / publish_chunks;
                for (std::size_t i = begin; i < end; ++i) {
                    const fresh_entry& entry = kept[i];
                    const state_id gid = static_cast<state_id>(level_end + i);
                    const locator loc = locators[gid];
                    const marking_store& store = shards[loc.shard].store;
                    std::memcpy(rstore.bulk_tokens(gid),
                                store.tokens(loc.local).data(),
                                width * sizeof(std::int64_t));
                    rstore.set_bulk_hash(gid, store.stored_hash(loc.local));
                    detail::merge_enabled(net, cur_enabled[entry.parent - level_begin],
                                          affected[entry.via.index()],
                                          rstore.tokens(gid).data(),
                                          next_enabled[i]);
                }
            });
        }
        if (obs_timing) {
            obs_phase_e_ns += obs::now_ns() - obs_e_begin;
        }
        flush_progress();
        cur_enabled.swap(next_enabled);
        level_begin = level_end;
        level_end = state_count;
    }

    // The arena already holds every state in global id order; only the
    // lookup table is left to build.
    rstore.finish_bulk_build();
    detail::space_access::truncated(result) = truncated;

    if (obs::stats_enabled()) {
        obs::get_counter("pn.par.phase_a_ns", "ns").add(obs_phase_a_ns);
        obs::get_counter("pn.par.phase_b_ns", "ns").add(obs_phase_b_ns);
        obs::get_counter("pn.par.phase_e_ns", "ns").add(obs_phase_e_ns);
        obs::get_counter("pn.explore.levels").add(obs_levels);
        obs::get_counter("pn.explore.inline_levels").add(obs_inline_levels);
        obs::get_counter("pn.par.candidates").add(obs_candidates);
        std::size_t shard_total = 0;
        std::size_t shard_max = 0;
        for (std::size_t s = 0; s < shard_count; ++s) {
            const std::size_t interned = shards[s].store.size();
            shard_total += interned;
            shard_max = std::max(shard_max, interned);
            obs::get_counter("pn.par.shard." + std::to_string(s) + ".states")
                .add(interned);
            detail::flush_store_obs(shards[s].store);
        }
        // max-over-mean of the shard store sizes: 1.0 is a perfect hash
        // split, k means the fullest shard holds k times its fair share.
        const double mean = static_cast<double>(shard_total) /
                            static_cast<double>(shard_count);
        obs::get_gauge("pn.par.shard_imbalance", "ratio")
            .set(mean == 0.0 ? 0.0 : static_cast<double>(shard_max) / mean);
        if (truncated) {
            obs::get_counter("pn.explore.truncations").add(1);
        }
    }

    if (stubborn && options.strength == reduction_strength::ltl_x) {
        // The base graph above is bit-identical to the sequential engine's,
        // and the fix-up interns in a deterministic sequential order no
        // matter how its candidate batches are generated (see
        // enforce_nonignoring), so the thread-count-independence guarantee
        // carries through.
        detail::enforce_nonignoring(net, *stubborn, result,
                                    {.max_states = options.max_states,
                                     .max_tokens_per_place =
                                         options.max_tokens_per_place,
                                     .reduction = options.reduction,
                                     .strength = options.strength,
                                     .observed_places = options.observed_places},
                                    &pool);
    }
    flush_progress();
    detail::flush_store_obs(rstore);
    if (pager != nullptr) {
        pager->flush_obs();
    }
    run_span.arg("states", static_cast<std::int64_t>(rstore.size()));
    return result;
}

// Unordered mode
// --------------
// No barriers: shards run free over per-shard inbox queues with work
// stealing (exec/shard_queues.hpp).  A worker claims a shard, resolves the
// candidate batches queued for it, expands the follow-on frontier states it
// interned, flushes outgoing candidates to the destination shards, releases
// the shard and claims the next one — expansion and dedup of different
// regions overlap freely across BFS levels.
//
// Determinism still holds, in two steps:
//
//   set   The *set* of interned markings and the *multiset* of edges are
//         schedule-independent: a candidate's tokens, hash, cap verdict and
//         destination shard are pure functions of (parent tokens, firing),
//         the expanded (reduced) edge set of a marking is a deterministic
//         function of its tokens alone (stubborn_reduction::reduce), and
//         the incremental enabled-set merge is path-independent — it
//         computes exactly En(child) whichever discovering edge ran it.
//         Every marking is expanded exactly once by whichever worker owns
//         its shard when it comes off the frontier, so the run produces the
//         same states and edges no matter the interleaving.
//   ids   One renumber pass restores canonical ids: BFS over the *final*
//         graph, children visited in ascending transition order, assigns
//         each state the rank sequential BFS discovers it at — by induction
//         over discovery order, since both walks expand the same
//         deterministic per-state edge sets in the same order.
//
// Budgets: token-cap drops are per-candidate deterministic, so they commute
// with scheduling.  The state budget does not — the sequential prefix of a
// crossing level depends on discovery order a free run never sees — so the
// run counts interned states globally, and the first intern past max_states
// aborts the run (shard_queues::abort); the free result is discarded and
// the leveled engine re-runs with exact truncation semantics.  A binding
// budget caps the useful speedup anyway; correctness never degrades.
//
// Cross-shard candidates carry stable pointers instead of tokens: the
// parent's arena row (marking_store chunks never move) and its enabled set
// (a deque element, address-stable under growth).  The shard_queues mutex
// orders the producer's writes before any consumer's reads, and claims hand
// each shard's state to exactly one worker at a time, so the hot paths stay
// lock-free and TSan-clean.

/// One successor travelling between shards in unordered mode.
struct ucand {
    std::uint64_t hash;
    /// Parent's arena token row — stable for the life of the run.
    const std::int64_t* parent_row;
    /// Parent's full enabled set — deque-resident, address-stable.
    const std::vector<transition_id>* parent_enabled;
    std::uint32_t parent_shard;
    state_id parent_local;
    transition_id via;
};

/// One discovered edge, recorded by the shard that owns the *child*.
struct uedge {
    std::uint32_t parent_shard;
    state_id parent_local;
    transition_id via;
    state_id child_local;
};

/// One shard of the unordered run; every member is touched only under a
/// shard_queues claim, except the stable rows/vectors candidates point at.
struct ushard {
    marking_store store;
    /// Enabled set per local state; a deque, so elements referenced by
    /// in-flight candidates never move as the shard grows.
    std::deque<std::vector<transition_id>> enabled;
    std::vector<state_id> frontier; ///< interned but not yet expanded
    std::vector<uedge> edges;       ///< edges whose child lives here
    std::vector<std::vector<ucand>> out; ///< per-destination outboxes
    bool saw_over_cap = false;
    stubborn_workspace ws;
    std::vector<transition_id> reduced;

    ushard(std::size_t width, std::shared_ptr<exec::chunk_pager> pager)
        : store(width, std::move(pager))
    {
    }
};

state_space explore_unordered(const petri_net& net,
                              const parallel_explore_options& options)
{
    obs::span run_span("explore.unordered");
    const std::size_t width = net.place_count();
    const std::int64_t cap = options.max_tokens_per_place;
    const std::size_t threads = exec::resolve_thread_count(options.threads);
    run_span.arg("threads", static_cast<std::int64_t>(threads));

    // A budget that cannot even hold the root: the leveled engine owns the
    // truncation semantics of that corner.
    if (options.max_states < 1) {
        state_space fallback = explore_leveled(net, options);
        detail::space_access::unordered_fallback(fallback) = true;
        return fallback;
    }

    std::size_t shard_count = options.shards ? options.shards : 2 * threads;
    std::size_t shard_bits = 0;
    while ((std::size_t{1} << shard_bits) < shard_count) {
        ++shard_bits;
    }
    shard_count = std::size_t{1} << shard_bits;
    const auto shard_of = [shard_bits](std::uint64_t hash) -> std::uint32_t {
        return shard_bits == 0 ? 0u
                               : static_cast<std::uint32_t>(hash >> (64 - shard_bits));
    };

    const std::vector<std::vector<transition_id>> affected =
        detail::affected_transitions(net);
    const std::vector<delta_list> deltas = firing_deltas(net);

    std::optional<stubborn_reduction> stubborn;
    if (options.reduction == reduction_kind::stubborn) {
        stubborn.emplace(net, stubborn_options{.strength = options.strength,
                                               .observed_places = options.observed_places});
    }

    // A deque: ushard is neither copyable nor nothrow-movable (the store's
    // arena, the enabled deque), and elements must never relocate anyway —
    // in-flight candidates point into them.
    const std::shared_ptr<exec::chunk_pager> pager =
        make_run_pager(options.max_bytes);
    std::deque<ushard> shards;
    for (std::size_t s = 0; s < shard_count; ++s) {
        shards.emplace_back(width, pager);
        shards.back().out.resize(shard_count);
    }

    exec::executor pool(threads);
    exec::shard_queues<ucand> queues(shard_count);
    std::atomic<std::size_t> interned_total{1}; // the root
    std::atomic<bool> budget_exceeded{false};

    const std::vector<std::int64_t>& m0 = net.initial_marking_vector();
    const std::uint64_t root_hash = marking_store::hash_tokens(m0.data(), width);
    const std::uint32_t root_shard = shard_of(root_hash);
    {
        ushard& sh = shards[root_shard];
        const auto [local, inserted] = sh.store.intern(m0.data(), root_hash);
        assert(inserted && local == 0);
        static_cast<void>(local);
        static_cast<void>(inserted);
        sh.enabled.emplace_back();
        for (transition_id t : net.transitions()) {
            if (detail::enabled_in(net, m0.data(), t)) {
                sh.enabled.back().push_back(t);
            }
        }
        sh.frontier.push_back(0);
    }
    // See explore_state_space: the root is taken as given; when it already
    // exceeds the token cap somewhere, its successors get a full-vector scan.
    bool root_over_cap = false;
    for (std::int64_t count : m0) {
        if (count > cap) {
            root_over_cap = true;
            break;
        }
    }
    queues.seed(root_shard, 1);

    // Remote outboxes flush to the destination's inbox at this size; the
    // final flush at release time sends the remainder.
    constexpr std::size_t flush_at = 256;

    // Per-worker telemetry tallies, folded into obs after the run so the
    // hot loops never touch an atomic.
    std::vector<std::uint64_t> obs_claims(threads, 0);
    std::vector<std::uint64_t> obs_steals(threads, 0);
    std::vector<std::uint64_t> obs_cands(threads, 0);

    // Resolves one candidate against the claimed shard: intern (delta-aware
    // equality and fill, as in the leveled engine's phase B), record the
    // edge, and on a fresh marking build its enabled set and queue it for
    // expansion.  The first intern past max_states aborts the whole run.
    const auto resolve = [&](ushard& sh, const ucand& cand) {
        const std::int64_t* row = cand.parent_row;
        const delta_list& delta = deltas[cand.via.index()];
        const auto equals = [&](const std::int64_t* stored) {
            std::size_t prev = 0;
            for (const auto& [place, d] : delta) {
                if (std::memcmp(stored + prev, row + prev,
                                (place - prev) * sizeof(std::int64_t)) != 0) {
                    return false;
                }
                if (stored[place] != row[place] + d) {
                    return false;
                }
                prev = place + 1;
            }
            return std::memcmp(stored + prev, row + prev,
                               (width - prev) * sizeof(std::int64_t)) == 0;
        };
        const auto fill = [&](std::int64_t* slot) {
            std::memcpy(slot, row, width * sizeof(std::int64_t));
            for (const auto& [place, d] : delta) {
                slot[place] += d;
            }
        };
        const auto [local, inserted] = sh.store.intern_with(
            cand.hash, ~std::size_t{0}, equals, fill);
        sh.edges.push_back({cand.parent_shard, cand.parent_local, cand.via, local});
        if (!inserted) {
            return;
        }
        const std::size_t total =
            interned_total.fetch_add(1, std::memory_order_relaxed) + 1;
        if (total > options.max_states) {
            budget_exceeded.store(true, std::memory_order_relaxed);
            queues.abort();
            return;
        }
        sh.enabled.emplace_back();
        detail::merge_enabled(net, *cand.parent_enabled, affected[cand.via.index()],
                              sh.store.tokens(local).data(), sh.enabled.back());
        sh.frontier.push_back(local);
        queues.add_work(1);
    };

    // Expands one owned state into per-destination candidates, exactly the
    // leveled engine's phase A per-state step (incremental Zobrist hash,
    // per-delta cap check, full scan off an over-cap root, stubborn subset).
    const auto expand = [&](ushard& sh, std::uint32_t me, state_id local,
                            std::uint64_t& cand_tally) {
        const std::int64_t* row = sh.store.tokens(local).data();
        const std::uint64_t row_hash = sh.store.stored_hash(local);
        const bool full_cap_scan = root_over_cap && me == root_shard && local == 0;
        const std::vector<transition_id>& enabled = sh.enabled[local];
        const std::vector<transition_id>* fire = &enabled;
        if (stubborn) {
            stubborn->reduce(row, enabled, sh.ws, sh.reduced);
            fire = &sh.reduced;
        }
        for (transition_id t : *fire) {
            std::uint64_t next_hash = row_hash;
            bool over_cap = false;
            const delta_list& delta = deltas[t.index()];
            for (const auto& [place, d] : delta) {
                const std::int64_t now = row[place];
                const std::int64_t then = now + d;
                next_hash ^= marking_store::component_mix(place, now) ^
                             marking_store::component_mix(place, then);
                over_cap |= d > 0 && then > cap;
            }
            if (full_cap_scan && !over_cap) {
                std::size_t at = 0;
                for (std::size_t place = 0; place < width; ++place) {
                    std::int64_t then = row[place];
                    if (at < delta.size() && delta[at].first == place) {
                        then += delta[at++].second;
                    }
                    if (then > cap) {
                        over_cap = true;
                        break;
                    }
                }
            }
            if (over_cap) {
                sh.saw_over_cap = true;
                continue;
            }
            ++cand_tally;
            const std::uint32_t dest = shard_of(next_hash);
            sh.out[dest].push_back(
                {next_hash, row, &enabled, me, local, t});
            if (dest != me && sh.out[dest].size() >= flush_at) {
                queues.push(dest, std::move(sh.out[dest]));
                sh.out[dest].clear();
            }
        }
    };

    const auto worker = [&](std::size_t w) {
        const std::size_t home = shard_count * w / threads;
        const std::size_t home_end = shard_count * (w + 1) / threads;
        std::vector<ucand> self;
        while (auto claimed = queues.claim_work(home)) {
            const auto me = static_cast<std::uint32_t>(claimed->shard);
            ushard& sh = shards[me];
            ++obs_claims[w];
            obs_steals[w] += (me < home || me >= home_end) ? 1 : 0;
            std::size_t retired = 0;
            for (std::vector<ucand>& batch : claimed->batches) {
                for (const ucand& cand : batch) {
                    if (budget_exceeded.load(std::memory_order_relaxed)) {
                        break;
                    }
                    resolve(sh, cand);
                }
                retired += batch.size();
            }
            // Drain follow-on work while we own the shard: self-routed
            // candidates first (they may dedup against states about to be
            // expanded), then the frontier.
            for (;;) {
                if (budget_exceeded.load(std::memory_order_relaxed)) {
                    break;
                }
                if (!sh.out[me].empty()) {
                    self.clear();
                    self.swap(sh.out[me]);
                    for (const ucand& cand : self) {
                        if (budget_exceeded.load(std::memory_order_relaxed)) {
                            break;
                        }
                        resolve(sh, cand);
                    }
                    continue;
                }
                if (sh.frontier.empty()) {
                    break;
                }
                const state_id local = sh.frontier.back();
                sh.frontier.pop_back();
                expand(sh, me, local, obs_cands[w]);
                ++retired;
            }
            for (std::uint32_t dest = 0; dest < shard_count; ++dest) {
                if (dest != me && !sh.out[dest].empty()) {
                    queues.push(dest, std::move(sh.out[dest]));
                    sh.out[dest].clear();
                }
            }
            queues.release(me);
            queues.finish_work(retired);
        }
    };
    pool.for_each_index(threads, worker);

    if (budget_exceeded.load(std::memory_order_relaxed)) {
        // The reachable set outgrew max_states: only a discovery-ordered
        // run knows which prefix survives, so the free run's result is
        // unusable.  Discard it and pay for the exact answer.
        if (obs::stats_enabled()) {
            obs::get_counter("pn.unord.budget_fallbacks").add(1);
        }
        run_span.arg("budget_fallback", 1);
        state_space fallback = explore_leveled(net, options);
        detail::space_access::unordered_fallback(fallback) = true;
        return fallback;
    }

    // Assembly.  Temporary ids concatenate the shard stores; a counting
    // sort lays the edges out as a CSR over temp ids, each row sorted by
    // transition; the BFS renumber pass then rewrites both to canonical
    // sequential ids.
    obs::span assembly_span("explore.unordered.assembly");
    std::vector<std::size_t> base(shard_count + 1, 0);
    for (std::size_t s = 0; s < shard_count; ++s) {
        base[s + 1] = base[s] + shards[s].store.size();
    }
    const std::size_t total = base[shard_count];

    std::vector<std::size_t> row_begin(total + 1, 0);
    for (std::size_t s = 0; s < shard_count; ++s) {
        for (const uedge& e : shards[s].edges) {
            ++row_begin[base[e.parent_shard] + e.parent_local + 1];
        }
    }
    for (std::size_t i = 0; i < total; ++i) {
        row_begin[i + 1] += row_begin[i];
    }
    struct temp_edge {
        transition_id via{0};
        std::size_t child = 0;
    };
    std::vector<temp_edge> temp_edges(row_begin[total]);
    {
        std::vector<std::size_t> cursor(row_begin.begin(), row_begin.end() - 1);
        for (std::size_t s = 0; s < shard_count; ++s) {
            for (const uedge& e : shards[s].edges) {
                const std::size_t p = base[e.parent_shard] + e.parent_local;
                temp_edges[cursor[p]++] = {e.via, base[s] + e.child_local};
            }
        }
    }
    // Rows are disjoint slices: sort them in parallel.  Each row holds at
    // most one edge per transition (states expand exactly once), so the
    // order is total.
    if (total != 0) {
        const std::size_t sort_chunks = std::min<std::size_t>(total, threads * 4);
        pool.for_each_index(sort_chunks, [&](std::size_t c) {
            const std::size_t begin = total * c / sort_chunks;
            const std::size_t end = total * (c + 1) / sort_chunks;
            for (std::size_t p = begin; p < end; ++p) {
                std::sort(temp_edges.begin() +
                              static_cast<std::ptrdiff_t>(row_begin[p]),
                          temp_edges.begin() +
                              static_cast<std::ptrdiff_t>(row_begin[p + 1]),
                          [](const temp_edge& a, const temp_edge& b) {
                              return a.via < b.via;
                          });
            }
        });
    }

    // BFS renumber over the final graph (children in ascending transition
    // order) == sequential discovery order; see "Determinism still holds"
    // above.  Every interned state was interned off a recorded edge, so the
    // walk covers all of them.
    const std::size_t unseen = total;
    std::vector<std::size_t> new_of_temp(total, unseen);
    std::vector<std::size_t> temp_of_new;
    temp_of_new.reserve(total);
    new_of_temp[base[root_shard]] = 0;
    temp_of_new.push_back(base[root_shard]);
    for (std::size_t i = 0; i < temp_of_new.size(); ++i) {
        const std::size_t p = temp_of_new[i];
        for (std::size_t e = row_begin[p]; e < row_begin[p + 1]; ++e) {
            const std::size_t child = temp_edges[e].child;
            if (new_of_temp[child] == unseen) {
                new_of_temp[child] = temp_of_new.size();
                temp_of_new.push_back(child);
            }
        }
    }
    assert(temp_of_new.size() == total);

    state_space result;
    marking_store& rstore = detail::space_access::store(result);
    std::vector<state_space_edge>& redges = detail::space_access::edges(result);
    std::vector<std::size_t>& roffsets = detail::space_access::edge_offsets(result);
    rstore = marking_store(width, pager);
    // Renumber by adoption: the result store references the shard stores'
    // arena rows in place and takes ownership of the stores themselves, so
    // no marking bytes move (pn.unord.renumber_bytes_moved pins this at 0).
    rstore.start_adopt(total);
    {
        const std::size_t fill_chunks = std::min<std::size_t>(total, threads * 4);
        pool.for_each_index(fill_chunks, [&](std::size_t c) {
            const std::size_t begin = total * c / fill_chunks;
            const std::size_t end = total * (c + 1) / fill_chunks;
            for (std::size_t gid = begin; gid < end; ++gid) {
                const std::size_t p = temp_of_new[gid];
                const std::size_t s = static_cast<std::size_t>(
                    std::upper_bound(base.begin(), base.end(), p) - base.begin() - 1);
                const auto local = static_cast<state_id>(p - base[s]);
                const marking_store& store = shards[s].store;
                rstore.set_adopted(static_cast<state_id>(gid),
                                   store.tokens(local).data(),
                                   store.stored_hash(local));
            }
        });
    }
    // Shard-store tallies flush now — the stores are about to be moved into
    // the result as adoption backing.
    std::size_t shard_states_total = 0;
    std::size_t shard_states_max = 0;
    if (obs::stats_enabled()) {
        for (std::size_t s = 0; s < shard_count; ++s) {
            const std::size_t interned = shards[s].store.size();
            shard_states_total += interned;
            shard_states_max = std::max(shard_states_max, interned);
            obs::get_counter("pn.par.shard." + std::to_string(s) + ".states")
                .add(interned);
            detail::flush_store_obs(shards[s].store);
        }
    }
    {
        std::vector<std::unique_ptr<marking_store>> backing;
        backing.reserve(shard_count);
        for (std::size_t s = 0; s < shard_count; ++s) {
            backing.push_back(
                std::make_unique<marking_store>(std::move(shards[s].store)));
        }
        rstore.finish_adopt(std::move(backing));
    }

    roffsets.reserve(total + 1);
    roffsets.push_back(0);
    redges.reserve(row_begin[total]);
    for (std::size_t gid = 0; gid < total; ++gid) {
        const std::size_t p = temp_of_new[gid];
        for (std::size_t e = row_begin[p]; e < row_begin[p + 1]; ++e) {
            redges.push_back(
                {temp_edges[e].via,
                 static_cast<state_id>(new_of_temp[temp_edges[e].child])});
        }
        roffsets.push_back(redges.size());
    }
    bool truncated = false;
    for (const ushard& sh : shards) {
        truncated |= sh.saw_over_cap;
    }
    detail::space_access::truncated(result) = truncated;
    assembly_span.arg("states", static_cast<std::int64_t>(total));

    if (stubborn && options.strength == reduction_strength::ltl_x) {
        // The renumbered graph equals the sequential engine's, and the
        // fix-up interns in a deterministic sequential order however its
        // candidate batches are generated, so unordered ltl_x results stay
        // bit-identical too.
        detail::enforce_nonignoring(net, *stubborn, result,
                                    {.max_states = options.max_states,
                                     .max_tokens_per_place =
                                         options.max_tokens_per_place,
                                     .reduction = options.reduction,
                                     .strength = options.strength,
                                     .observed_places = options.observed_places},
                                    &pool);
    }

    if (obs::stats_enabled()) {
        std::uint64_t claims = 0;
        std::uint64_t steals = 0;
        std::uint64_t cands = 0;
        for (std::size_t w = 0; w < threads; ++w) {
            claims += obs_claims[w];
            steals += obs_steals[w];
            cands += obs_cands[w];
        }
        obs::get_counter("pn.unord.claims").add(claims);
        obs::get_counter("pn.unord.steals").add(steals);
        obs::get_counter("pn.par.candidates").add(cands);
        obs::get_counter("pn.explore.states").add(rstore.size());
        obs::get_counter("pn.explore.edges").add(redges.size());
        // Proves the renumber pass stopped copying markings: adoption moves
        // store ownership, not bytes.
        obs::get_counter("pn.unord.renumber_bytes_moved", "bytes").add(0);
        const double mean = static_cast<double>(shard_states_total) /
                            static_cast<double>(shard_count);
        obs::get_gauge("pn.par.shard_imbalance", "ratio")
            .set(mean == 0.0 ? 0.0 : static_cast<double>(shard_states_max) / mean);
        if (truncated) {
            obs::get_counter("pn.explore.truncations").add(1);
        }
    }
    detail::flush_store_obs(rstore);
    if (pager != nullptr) {
        pager->flush_obs();
    }
    run_span.arg("states", static_cast<std::int64_t>(rstore.size()));
    return result;
}

} // namespace

state_space explore_parallel(const petri_net& net,
                             const parallel_explore_options& options)
{
    return options.order == exploration_order::unordered
               ? explore_unordered(net, options)
               : explore_leveled(net, options);
}

} // namespace fcqss::pn
