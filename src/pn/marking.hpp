// fcqss — pn/marking.hpp
// Markings: token-count vectors over the places of a net.
#ifndef FCQSS_PN_MARKING_HPP
#define FCQSS_PN_MARKING_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/ids.hpp"

namespace fcqss::pn {

class petri_net;

/// A marking mu assigns a non-negative token count to every place.
class marking {
public:
    marking() = default;
    /// All-zero marking over `place_count` places.
    explicit marking(std::size_t place_count) : tokens_(place_count, 0) {}
    /// Marking from an explicit vector (validated non-negative).
    explicit marking(std::vector<std::int64_t> tokens);

    [[nodiscard]] std::size_t size() const noexcept { return tokens_.size(); }

    [[nodiscard]] std::int64_t tokens(place_id p) const;
    void set_tokens(place_id p, std::int64_t count);
    /// Adds `delta` tokens (may be negative); throws when the result would be
    /// negative, which indicates an illegal firing.
    void add_tokens(place_id p, std::int64_t delta);

    /// Total token count over all places.
    [[nodiscard]] std::int64_t total() const noexcept;

    [[nodiscard]] const std::vector<std::int64_t>& vector() const noexcept
    {
        return tokens_;
    }

    /// Raw mutable access for engine fast paths (pn::fire_unchecked).
    /// Callers are responsible for keeping every count non-negative.
    [[nodiscard]] std::int64_t* mutable_data() noexcept { return tokens_.data(); }

    /// Componentwise >= comparison (marking covering).
    [[nodiscard]] bool covers(const marking& other) const;

    friend bool operator==(const marking&, const marking&) = default;

    /// Renders as e.g. "(1, 0, 2)"; with a net, as "{p1: 1, p3: 2}" listing
    /// only marked places.
    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] std::string to_string(const petri_net& net) const;

private:
    std::vector<std::int64_t> tokens_;
};

/// The initial marking mu0 of a net, as a marking object.
[[nodiscard]] marking initial_marking(const petri_net& net);

/// Hash functor so markings can key unordered containers (reachability sets).
struct marking_hash {
    std::size_t operator()(const marking& m) const noexcept;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_MARKING_HPP
