#include "pn/builder.hpp"

#include <utility>

#include "base/error.hpp"

namespace fcqss::pn {

net_builder::net_builder(std::string net_name)
{
    net_.name_ = std::move(net_name);
}

place_id net_builder::add_place(const std::string& name, std::int64_t initial_tokens)
{
    if (name.empty()) {
        throw model_error("net_builder: empty place name");
    }
    if (net_.place_by_name_.contains(name)) {
        throw model_error("net_builder: duplicate place name '" + name + "'");
    }
    if (initial_tokens < 0) {
        throw model_error("net_builder: negative initial marking for '" + name + "'");
    }
    const place_id id{static_cast<std::int32_t>(net_.place_count())};
    net_.place_names_.push_back(name);
    net_.place_by_name_.emplace(name, id);
    net_.place_consumers_.emplace_back();
    net_.place_producers_.emplace_back();
    net_.initial_marking_.push_back(initial_tokens);
    return id;
}

transition_id net_builder::add_transition(const std::string& name)
{
    if (name.empty()) {
        throw model_error("net_builder: empty transition name");
    }
    if (net_.transition_by_name_.contains(name)) {
        throw model_error("net_builder: duplicate transition name '" + name + "'");
    }
    const transition_id id{static_cast<std::int32_t>(net_.transition_count())};
    net_.transition_names_.push_back(name);
    net_.transition_by_name_.emplace(name, id);
    net_.transition_inputs_.emplace_back();
    net_.transition_outputs_.emplace_back();
    return id;
}

void net_builder::add_arc(place_id from, transition_id to, std::int64_t weight)
{
    if (!from.valid() || from.index() >= net_.place_count()) {
        throw model_error("net_builder: arc from unknown place");
    }
    if (!to.valid() || to.index() >= net_.transition_count()) {
        throw model_error("net_builder: arc to unknown transition");
    }
    if (weight <= 0) {
        throw model_error("net_builder: arc weight must be positive");
    }
    if (net_.arc_weight(from, to) != 0) {
        throw model_error("net_builder: duplicate arc " + net_.place_name(from) + " -> " +
                          net_.transition_name(to));
    }
    net_.place_consumers_[from.index()].push_back({to, weight});
    net_.transition_inputs_[to.index()].push_back({from, weight});
    ++net_.arc_count_;
}

void net_builder::add_arc(transition_id from, place_id to, std::int64_t weight)
{
    if (!from.valid() || from.index() >= net_.transition_count()) {
        throw model_error("net_builder: arc from unknown transition");
    }
    if (!to.valid() || to.index() >= net_.place_count()) {
        throw model_error("net_builder: arc to unknown place");
    }
    if (weight <= 0) {
        throw model_error("net_builder: arc weight must be positive");
    }
    if (net_.arc_weight(from, to) != 0) {
        throw model_error("net_builder: duplicate arc " + net_.transition_name(from) +
                          " -> " + net_.place_name(to));
    }
    net_.transition_outputs_[from.index()].push_back({to, weight});
    net_.place_producers_[to.index()].push_back({from, weight});
    ++net_.arc_count_;
}

void net_builder::set_initial_tokens(place_id p, std::int64_t tokens)
{
    if (!p.valid() || p.index() >= net_.place_count()) {
        throw model_error("net_builder: set_initial_tokens on unknown place");
    }
    if (tokens < 0) {
        throw model_error("net_builder: negative initial marking");
    }
    net_.initial_marking_[p.index()] = tokens;
}

petri_net net_builder::build() &&
{
    if (net_.place_count() == 0 && net_.transition_count() == 0) {
        throw model_error("net_builder: empty net");
    }
    return std::move(net_);
}

petri_net net_builder::build_copy() const
{
    if (net_.place_count() == 0 && net_.transition_count() == 0) {
        throw model_error("net_builder: empty net");
    }
    return net_;
}

} // namespace fcqss::pn
