#include "pn/reachability.hpp"

#include <deque>

#include "base/error.hpp"
#include "pn/parallel_explore.hpp"
#include "pn/state_space.hpp"

namespace fcqss::pn {

state_space explore_space(const petri_net& net, const reachability_options& options)
{
    if (options.threads == 1) {
        return explore_state_space(
            net, {.max_states = options.max_markings,
                  .max_tokens_per_place = options.max_tokens_per_place,
                  .max_bytes = options.max_bytes,
                  .reduction = options.reduction,
                  .strength = options.strength,
                  .observed_places = options.observed_places});
    }
    return explore_parallel(net,
                            {.threads = options.threads,
                             .max_states = options.max_markings,
                             .max_tokens_per_place = options.max_tokens_per_place,
                             .max_bytes = options.max_bytes,
                             .reduction = options.reduction,
                             .strength = options.strength,
                             .observed_places = options.observed_places,
                             .order = options.order});
}

reachability_graph explore(const petri_net& net, const reachability_options& options)
{
    const state_space space = explore_space(net, options);

    reachability_graph graph;
    graph.truncated = space.truncated();
    graph.nodes.reserve(space.state_count());
    for (state_id s = 0; s < static_cast<state_id>(space.state_count()); ++s) {
        reachability_node node{space.marking_of(s), {}};
        const std::span<const state_space_edge> edges = space.successors(s);
        node.successors.reserve(edges.size());
        for (const state_space_edge& edge : edges) {
            node.successors.emplace_back(edge.via, static_cast<std::size_t>(edge.to));
        }
        graph.nodes.push_back(std::move(node));
    }
    return graph;
}

reachability_graph explore_reference(const petri_net& net,
                                     const reachability_options& options)
{
    reachability_graph graph;
    std::unordered_map<marking, std::size_t, marking_hash> index_of;

    const marking m0 = initial_marking(net);
    graph.nodes.push_back({m0, {}});
    index_of.emplace(m0, 0);

    std::deque<std::size_t> frontier{0};
    while (!frontier.empty()) {
        const std::size_t node_index = frontier.front();
        frontier.pop_front();
        // Copy the marking: the nodes vector may reallocate while we append.
        const marking current = graph.nodes[node_index].state;
        for (transition_id t : net.transitions()) {
            if (!is_enabled(net, current, t)) {
                continue;
            }
            marking next = current;
            fire(net, next, t);

            bool over_cap = false;
            for (std::int64_t tokens : next.vector()) {
                if (tokens > options.max_tokens_per_place) {
                    over_cap = true;
                    break;
                }
            }
            if (over_cap) {
                graph.truncated = true;
                continue;
            }

            const auto [it, inserted] = index_of.emplace(next, graph.nodes.size());
            if (inserted) {
                if (graph.nodes.size() >= options.max_markings) {
                    graph.truncated = true;
                    index_of.erase(it);
                    continue;
                }
                graph.nodes.push_back({std::move(next), {}});
                frontier.push_back(it->second);
            }
            graph.nodes[node_index].successors.emplace_back(t, it->second);
        }
    }
    return graph;
}

std::optional<marking> find_deadlock(const petri_net& net,
                                     const reachability_graph& graph)
{
    for (const reachability_node& node : graph.nodes) {
        if (is_deadlocked(net, node.state)) {
            return node.state;
        }
    }
    return std::nullopt;
}

bool is_reachable(const reachability_graph& graph, const marking& target)
{
    for (const reachability_node& node : graph.nodes) {
        if (node.state == target) {
            return true;
        }
    }
    return false;
}

std::optional<firing_sequence> shortest_path_to(const petri_net& net,
                                                const reachability_graph& graph,
                                                const marking& target)
{
    (void)net;
    if (graph.nodes.empty()) {
        return std::nullopt;
    }
    if (graph.nodes.front().state == target) {
        return firing_sequence{};
    }
    // BFS over the already-built graph, recording the incoming edge.
    constexpr std::size_t unseen = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(graph.nodes.size(), unseen);
    std::vector<transition_id> via(graph.nodes.size());
    std::deque<std::size_t> frontier{0};
    parent[0] = 0;
    while (!frontier.empty()) {
        const std::size_t v = frontier.front();
        frontier.pop_front();
        for (const auto& [t, w] : graph.nodes[v].successors) {
            if (parent[w] != unseen) {
                continue;
            }
            parent[w] = v;
            via[w] = t;
            if (graph.nodes[w].state == target) {
                firing_sequence path;
                for (std::size_t at = w; at != 0; at = parent[at]) {
                    path.push_back(via[at]);
                }
                return firing_sequence(path.rbegin(), path.rend());
            }
            frontier.push_back(w);
        }
    }
    return std::nullopt;
}

std::vector<std::int64_t> place_bounds(const reachability_graph& graph)
{
    if (graph.nodes.empty()) {
        return {};
    }
    std::vector<std::int64_t> bounds(graph.nodes.front().state.size(), 0);
    for (const reachability_node& node : graph.nodes) {
        const auto& tokens = node.state.vector();
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i] > bounds[i]) {
                bounds[i] = tokens[i];
            }
        }
    }
    return bounds;
}

namespace {

/// True when s has no recorded edges and genuinely enables nothing.  Zero
/// recorded edges alone is inconclusive: a budget (over-cap, max_states) or
/// a stubborn reduction whose successors were all dropped can leave a live
/// state edgeless, so the span is re-checked against every transition.
bool is_dead_state(const petri_net& net, const state_space& space, state_id s)
{
    if (!space.successors(s).empty()) {
        return false;
    }
    for (transition_id t : net.transitions()) {
        if (detail::enabled_in(net, space.tokens(s).data(), t)) {
            return false;
        }
    }
    return true;
}

} // namespace

std::optional<state_id> find_deadlock(const petri_net& net, const state_space& space)
{
    for (state_id s = 0; s < static_cast<state_id>(space.state_count()); ++s) {
        if (is_dead_state(net, space, s)) {
            return s;
        }
    }
    return std::nullopt;
}

std::vector<state_id> deadlock_states(const petri_net& net, const state_space& space)
{
    std::vector<state_id> dead;
    for (state_id s = 0; s < static_cast<state_id>(space.state_count()); ++s) {
        if (is_dead_state(net, space, s)) {
            dead.push_back(s);
        }
    }
    return dead;
}

bool is_reachable(const state_space& space, const marking& target)
{
    const std::vector<std::int64_t>& tokens = target.vector();
    if (tokens.size() != space.store().width()) {
        return false;
    }
    return space.store().find(tokens.data(), marking_store::hash_tokens(
                                                 tokens.data(), tokens.size())) !=
           invalid_state;
}

std::optional<firing_sequence> shortest_path_to(const petri_net& net,
                                                const state_space& space,
                                                const marking& target)
{
    static_cast<void>(net);
    const std::vector<std::int64_t>& tokens = target.vector();
    if (space.state_count() == 0 || tokens.size() != space.store().width()) {
        return std::nullopt;
    }
    const state_id goal = space.store().find(
        tokens.data(), marking_store::hash_tokens(tokens.data(), tokens.size()));
    if (goal == invalid_state) {
        return std::nullopt;
    }
    if (goal == 0) {
        return firing_sequence{};
    }
    // BFS over the CSR edge list, recording the incoming edge.
    std::vector<state_id> parent(space.state_count(), invalid_state);
    std::vector<transition_id> via(space.state_count());
    std::deque<state_id> frontier{0};
    parent[0] = 0;
    while (!frontier.empty()) {
        const state_id v = frontier.front();
        frontier.pop_front();
        for (const state_space_edge& edge : space.successors(v)) {
            if (parent[edge.to] != invalid_state) {
                continue;
            }
            parent[edge.to] = v;
            via[edge.to] = edge.via;
            if (edge.to == goal) {
                firing_sequence path;
                for (state_id at = goal; at != 0; at = parent[at]) {
                    path.push_back(via[at]);
                }
                return firing_sequence(path.rbegin(), path.rend());
            }
            frontier.push_back(edge.to);
        }
    }
    return std::nullopt;
}

std::vector<std::int64_t> place_bounds(const state_space& space)
{
    std::vector<std::int64_t> bounds(space.store().width(), 0);
    for (state_id s = 0; s < static_cast<state_id>(space.state_count()); ++s) {
        const std::span<const std::int64_t> tokens = space.tokens(s);
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i] > bounds[i]) {
                bounds[i] = tokens[i];
            }
        }
    }
    return bounds;
}

} // namespace fcqss::pn
