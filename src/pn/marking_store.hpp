// fcqss — pn/marking_store.hpp
// Arena-interned marking storage for explicit-state exploration.  Every
// distinct marking is stored exactly once as a contiguous span of token
// counts inside a chunked bump arena and addressed by a dense 32-bit
// state_id; a separate open-addressing hash set (keyed by precomputed
// 64-bit hashes) deduplicates candidates without per-state heap nodes.
// Spans handed out by tokens() stay valid for the life of the store —
// the arena grows by whole fixed-capacity chunks, never by reallocation.
//
// External memory: a store constructed with an exec::chunk_pager draws its
// arena chunks from the pager instead of the heap.  Under a --max-bytes
// budget the pager backs chunks with an mmap'd spill file and evicts cold
// ones (the bump chunk being filled stays pinned); reads of evicted rows
// refault transparently, so correctness is unaffected.  To keep intern-time
// equality probes off the fault path, the sequential engine records each
// inserted state's (BFS parent, firing delta) via record_parent(); probes
// against rows whose chunk is believed evicted then materialize the row by
// replaying deltas down the parent chain into a small decode cache instead
// of touching the cold page.
//
// Adoption: the unordered engine's renumber pass used to copy every marking
// out of the per-shard stores into the result store.  start_adopt() /
// set_adopted() / finish_adopt() instead let the result store reference the
// shard stores' rows in place and take ownership of the stores themselves;
// ids below adopted_count() resolve through the adopted row table, and the
// store can still grow past them through intern() (enforce_nonignoring
// appends merged markings after adoption).
#ifndef FCQSS_PN_MARKING_STORE_HPP
#define FCQSS_PN_MARKING_STORE_HPP

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace fcqss::exec {
class chunk_pager;
}

namespace fcqss::pn {

/// Dense index of an interned marking within a marking_store.
using state_id = std::uint32_t;

/// Sentinel for "no such state".
inline constexpr state_id invalid_state = static_cast<state_id>(-1);

/// Running tallies of one store's dedup work, maintained unconditionally
/// (plain increments on single-owner stores — the engines shard stores per
/// thread, so no atomics are needed) and flushed into the global obs
/// counters by the engines when telemetry is on.
struct marking_store_stats {
    std::uint64_t probes = 0;         ///< hash-table slots inspected by interns
    std::uint64_t dedup_hits = 0;     ///< interns that found an existing marking
    std::uint64_t inserts = 0;        ///< markings newly interned
    std::uint64_t budget_rejects = 0; ///< interns refused by max_states
    std::uint64_t resizes = 0;        ///< open-addressing table rebuilds
    std::uint64_t decode_hits = 0;    ///< cold rows served by the decode cache
    std::uint64_t decode_misses = 0;  ///< cold rows forced to fault pages back
};

class marking_store {
public:
    /// A store for markings of `width` places, arena on the heap.
    explicit marking_store(std::size_t width);

    /// A store whose arena chunks come from `pager` (shared across all the
    /// stores of one exploration run so they compete for one budget).
    /// A null pager is equivalent to the plain constructor.
    marking_store(std::size_t width, std::shared_ptr<exec::chunk_pager> pager);

    ~marking_store();
    marking_store(marking_store&&) noexcept;
    marking_store& operator=(marking_store&&) noexcept;

    /// Number of token counts per marking (|P| of the net).
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    /// Number of distinct markings interned so far (adopted included).
    [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

    /// 64-bit hash of a token vector.  Zobrist-style: the hash is the XOR of
    /// a per-(place, count) mix, so callers that change a few places can
    /// update a running hash incrementally with component_mix() instead of
    /// rehashing the whole vector.
    [[nodiscard]] static std::uint64_t hash_tokens(const std::int64_t* tokens,
                                                   std::size_t count) noexcept;

    /// The contribution of (place index, token count) to hash_tokens; XOR
    /// out the old count's mix and XOR in the new one to update a hash.
    [[nodiscard]] static std::uint64_t component_mix(std::size_t place,
                                                     std::int64_t count) noexcept;

    /// Interns `tokens` (length width()) whose hash_tokens value is `hash`.
    /// Returns the state id and whether the marking was newly inserted.
    /// When inserting would grow the store past `max_states`, returns
    /// {invalid_state, false} and leaves the store untouched.
    std::pair<state_id, bool>
    intern(const std::int64_t* tokens, std::uint64_t hash,
           std::size_t max_states = static_cast<std::size_t>(-1))
    {
        const std::size_t bytes = width_ * sizeof(std::int64_t);
        return intern_with(
            hash, max_states,
            [&](const std::int64_t* stored) {
                return bytes == 0 || std::memcmp(stored, tokens, bytes) == 0;
            },
            [&](std::int64_t* slot) { std::memcpy(slot, tokens, bytes); });
    }

    /// intern() with the token vector virtualized: `equals(stored)` decides
    /// whether the candidate equals an already-interned vector, and
    /// `fill(slot)` writes the candidate's width() counts directly into its
    /// arena slot on insertion.  Neither is called unless the probe needs
    /// it, so candidates that lose by hash alone — fresh markings rejected
    /// by `max_states`, or probes that run into an empty slot — cost
    /// O(probe) instead of O(width), and insertions write the arena without
    /// an intermediate copy.  The parallel engine lives on this: near a
    /// state budget almost every candidate is a doomed fresh marking, and
    /// accepted ones are reconstructed from (parent row, firing delta)
    /// straight into the arena.
    template <typename Equals, typename Fill>
    std::pair<state_id, bool> intern_with(std::uint64_t hash, std::size_t max_states,
                                          Equals&& equals, Fill&& fill)
    {
        std::size_t slot = hash & table_mask_;
        for (;; slot = (slot + 1) & table_mask_) {
            ++stats_.probes;
            const state_id id = table_[slot];
            if (id == invalid_state) {
                break;
            }
            if (hashes_[id] == hash && equals(probe_row(id))) {
                ++stats_.dedup_hits;
                return {id, false};
            }
        }
        if (size() >= max_states) {
            ++stats_.budget_rejects;
            return {invalid_state, false};
        }
        ++stats_.inserts;
        const state_id id = static_cast<state_id>(size());
        if ((id - adopted_count_) % states_per_chunk_ == 0) {
            allocate_chunk();
        }
        fill(bulk_tokens(id));
        hashes_.push_back(hash);
        table_[slot] = id;
        // Keep the load factor below ~0.7 (power-of-two capacity, linear
        // probes).
        if (size() * 10 >= (table_mask_ + 1) * 7) {
            rebuild_table((table_mask_ + 1) * 2);
        }
        return {id, true};
    }

    /// Looks `tokens` up without inserting; invalid_state when absent.
    [[nodiscard]] state_id find(const std::int64_t* tokens,
                                std::uint64_t hash) const noexcept;

    /// The interned token span of `id`.  Stable across later interns.
    /// Reads evicted rows straight through the mapping (the pages refault).
    [[nodiscard]] std::span<const std::int64_t> tokens(state_id id) const noexcept
    {
        if (id < adopted_count_) {
            return {adopted_rows_[id], width_};
        }
        const std::size_t own = id - adopted_count_;
        return {chunk_rows_[own / states_per_chunk_] +
                    (own % states_per_chunk_) * width_,
                width_};
    }

    /// The precomputed hash of `id` (as passed to intern()).
    [[nodiscard]] std::uint64_t stored_hash(state_id id) const noexcept
    {
        return hashes_[id];
    }

    // -- External-memory support --------------------------------------------

    /// Records that `id` was inserted as `parent` fired a transition whose
    /// (place, token delta) list is `deltas` (detail::firing_deltas shape).
    /// No-op without a pager: the chain only feeds the cold-row decode path.
    void record_parent(state_id id, state_id parent,
                       std::span<const std::pair<std::uint32_t, std::int64_t>> deltas);

    /// The pager backing this store's arena, or null.
    [[nodiscard]] const std::shared_ptr<exec::chunk_pager>& pager() const noexcept
    {
        return pager_;
    }

    /// Arena bytes only (chunks, at full chunk granularity), excluding the
    /// hash table — the denominator of a spill ratio.
    [[nodiscard]] std::size_t arena_bytes() const noexcept;

    // -- Bulk building (the parallel engine's merge step) -------------------
    //
    // The sharded explorer dedups markings in per-shard stores and already
    // knows the final result is `count` pairwise-distinct markings; copying
    // them through intern() would redo one hash probe and one memcmp per
    // state on one thread.  start_bulk_build() pre-sizes the arena so
    // disjoint ids can be filled concurrently through bulk_tokens() /
    // set_bulk_hash(); finish_bulk_build() then rebuilds the dedup table
    // from the hashes alone.  No lookup or intern is valid in between.

    /// Pre-sizes an empty store to exactly `count` markings with
    /// unspecified contents.  Every id in [0, count) must be filled before
    /// finish_bulk_build(); distinct ids may be filled from different
    /// threads.
    void start_bulk_build(std::size_t count);

    /// Extends a bulk build to `count` markings (count >= size()): the new
    /// slots [size(), count) behave like start_bulk_build slots.  Must be
    /// called from one thread, with no concurrent reader or writer; already
    /// filled token rows stay valid (the arena never moves), so barrier-
    /// separated phases can keep reading them.
    void grow_bulk_build(std::size_t count);

    /// Writable token slot of `id` during a bulk build (length width()).
    /// Not valid for adopted ids.
    [[nodiscard]] std::int64_t* bulk_tokens(state_id id) noexcept
    {
        const std::size_t own = id - adopted_count_;
        return chunk_rows_[own / states_per_chunk_] +
               (own % states_per_chunk_) * width_;
    }

    /// Records the precomputed hash of `id` during a bulk build.
    void set_bulk_hash(state_id id, std::uint64_t hash) noexcept { hashes_[id] = hash; }

    /// Rebuilds the open-addressing table from the bulk-filled hashes.
    /// Entries are trusted to be pairwise distinct (no equality checks).
    void finish_bulk_build();

    // -- Adoption (the unordered engine's zero-copy renumber) ---------------
    //
    // Like a bulk build, but the rows stay where the per-shard stores
    // interned them: set_adopted() records a stable row pointer per final
    // id, and finish_adopt() takes ownership of the source stores so those
    // pointers outlive the exploration.  Distinct ids may be recorded from
    // different threads.  After finish_adopt() the store behaves normally —
    // lookups see adopted rows, and intern() appends past them.

    /// Pre-sizes an empty store to `count` adopted markings.
    void start_adopt(std::size_t count);

    /// Records the row pointer and hash of adopted id `id`.
    void set_adopted(state_id id, const std::int64_t* row,
                     std::uint64_t hash) noexcept
    {
        adopted_rows_[id] = row;
        hashes_[id] = hash;
    }

    /// Takes ownership of the stores the adopted rows point into and
    /// rebuilds the dedup table.  Hashes are trusted pairwise distinct.
    void finish_adopt(std::vector<std::unique_ptr<marking_store>> backing);

    /// Ids below this resolve through the adopted row table.
    [[nodiscard]] std::size_t adopted_count() const noexcept { return adopted_count_; }

    /// Approximate arena + table footprint, for telemetry and benches.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

    /// Arena chunks allocated so far (own chunks; adopted backing excluded).
    [[nodiscard]] std::size_t chunk_count() const noexcept { return chunk_rows_.size(); }

    /// Dedup-work tallies since construction (see marking_store_stats).
    [[nodiscard]] const marking_store_stats& stats() const noexcept { return stats_; }

private:
    /// Parent-chain link of an interned state (invalid_state = unknown);
    /// the delta half-open range lives in delta_pool_.
    struct delta_ref {
        state_id parent = invalid_state;
        std::uint32_t begin = 0;
        std::uint32_t count = 0;
    };

    /// One decode-cache slot: a materialized cold row.
    struct decode_slot {
        state_id id = invalid_state;
        std::vector<std::int64_t> row;
    };

    [[nodiscard]] bool equal_at(state_id id, const std::int64_t* tokens) const noexcept;
    void rebuild_table(std::size_t capacity);
    void allocate_chunk();

    /// The row to hand an equality probe: direct when safe/cheap, decoded
    /// through the cache when the row's chunk is believed evicted.
    [[nodiscard]] const std::int64_t* probe_row(state_id id)
    {
        if (pager_ == nullptr || id < adopted_count_) {
            return tokens(id).data();
        }
        return cold_row(id);
    }

    [[nodiscard]] const std::int64_t* cold_row(state_id id);

    std::size_t width_;
    std::size_t states_per_chunk_;
    /// Adopted prefix: row pointers into adopted_backing_'s arenas.
    std::size_t adopted_count_ = 0;
    std::vector<const std::int64_t*> adopted_rows_;
    std::vector<std::unique_ptr<marking_store>> adopted_backing_;
    /// Bump arena for own (non-adopted) states: fixed-capacity chunks of
    /// states_per_chunk_ * width_ counts, allocated whole so spans never
    /// move.  Rows are addressed through chunk_rows_; the memory is owned
    /// either by owned_chunks_ (heap mode) or by the pager.
    std::vector<std::int64_t*> chunk_rows_;
    std::vector<std::unique_ptr<std::int64_t[]>> owned_chunks_;
    std::shared_ptr<exec::chunk_pager> pager_;
    std::vector<std::uint32_t> pager_chunk_ids_;
    /// Per-state precomputed hashes, indexed by state_id.
    std::vector<std::uint64_t> hashes_;
    /// Open-addressing table of state ids (invalid_state = empty slot);
    /// capacity is a power of two, rebuilt from hashes_ on growth.
    std::vector<state_id> table_;
    std::size_t table_mask_ = 0;
    /// Delta-encoded parent chain (pager mode only) + decode cache.
    std::vector<delta_ref> delta_of_;
    std::vector<std::pair<std::uint32_t, std::int64_t>> delta_pool_;
    std::vector<decode_slot> decode_cache_;
    marking_store_stats stats_{};
};

} // namespace fcqss::pn

#endif // FCQSS_PN_MARKING_STORE_HPP
