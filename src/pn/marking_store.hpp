// fcqss — pn/marking_store.hpp
// Arena-interned marking storage for explicit-state exploration.  Every
// distinct marking is stored exactly once as a contiguous span of token
// counts inside a chunked bump arena and addressed by a dense 32-bit
// state_id; a separate open-addressing hash set (keyed by precomputed
// 64-bit hashes) deduplicates candidates without per-state heap nodes.
// Spans handed out by tokens() stay valid for the life of the store —
// the arena grows by whole chunks, never by reallocation.
#ifndef FCQSS_PN_MARKING_STORE_HPP
#define FCQSS_PN_MARKING_STORE_HPP

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fcqss::pn {

/// Dense index of an interned marking within a marking_store.
using state_id = std::uint32_t;

/// Sentinel for "no such state".
inline constexpr state_id invalid_state = static_cast<state_id>(-1);

class marking_store {
public:
    /// A store for markings of `width` places.
    explicit marking_store(std::size_t width);

    /// Number of token counts per marking (|P| of the net).
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    /// Number of distinct markings interned so far.
    [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

    /// 64-bit hash of a token vector.  Zobrist-style: the hash is the XOR of
    /// a per-(place, count) mix, so callers that change a few places can
    /// update a running hash incrementally with component_mix() instead of
    /// rehashing the whole vector.
    [[nodiscard]] static std::uint64_t hash_tokens(const std::int64_t* tokens,
                                                   std::size_t count) noexcept;

    /// The contribution of (place index, token count) to hash_tokens; XOR
    /// out the old count's mix and XOR in the new one to update a hash.
    [[nodiscard]] static std::uint64_t component_mix(std::size_t place,
                                                     std::int64_t count) noexcept;

    /// Interns `tokens` (length width()) whose hash_tokens value is `hash`.
    /// Returns the state id and whether the marking was newly inserted.
    /// When inserting would grow the store past `max_states`, returns
    /// {invalid_state, false} and leaves the store untouched.
    std::pair<state_id, bool>
    intern(const std::int64_t* tokens, std::uint64_t hash,
           std::size_t max_states = static_cast<std::size_t>(-1));

    /// Looks `tokens` up without inserting; invalid_state when absent.
    [[nodiscard]] state_id find(const std::int64_t* tokens,
                                std::uint64_t hash) const noexcept;

    /// The interned token span of `id`.  Stable across later interns.
    [[nodiscard]] std::span<const std::int64_t> tokens(state_id id) const noexcept
    {
        return {chunks_[id / states_per_chunk_].data() +
                    static_cast<std::size_t>(id % states_per_chunk_) * width_,
                width_};
    }

    /// The precomputed hash of `id` (as passed to intern()).
    [[nodiscard]] std::uint64_t stored_hash(state_id id) const noexcept
    {
        return hashes_[id];
    }

    /// Approximate arena + table footprint, for telemetry and benches.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    [[nodiscard]] bool equal_at(state_id id, const std::int64_t* tokens) const noexcept;
    void grow_table();

    std::size_t width_;
    std::size_t states_per_chunk_;
    /// Bump arena: fixed-capacity chunks of states_per_chunk_ * width_
    /// counts; chunk vectors are reserved up front so spans never move.
    std::vector<std::vector<std::int64_t>> chunks_;
    /// Per-state precomputed hashes, indexed by state_id.
    std::vector<std::uint64_t> hashes_;
    /// Open-addressing table of state ids (invalid_state = empty slot);
    /// capacity is a power of two, rebuilt from hashes_ on growth.
    std::vector<state_id> table_;
    std::size_t table_mask_ = 0;
};

} // namespace fcqss::pn

#endif // FCQSS_PN_MARKING_STORE_HPP
