// fcqss — pn/marking_store.hpp
// Arena-interned marking storage for explicit-state exploration.  Every
// distinct marking is stored exactly once as a contiguous span of token
// counts inside a chunked bump arena and addressed by a dense 32-bit
// state_id; a separate open-addressing hash set (keyed by precomputed
// 64-bit hashes) deduplicates candidates without per-state heap nodes.
// Spans handed out by tokens() stay valid for the life of the store —
// the arena grows by whole fixed-capacity chunks, never by reallocation.
#ifndef FCQSS_PN_MARKING_STORE_HPP
#define FCQSS_PN_MARKING_STORE_HPP

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace fcqss::pn {

/// Dense index of an interned marking within a marking_store.
using state_id = std::uint32_t;

/// Sentinel for "no such state".
inline constexpr state_id invalid_state = static_cast<state_id>(-1);

/// Running tallies of one store's dedup work, maintained unconditionally
/// (plain increments on single-owner stores — the engines shard stores per
/// thread, so no atomics are needed) and flushed into the global obs
/// counters by the engines when telemetry is on.
struct marking_store_stats {
    std::uint64_t probes = 0;         ///< hash-table slots inspected by interns
    std::uint64_t dedup_hits = 0;     ///< interns that found an existing marking
    std::uint64_t inserts = 0;        ///< markings newly interned
    std::uint64_t budget_rejects = 0; ///< interns refused by max_states
    std::uint64_t resizes = 0;        ///< open-addressing table rebuilds
};

class marking_store {
public:
    /// A store for markings of `width` places.
    explicit marking_store(std::size_t width);

    /// Number of token counts per marking (|P| of the net).
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    /// Number of distinct markings interned so far.
    [[nodiscard]] std::size_t size() const noexcept { return hashes_.size(); }

    /// 64-bit hash of a token vector.  Zobrist-style: the hash is the XOR of
    /// a per-(place, count) mix, so callers that change a few places can
    /// update a running hash incrementally with component_mix() instead of
    /// rehashing the whole vector.
    [[nodiscard]] static std::uint64_t hash_tokens(const std::int64_t* tokens,
                                                   std::size_t count) noexcept;

    /// The contribution of (place index, token count) to hash_tokens; XOR
    /// out the old count's mix and XOR in the new one to update a hash.
    [[nodiscard]] static std::uint64_t component_mix(std::size_t place,
                                                     std::int64_t count) noexcept;

    /// Interns `tokens` (length width()) whose hash_tokens value is `hash`.
    /// Returns the state id and whether the marking was newly inserted.
    /// When inserting would grow the store past `max_states`, returns
    /// {invalid_state, false} and leaves the store untouched.
    std::pair<state_id, bool>
    intern(const std::int64_t* tokens, std::uint64_t hash,
           std::size_t max_states = static_cast<std::size_t>(-1))
    {
        const std::size_t bytes = width_ * sizeof(std::int64_t);
        return intern_with(
            hash, max_states,
            [&](const std::int64_t* stored) {
                return bytes == 0 || std::memcmp(stored, tokens, bytes) == 0;
            },
            [&](std::int64_t* slot) { std::memcpy(slot, tokens, bytes); });
    }

    /// intern() with the token vector virtualized: `equals(stored)` decides
    /// whether the candidate equals an already-interned vector, and
    /// `fill(slot)` writes the candidate's width() counts directly into its
    /// arena slot on insertion.  Neither is called unless the probe needs
    /// it, so candidates that lose by hash alone — fresh markings rejected
    /// by `max_states`, or probes that run into an empty slot — cost
    /// O(probe) instead of O(width), and insertions write the arena without
    /// an intermediate copy.  The parallel engine lives on this: near a
    /// state budget almost every candidate is a doomed fresh marking, and
    /// accepted ones are reconstructed from (parent row, firing delta)
    /// straight into the arena.
    template <typename Equals, typename Fill>
    std::pair<state_id, bool> intern_with(std::uint64_t hash, std::size_t max_states,
                                          Equals&& equals, Fill&& fill)
    {
        std::size_t slot = hash & table_mask_;
        for (;; slot = (slot + 1) & table_mask_) {
            ++stats_.probes;
            const state_id id = table_[slot];
            if (id == invalid_state) {
                break;
            }
            if (hashes_[id] == hash && equals(tokens(id).data())) {
                ++stats_.dedup_hits;
                return {id, false};
            }
        }
        if (size() >= max_states) {
            ++stats_.budget_rejects;
            return {invalid_state, false};
        }
        ++stats_.inserts;
        const state_id id = static_cast<state_id>(size());
        if (id % states_per_chunk_ == 0) {
            chunks_.emplace_back(new std::int64_t[states_per_chunk_ * width_]);
        }
        fill(bulk_tokens(id));
        hashes_.push_back(hash);
        table_[slot] = id;
        // Keep the load factor below ~0.7 (power-of-two capacity, linear
        // probes).
        if (size() * 10 >= (table_mask_ + 1) * 7) {
            rebuild_table((table_mask_ + 1) * 2);
        }
        return {id, true};
    }

    /// Looks `tokens` up without inserting; invalid_state when absent.
    [[nodiscard]] state_id find(const std::int64_t* tokens,
                                std::uint64_t hash) const noexcept;

    /// The interned token span of `id`.  Stable across later interns.
    [[nodiscard]] std::span<const std::int64_t> tokens(state_id id) const noexcept
    {
        return {chunks_[id / states_per_chunk_].get() +
                    static_cast<std::size_t>(id % states_per_chunk_) * width_,
                width_};
    }

    /// The precomputed hash of `id` (as passed to intern()).
    [[nodiscard]] std::uint64_t stored_hash(state_id id) const noexcept
    {
        return hashes_[id];
    }

    // -- Bulk building (the parallel engine's merge step) -------------------
    //
    // The sharded explorer dedups markings in per-shard stores and already
    // knows the final result is `count` pairwise-distinct markings; copying
    // them through intern() would redo one hash probe and one memcmp per
    // state on one thread.  start_bulk_build() pre-sizes the arena so
    // disjoint ids can be filled concurrently through bulk_tokens() /
    // set_bulk_hash(); finish_bulk_build() then rebuilds the dedup table
    // from the hashes alone.  No lookup or intern is valid in between.

    /// Pre-sizes an empty store to exactly `count` markings with
    /// unspecified contents.  Every id in [0, count) must be filled before
    /// finish_bulk_build(); distinct ids may be filled from different
    /// threads.
    void start_bulk_build(std::size_t count);

    /// Extends a bulk build to `count` markings (count >= size()): the new
    /// slots [size(), count) behave like start_bulk_build slots.  Must be
    /// called from one thread, with no concurrent reader or writer; already
    /// filled token rows stay valid (the arena never moves), so barrier-
    /// separated phases can keep reading them.
    void grow_bulk_build(std::size_t count);

    /// Writable token slot of `id` during a bulk build (length width()).
    [[nodiscard]] std::int64_t* bulk_tokens(state_id id) noexcept
    {
        return chunks_[id / states_per_chunk_].get() +
               static_cast<std::size_t>(id % states_per_chunk_) * width_;
    }

    /// Records the precomputed hash of `id` during a bulk build.
    void set_bulk_hash(state_id id, std::uint64_t hash) noexcept { hashes_[id] = hash; }

    /// Rebuilds the open-addressing table from the bulk-filled hashes.
    /// Entries are trusted to be pairwise distinct (no equality checks).
    void finish_bulk_build();

    /// Approximate arena + table footprint, for telemetry and benches.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

    /// Arena chunks allocated so far.
    [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

    /// Dedup-work tallies since construction (see marking_store_stats).
    [[nodiscard]] const marking_store_stats& stats() const noexcept { return stats_; }

private:
    [[nodiscard]] bool equal_at(state_id id, const std::int64_t* tokens) const noexcept;
    void rebuild_table(std::size_t capacity);

    std::size_t width_;
    std::size_t states_per_chunk_;
    /// Bump arena: fixed-capacity chunks of states_per_chunk_ * width_
    /// counts, allocated whole so spans never move.
    std::vector<std::unique_ptr<std::int64_t[]>> chunks_;
    /// Per-state precomputed hashes, indexed by state_id.
    std::vector<std::uint64_t> hashes_;
    /// Open-addressing table of state ids (invalid_state = empty slot);
    /// capacity is a power of two, rebuilt from hashes_ on growth.
    std::vector<state_id> table_;
    std::size_t table_mask_ = 0;
    marking_store_stats stats_{};
};

} // namespace fcqss::pn

#endif // FCQSS_PN_MARKING_STORE_HPP
