// fcqss — pn/reachability.hpp
// Explicit-state reachability graph with an exploration budget.  Used for
// deadlock checks, liveness of bounded nets and for cross-validating the
// structural analyses in tests.
#ifndef FCQSS_PN_REACHABILITY_HPP
#define FCQSS_PN_REACHABILITY_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pn/firing.hpp"
#include "pn/marking.hpp"
#include "pn/petri_net.hpp"
#include "pn/parallel_explore.hpp"
#include "pn/state_space.hpp"

namespace fcqss::pn {

/// Limits for explicit exploration.  `max_markings` bounds the state count;
/// `max_tokens_per_place` aborts exploration of (necessarily unbounded) runs
/// where some place exceeds the cap.
struct reachability_options {
    std::size_t max_markings = 100000;
    std::int64_t max_tokens_per_place = 1 << 20;
    /// Soft ceiling on resident arena bytes; 0 = unlimited.  Non-zero backs
    /// the marking arenas with an mmap'd spill file (exec::chunk_pager) and
    /// evicts cold chunks, so exploration can outgrow RAM; the explored
    /// graph is bit-identical at any spill ratio.
    std::size_t max_bytes = 0;
    /// Worker threads for exploration: 1 runs the sequential engine, any
    /// other value the sharded parallel engine (0 = hardware concurrency).
    /// Results are bit-identical either way.
    std::size_t threads = 1;
    /// Per-state partial-order reduction (pn/stubborn.hpp).  `stubborn`
    /// explores a property-preserving fragment: with `strength = deadlock`
    /// has-deadlock and the set of reachable dead markings match the full
    /// graph (exactly, when neither run is truncated); with `strength =
    /// ltl_x` transition liveness and stutter-invariant queries over
    /// `observed_places` are preserved too.  The reachability *set* is
    /// never preserved — keep `none` for is_reachable / shortest_path /
    /// place_bounds-style queries.
    reduction_kind reduction = reduction_kind::none;
    /// Reduction strength (pn/stubborn.hpp); meaningful with `stubborn`.
    reduction_strength strength = reduction_strength::deadlock;
    /// Places the query observes (the ltl_x visibility set).
    std::vector<place_id> observed_places{};
    /// Parallel scheduling discipline (pn/parallel_explore.hpp); ignored by
    /// the sequential engine.  Both orders publish bit-identical results.
    exploration_order order = exploration_order::ordered;
};

/// One explored marking and its outgoing firings.
struct reachability_node {
    marking state;
    /// (transition fired, index of successor node), ascending by transition.
    std::vector<std::pair<transition_id, std::size_t>> successors;
};

/// The (partial) reachability graph from the initial marking.
struct reachability_graph {
    std::vector<reachability_node> nodes;
    /// True when exploration stopped because a budget was hit; every
    /// "for all reachable markings" verdict is then only valid for the
    /// explored region.
    bool truncated = false;

    [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }
};

/// Breadth-first exploration from the net's initial marking.  Runs on the
/// arena-interned state-space engine (pn/state_space.hpp) — sequential or
/// sharded parallel per options.threads; the graph is materialized from the
/// engine's compact representation at the end.
[[nodiscard]] reachability_graph explore(const petri_net& net,
                                         const reachability_options& options = {});

/// The engine exploration behind explore(): dispatches on options.threads
/// between explore_state_space() and explore_parallel() and returns the
/// compact form directly.  Prefer this + the span-served queries below over
/// explore() when the marking-object graph is not needed — it avoids the
/// O(states x places) materialization copy entirely.
[[nodiscard]] state_space explore_space(const petri_net& net,
                                        const reachability_options& options = {});

/// The pre-engine exploration: a naive BFS deduplicating through an
/// unordered_map of marking objects.  Visits exactly the same states and
/// edges as explore(), in the same order — kept as the reference for
/// differential tests and for before/after rows in bench_scaling.
[[nodiscard]] reachability_graph
explore_reference(const petri_net& net, const reachability_options& options = {});

/// A reachable dead marking, if exploration finds one (nullopt when the
/// explored region is deadlock-free; see reachability_graph::truncated).
[[nodiscard]] std::optional<marking> find_deadlock(const petri_net& net,
                                                   const reachability_graph& graph);

/// True when `target` appears in the explored region.
[[nodiscard]] bool is_reachable(const reachability_graph& graph, const marking& target);

/// A shortest firing sequence from the initial marking to `target`, or
/// nullopt when not present in the explored region.
[[nodiscard]] std::optional<firing_sequence>
shortest_path_to(const petri_net& net, const reachability_graph& graph,
                 const marking& target);

/// Max token count per place over the explored region (bounds witness).
[[nodiscard]] std::vector<std::int64_t> place_bounds(const reachability_graph& graph);

// -- Span-served queries ----------------------------------------------------
//
// The overloads below answer the same questions straight from the compact
// state_space: tokens are read as arena spans and lookups go through the
// store's hash table, so nothing is ever materialized into marking objects.
// Each is observationally identical to its reachability_graph counterpart
// (pinned by tests/test_parallel_explore.cpp).

/// First deadlocked state in id order, if any (the marking is one
/// space.marking_of() away).  States with outgoing edges are skipped
/// outright: an edge means some transition fired there.  Sound on reduced
/// graphs too: a stubborn subset always contains an enabled transition, so
/// zero recorded edges still means "dead or budget-dropped", and the
/// enabled re-check below settles which.
[[nodiscard]] std::optional<state_id> find_deadlock(const petri_net& net,
                                                    const state_space& space);

/// Every deadlocked state in the explored region, ascending by id.  On a
/// non-truncated stubborn-reduced exploration this is exactly the set of
/// reachable dead markings of the full graph (pn/stubborn.hpp).
[[nodiscard]] std::vector<state_id> deadlock_states(const petri_net& net,
                                                    const state_space& space);

/// True when `target` is an explored state (one hash lookup, no scan).
[[nodiscard]] bool is_reachable(const state_space& space, const marking& target);

/// A shortest firing sequence from the initial marking to `target`, or
/// nullopt when not present in the explored region.  The target is located
/// with one hash lookup; the BFS runs over the CSR edge list.
[[nodiscard]] std::optional<firing_sequence>
shortest_path_to(const petri_net& net, const state_space& space, const marking& target);

/// Max token count per place over the explored region (bounds witness).
[[nodiscard]] std::vector<std::int64_t> place_bounds(const state_space& space);

} // namespace fcqss::pn

#endif // FCQSS_PN_REACHABILITY_HPP
