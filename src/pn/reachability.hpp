// fcqss — pn/reachability.hpp
// Explicit-state reachability graph with an exploration budget.  Used for
// deadlock checks, liveness of bounded nets and for cross-validating the
// structural analyses in tests.
#ifndef FCQSS_PN_REACHABILITY_HPP
#define FCQSS_PN_REACHABILITY_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pn/firing.hpp"
#include "pn/marking.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Limits for explicit exploration.  `max_markings` bounds the state count;
/// `max_tokens_per_place` aborts exploration of (necessarily unbounded) runs
/// where some place exceeds the cap.
struct reachability_options {
    std::size_t max_markings = 100000;
    std::int64_t max_tokens_per_place = 1 << 20;
};

/// One explored marking and its outgoing firings.
struct reachability_node {
    marking state;
    /// (transition fired, index of successor node), ascending by transition.
    std::vector<std::pair<transition_id, std::size_t>> successors;
};

/// The (partial) reachability graph from the initial marking.
struct reachability_graph {
    std::vector<reachability_node> nodes;
    /// True when exploration stopped because a budget was hit; every
    /// "for all reachable markings" verdict is then only valid for the
    /// explored region.
    bool truncated = false;

    [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }
};

/// Breadth-first exploration from the net's initial marking.  Runs on the
/// arena-interned state-space engine (pn/state_space.hpp); the graph is
/// materialized from the engine's compact representation at the end.
[[nodiscard]] reachability_graph explore(const petri_net& net,
                                         const reachability_options& options = {});

/// The pre-engine exploration: a naive BFS deduplicating through an
/// unordered_map of marking objects.  Visits exactly the same states and
/// edges as explore(), in the same order — kept as the reference for
/// differential tests and for before/after rows in bench_scaling.
[[nodiscard]] reachability_graph
explore_reference(const petri_net& net, const reachability_options& options = {});

/// A reachable dead marking, if exploration finds one (nullopt when the
/// explored region is deadlock-free; see reachability_graph::truncated).
[[nodiscard]] std::optional<marking> find_deadlock(const petri_net& net,
                                                   const reachability_graph& graph);

/// True when `target` appears in the explored region.
[[nodiscard]] bool is_reachable(const reachability_graph& graph, const marking& target);

/// A shortest firing sequence from the initial marking to `target`, or
/// nullopt when not present in the explored region.
[[nodiscard]] std::optional<firing_sequence>
shortest_path_to(const petri_net& net, const reachability_graph& graph,
                 const marking& target);

/// Max token count per place over the explored region (bounds witness).
[[nodiscard]] std::vector<std::int64_t> place_bounds(const reachability_graph& graph);

} // namespace fcqss::pn

#endif // FCQSS_PN_REACHABILITY_HPP
