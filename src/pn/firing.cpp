#include "pn/firing.hpp"

#include "base/error.hpp"

namespace fcqss::pn {

bool is_enabled(const petri_net& net, const marking& m, transition_id t)
{
    for (const place_weight& in : net.inputs(t)) {
        if (m.tokens(in.place) < in.weight) {
            return false;
        }
    }
    return true;
}

void fire(const petri_net& net, marking& m, transition_id t)
{
    if (!is_enabled(net, m, t)) {
        throw domain_error("fire: transition '" + net.transition_name(t) +
                           "' is not enabled");
    }
    fire_unchecked(net, m, t);
}

void fire_unchecked(const petri_net& net, marking& m, transition_id t)
{
    std::int64_t* tokens = m.mutable_data();
    for (const place_weight& in : net.inputs(t)) {
        tokens[in.place.index()] -= in.weight;
    }
    for (const place_weight& out : net.outputs(t)) {
        tokens[out.place.index()] += out.weight;
    }
}

bool try_fire(const petri_net& net, marking& m, transition_id t)
{
    if (!is_enabled(net, m, t)) {
        return false;
    }
    fire_unchecked(net, m, t);
    return true;
}

std::vector<transition_id> enabled_transitions(const petri_net& net, const marking& m)
{
    std::vector<transition_id> result;
    for (transition_id t : net.transitions()) {
        if (is_enabled(net, m, t)) {
            result.push_back(t);
        }
    }
    return result;
}

bool is_deadlocked(const petri_net& net, const marking& m)
{
    for (transition_id t : net.transitions()) {
        if (is_enabled(net, m, t)) {
            return false;
        }
    }
    return true;
}

std::optional<marking> fire_sequence(const petri_net& net, marking m,
                                     const firing_sequence& sequence)
{
    for (transition_id t : sequence) {
        if (!try_fire(net, m, t)) {
            return std::nullopt;
        }
    }
    return m;
}

std::vector<std::int64_t> firing_count_vector(const petri_net& net,
                                              const firing_sequence& sequence)
{
    std::vector<std::int64_t> counts(net.transition_count(), 0);
    for (transition_id t : sequence) {
        if (!t.valid() || t.index() >= counts.size()) {
            throw model_error("firing_count_vector: transition id out of range");
        }
        ++counts[t.index()];
    }
    return counts;
}

bool is_finite_complete_cycle(const petri_net& net, const firing_sequence& sequence)
{
    const marking m0 = initial_marking(net);
    const std::optional<marking> reached = fire_sequence(net, m0, sequence);
    return reached.has_value() && *reached == m0;
}

std::string to_string(const petri_net& net, const firing_sequence& sequence)
{
    std::string text;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        if (i != 0) {
            text += ' ';
        }
        text += net.transition_name(sequence[i]);
    }
    return text;
}

} // namespace fcqss::pn
