#include "pn/incidence.hpp"

#include "linalg/checked.hpp"

namespace fcqss::pn {

linalg::int_matrix pre_matrix(const petri_net& net)
{
    linalg::int_matrix m(net.place_count(), net.transition_count());
    for (transition_id t : net.transitions()) {
        for (const place_weight& in : net.inputs(t)) {
            m.at(in.place.index(), t.index()) = in.weight;
        }
    }
    return m;
}

linalg::int_matrix post_matrix(const petri_net& net)
{
    linalg::int_matrix m(net.place_count(), net.transition_count());
    for (transition_id t : net.transitions()) {
        for (const place_weight& out : net.outputs(t)) {
            m.at(out.place.index(), t.index()) = out.weight;
        }
    }
    return m;
}

linalg::int_matrix incidence_matrix(const petri_net& net)
{
    linalg::int_matrix m(net.place_count(), net.transition_count());
    for (transition_id t : net.transitions()) {
        for (const place_weight& out : net.outputs(t)) {
            m.at(out.place.index(), t.index()) =
                linalg::checked_add(m.at(out.place.index(), t.index()), out.weight);
        }
        for (const place_weight& in : net.inputs(t)) {
            m.at(in.place.index(), t.index()) =
                linalg::checked_sub(m.at(in.place.index(), t.index()), in.weight);
        }
    }
    return m;
}

} // namespace fcqss::pn
