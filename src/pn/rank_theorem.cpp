#include "pn/rank_theorem.hpp"

#include <numeric>

#include "base/error.hpp"
#include "linalg/gauss.hpp"
#include "pn/incidence.hpp"
#include "pn/invariants.hpp"
#include "pn/net_class.hpp"

namespace fcqss::pn {

namespace {

// Union-find over the combined node space: places first, then transitions.
class union_find {
public:
    explicit union_find(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }

    std::size_t find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

} // namespace

std::vector<cluster> clusters_of(const petri_net& net)
{
    const std::size_t places = net.place_count();
    union_find groups(places + net.transition_count());
    for (transition_id t : net.transitions()) {
        for (const place_weight& in : net.inputs(t)) {
            groups.merge(in.place.index(), places + t.index());
        }
    }

    std::vector<cluster> result;
    std::vector<std::size_t> cluster_of_root(places + net.transition_count(), SIZE_MAX);
    const auto cluster_index = [&](std::size_t node) {
        const std::size_t root = groups.find(node);
        if (cluster_of_root[root] == SIZE_MAX) {
            cluster_of_root[root] = result.size();
            result.emplace_back();
        }
        return cluster_of_root[root];
    };
    for (place_id p : net.places()) {
        result[cluster_index(p.index())].places.push_back(p);
    }
    for (transition_id t : net.transitions()) {
        result[cluster_index(places + t.index())].transitions.push_back(t);
    }
    return result;
}

rank_check check_rank_theorem(const petri_net& net)
{
    if (!is_free_choice(net)) {
        throw domain_error("check_rank_theorem: '" + net.name() + "' is not free-choice");
    }
    rank_check result;

    const auto t_inv = t_invariants(net);
    result.has_positive_t_invariant = transitions_uncovered_by(net, t_inv).empty() &&
                                      !t_inv.empty();

    const auto p_inv = p_invariants(net);
    std::vector<bool> covered(net.place_count(), false);
    for (const linalg::int_vector& y : p_inv) {
        for (std::size_t i : linalg::support(y)) {
            covered[i] = true;
        }
    }
    result.has_positive_p_invariant =
        !p_inv.empty() &&
        std::all_of(covered.begin(), covered.end(), [](bool c) { return c; });

    result.rank = linalg::rank(incidence_matrix(net));
    result.cluster_count = clusters_of(net).size();
    result.rank_condition = result.cluster_count >= 1 &&
                            result.rank == result.cluster_count - 1;
    return result;
}

} // namespace fcqss::pn
