// fcqss — pn/invariants.hpp
// T- and P-invariants via Farkas minimal-semiflow enumeration, plus the
// consistency and conservativeness predicates built on them (Def. 2.1).
#ifndef FCQSS_PN_INVARIANTS_HPP
#define FCQSS_PN_INVARIANTS_HPP

#include <vector>

#include "linalg/int_matrix.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// All minimal-support T-invariants: minimal x >= 0, x != 0 with C x = 0,
/// indexed by transition.  A firing sequence whose count vector is a
/// T-invariant returns the net to the marking it started from.
[[nodiscard]] std::vector<linalg::int_vector> t_invariants(const petri_net& net);

/// All minimal-support P-invariants: minimal y >= 0, y != 0 with y^T C = 0,
/// indexed by place.  The y-weighted token sum is preserved by every firing.
[[nodiscard]] std::vector<linalg::int_vector> p_invariants(const petri_net& net);

/// Def. 2.1: the net is consistent iff there exists f > 0 (strictly positive
/// on every transition) with C f = 0 — equivalently, the minimal T-invariants
/// jointly cover all transitions.
[[nodiscard]] bool is_consistent(const petri_net& net);

/// Dual of consistency: exists y > 0 with y^T C = 0.  Conservative nets are
/// structurally bounded.
[[nodiscard]] bool is_conservative(const petri_net& net);

/// Transitions not covered by any minimal T-invariant.  Non-empty exactly
/// when the net is inconsistent; used for diagnostics (Fig. 7 reports the
/// uncovered tail of an inconsistent reduction).
[[nodiscard]] std::vector<transition_id>
transitions_uncovered_by(const petri_net& net,
                         const std::vector<linalg::int_vector>& invariants);

/// The weighted sum y^T m of a marking against a P-invariant.
[[nodiscard]] std::int64_t weighted_token_sum(const linalg::int_vector& p_invariant,
                                              const std::vector<std::int64_t>& marking);

} // namespace fcqss::pn

#endif // FCQSS_PN_INVARIANTS_HPP
