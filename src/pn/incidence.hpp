// fcqss — pn/incidence.hpp
// Pre, Post and incidence matrices of a net.  The state equation of Sec. 2,
// f(sigma)^T . D = 0, is C x = 0 here with C = Post - Pre (|P| x |T|).
#ifndef FCQSS_PN_INCIDENCE_HPP
#define FCQSS_PN_INCIDENCE_HPP

#include "linalg/int_matrix.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// Pre[p][t] = F(p, t): tokens consumed from p when t fires.
[[nodiscard]] linalg::int_matrix pre_matrix(const petri_net& net);

/// Post[p][t] = F(t, p): tokens produced into p when t fires.
[[nodiscard]] linalg::int_matrix post_matrix(const petri_net& net);

/// C = Post - Pre, the token flow balance (|P| rows, |T| columns).
[[nodiscard]] linalg::int_matrix incidence_matrix(const petri_net& net);

} // namespace fcqss::pn

#endif // FCQSS_PN_INCIDENCE_HPP
