// fcqss — pn/mutator.hpp
// Seeded, deterministic net mutation for the differential fuzz harness
// (pipeline/fuzz.hpp).  A mutation *plan* is drawn once from a PRNG seed;
// applying the plan — or any subset of it, which is how disagreements are
// shrunk to minimal reproducers — is a pure function of (base net, plan).
//
// Two mutation classes, by contract:
//
//   structure-preserving   perturb_weight, perturb_marking.  The arc set
//                          and node set are untouched: weights move within
//                          [1, max_weight], initial markings within
//                          [0, max_tokens].  Connectivity can never change.
//
//   structure-mutating     add_arc, remove_arc, redirect_arc, merge_places,
//                          split_place, drop_transition,
//                          duplicate_transition.  These deliberately leave
//                          the generator's schedulable-by-design region:
//                          mutants may be non-free-choice, inconsistent,
//                          unbounded, or disconnected.  The invariant the
//                          fuzz harness enforces is *not* that such nets
//                          synthesize — it is that every downstream stage
//                          either succeeds or rejects them cleanly, with
//                          agreeing verdicts across engines and reductions.
//
// Every mutant is a valid pn::petri_net: names stay unique identifiers,
// arc weights stay positive, duplicate arcs are merged (weights summed),
// at least one transition survives.  Mutations that cannot apply to the
// current structure (removing an arc from an arc-less net, splitting a
// single-consumer place, ...) are skipped and do not appear in
// mutation_result::applied — so `applied` is exactly the subset a shrink
// needs to replay.
#ifndef FCQSS_PN_MUTATOR_HPP
#define FCQSS_PN_MUTATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "pn/petri_net.hpp"

namespace fcqss::pn {

/// One mutation operator.
enum class mutation_kind : std::uint8_t {
    add_arc,              ///< new place<->transition arc (either direction)
    remove_arc,           ///< delete one existing arc
    redirect_arc,         ///< move one arc endpoint to another node
    merge_places,         ///< fold place b into place a (arcs + tokens)
    split_place,          ///< move half of a place's consumers to a clone
    perturb_weight,       ///< change one arc weight (structure-preserving)
    perturb_marking,      ///< change one initial marking (structure-preserving)
    drop_transition,      ///< delete a transition and its arcs
    duplicate_transition, ///< clone a transition with identical arcs
};

inline constexpr std::size_t mutation_kind_count = 9;

[[nodiscard]] const char* to_string(mutation_kind kind);

/// One planned mutation.  Operands are raw PRNG draws; apply_mutations
/// interprets them modulo the *current* node/arc counts, so a plan (and any
/// subset of it) stays applicable no matter how earlier mutations reshaped
/// the net.
struct mutation {
    mutation_kind kind = mutation_kind::perturb_weight;
    std::uint32_t a = 0;   ///< primary operand (node or arc selector)
    std::uint32_t b = 0;   ///< secondary operand (partner node, direction)
    std::int64_t value = 1; ///< weight or token payload

    friend bool operator==(const mutation&, const mutation&) = default;
};

struct mutation_options {
    /// Mutations drawn per plan.
    int count = 4;
    /// Perturbed/new arc weights land in [1, max_weight].
    std::int64_t max_weight = 4;
    /// Perturbed initial markings land in [0, max_tokens].
    std::int64_t max_tokens = 3;
};

/// A mutant plus the mutations that actually applied, in application order.
struct mutation_result {
    petri_net net;
    std::vector<mutation> applied;
};

/// Draws `options.count` mutations from `seed`.  Deterministic: the same
/// (net, seed, options) always yields the same plan, on every platform.
[[nodiscard]] std::vector<mutation> plan_mutations(const petri_net& base,
                                                   std::uint64_t seed,
                                                   const mutation_options& options = {});

/// Applies `plan` to `base` in order, skipping mutations that cannot apply
/// to the evolved structure.  Pure: no PRNG involved, so any subset of a
/// plan replays bit-identically — the property the fuzz shrinker relies on.
[[nodiscard]] mutation_result apply_mutations(const petri_net& base,
                                              const std::vector<mutation>& plan);

/// plan + apply in one step.
[[nodiscard]] mutation_result mutate(const petri_net& base, std::uint64_t seed,
                                     const mutation_options& options = {});

} // namespace fcqss::pn

#endif // FCQSS_PN_MUTATOR_HPP
