#include "pn/invariants.hpp"

#include "base/error.hpp"
#include "linalg/farkas.hpp"
#include "pn/incidence.hpp"

namespace fcqss::pn {

std::vector<linalg::int_vector> t_invariants(const petri_net& net)
{
    // x with C x = 0  <=>  x^T C^T = 0: semiflows of C^T (rows = transitions).
    return linalg::minimal_semiflows(incidence_matrix(net).transposed());
}

std::vector<linalg::int_vector> p_invariants(const petri_net& net)
{
    // y with y^T C = 0: semiflows of C (rows = places).
    return linalg::minimal_semiflows(incidence_matrix(net));
}

bool is_consistent(const petri_net& net)
{
    const auto invariants = t_invariants(net);
    return transitions_uncovered_by(net, invariants).empty() && !invariants.empty();
}

bool is_conservative(const petri_net& net)
{
    const auto invariants = p_invariants(net);
    if (invariants.empty()) {
        return net.place_count() == 0;
    }
    std::vector<bool> covered(net.place_count(), false);
    for (const linalg::int_vector& y : invariants) {
        for (std::size_t i : linalg::support(y)) {
            covered[i] = true;
        }
    }
    for (bool c : covered) {
        if (!c) {
            return false;
        }
    }
    return true;
}

std::vector<transition_id>
transitions_uncovered_by(const petri_net& net,
                         const std::vector<linalg::int_vector>& invariants)
{
    std::vector<bool> covered(net.transition_count(), false);
    for (const linalg::int_vector& x : invariants) {
        if (x.size() != net.transition_count()) {
            throw model_error("transitions_uncovered_by: invariant size mismatch");
        }
        for (std::size_t i : linalg::support(x)) {
            covered[i] = true;
        }
    }
    std::vector<transition_id> uncovered;
    for (std::size_t i = 0; i < covered.size(); ++i) {
        if (!covered[i]) {
            uncovered.emplace_back(static_cast<std::int32_t>(i));
        }
    }
    return uncovered;
}

std::int64_t weighted_token_sum(const linalg::int_vector& p_invariant,
                                const std::vector<std::int64_t>& marking)
{
    return linalg::dot(p_invariant, marking);
}

} // namespace fcqss::pn
