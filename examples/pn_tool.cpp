// pn_tool: command-line front end for the whole pipeline.
//
//   pn_tool analyze  model.pn      structural + behavioural analysis
//   pn_tool schedule model.pn      quasi-static schedulability + cycles
//   pn_tool report   model.pn      full synthesis report
//   pn_tool codegen  model.pn      emit the synthesized C to stdout
//   pn_tool dot      model.pn      emit graphviz
//   pn_tool explore  [--threads N] [--max-states S] [--max-tokens K]
//                    [--max-bytes B[K|M|G]]
//                    [--reduce none|stubborn|stubborn-ltlx]
//                    [--order ordered|unordered]
//                    [--stats[=FILE]] [--trace=FILE]
//                    model.pn      explicit state-space exploration on the
//                                  engine (N != 1 runs the sharded parallel
//                                  engine; results are identical).  --reduce
//                                  stubborn expands a deadlock-preserving
//                                  stubborn subset per state: deadlock
//                                  verdicts are exact, state counts shrink,
//                                  but the reachability set is partial.
//                                  stubborn-ltlx adds the visibility and
//                                  no-ignoring conditions, so liveness and
//                                  stutter-invariant verdicts stay exact too.
//                                  --max-bytes caps the resident marking-
//                                  arena bytes: chunks spill to an mmap'd
//                                  temp file and cold ones are evicted; the
//                                  graph is bit-identical to the unlimited
//                                  run at any spill ratio.
//                                  --order unordered with a binding
//                                  --max-states cannot keep exact truncation
//                                  semantics in a free-running schedule, so
//                                  the engine re-runs level-synchronously;
//                                  the run prints a one-line note on stderr
//                                  and counts pn.unord.budget_fallbacks in
//                                  --stats when that happens.
//                                  --stats dumps the engine counters as
//                                  metrics JSONL (stdout, or FILE); --trace
//                                  writes a Chrome trace of the run's phase
//                                  spans, loadable in Perfetto
//   pn_tool batch    [--jobs N] [--max-allocations A] [--no-codegen]
//                    [--verbose] [--stats[=FILE]] [--trace=FILE] model.pn...
//                                  run the full flow over many nets in
//                                  parallel and print a batch report
//   pn_tool generate [--seed S] [--count N]
//                    [--family fc|mg|choice|client|layered|bursty]
//                    [--sources K] [--depth D] [--tokens L] [--defects P]
//                    [--credit C]
//                    --out DIR     write random workload nets as .pn files
//                                  (--credit C bounds each source to C
//                                  firings via a seeded credit place)
//   pn_tool fuzz     [--seeds N] [--seed-begin S] [--family F]...
//                    [--mutations M] [--max-states S] [--max-bytes B]
//                    [--threads N] [--no-shrink] [--no-synthesis] [--out DIR]
//                                  differential fuzzing: mutate generated
//                                  nets (pn/mutator.hpp) and require
//                                  agreeing verdicts across {sequential,
//                                  parallel} x {none, deadlock, ltl_x} plus
//                                  a clean synthesis verdict; disagreements
//                                  are shrunk to minimal .pn reproducers in
//                                  DIR (default fuzz-reproducers/), exit 1
//   pn_tool serve    [--jobs N] [--queue N] [--cache N]
//                    [--max-allocations A] [--no-codegen] [--no-code]
//                    [--max-input-bytes B] [--max-bytes B] [--tcp PORT]
//                    [--stats[=FILE]] [--trace=FILE]
//                                  resident synthesis service speaking
//                                  line-delimited JSON on stdin/stdout
//                                  (or a loopback TCP port with --tcp);
//                                  --max-bytes sets the server-owned
//                                  resident arena budget for "op":"explore"
//                                  requests; see src/svc/protocol.hpp for
//                                  the wire protocol and README for a
//                                  session
//
// Exit codes: single-net commands (analyze/schedule/report/codegen/dot)
// exit with the stable pipeline wire code of their outcome — 0 ok,
// 4 parse_failed, 6 not_free_choice, 7 not_schedulable, ... — the same
// numbers the service protocol sends as "code" (see pipeline::wire_code).
// Usage problems exit 2 everywhere; batch keeps its aggregate 0/1 contract.
//
// Example model files can be produced with pnio::save_net, written by hand
// (see the grammar in src/pnio/lexer.hpp), or generated with `generate`.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/cli/cli.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "obs/obs.hpp"
#include "pipeline/fuzz.hpp"
#include "pipeline/net_generator.hpp"
#include "pipeline/service.hpp"
#include "pipeline/synthesis_pipeline.hpp"
#include "pn/coverability.hpp"
#include "pn/invariants.hpp"
#include "pn/net_class.hpp"
#include "pn/reachability.hpp"
#include "pn/structure.hpp"
#include "pnio/dot.hpp"
#include "pnio/parser.hpp"
#include "pnio/writer.hpp"
#include "qss/report.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "qss/valid_schedule.hpp"
#include "svc/server.hpp"

namespace {

using namespace fcqss;

// ------------------------------------------------------------ single-net --

int analyze_net(const pn::petri_net& net)
{
    const pn::net_statistics stats = pn::statistics(net);
    std::printf("net '%s': %zu places, %zu transitions, %zu arcs\n", net.name().c_str(),
                stats.places, stats.transitions, stats.arcs);
    std::printf("  class: %s\n", to_string(pn::classify(net)).c_str());
    std::printf("  choices: %zu, merges: %zu, sources: %zu, sinks: %zu\n", stats.choices,
                stats.merges, stats.source_transitions, stats.sink_transitions);
    std::printf("  consistent: %s, conservative: %s\n",
                pn::is_consistent(net) ? "yes" : "no",
                pn::is_conservative(net) ? "yes" : "no");

    const auto tree = pn::build_coverability_tree(net);
    if (tree.truncated) {
        std::printf("  boundedness: unknown (coverability tree truncated)\n");
    } else {
        std::printf("  bounded under arbitrary firing: %s\n",
                    pn::is_bounded(tree) ? "yes" : "no");
    }

    std::printf("  minimal T-invariants:\n");
    for (const auto& x : pn::t_invariants(net)) {
        std::printf("    (");
        for (std::size_t i = 0; i < x.size(); ++i) {
            std::printf("%s%lld", i ? "," : "", static_cast<long long>(x[i]));
        }
        std::printf(")\n");
    }
    return 0;
}

int schedule_net(const pn::petri_net& net)
{
    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::printf("NOT quasi-statically schedulable.\n%s\n", result.diagnosis.c_str());
        return pipeline::wire_code(pipeline::pipeline_status::not_schedulable);
    }
    std::printf("quasi-statically schedulable: %zu finite complete cycles\n",
                result.entries.size());
    for (const qss::schedule_entry& entry : result.entries) {
        std::printf("  %s\n", to_string(net, entry.analysis.cycle).c_str());
    }
    const auto violation = qss::check_valid_schedule(net, result.cycles());
    std::printf("Definition 3.1 check: %s\n",
                violation ? violation->describe(net).c_str() : "valid");
    const qss::task_partition partition = qss::partition_tasks(net, result);
    std::printf("tasks: %zu\n", partition.tasks.size());
    for (const qss::task_group& task : partition.tasks) {
        std::printf("  %s (%zu transitions)\n", task.name.c_str(), task.members.size());
    }
    return 0;
}

int codegen_net(const pn::petri_net& net)
{
    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::fprintf(stderr, "not schedulable: %s\n", result.diagnosis.c_str());
        return pipeline::wire_code(pipeline::pipeline_status::not_schedulable);
    }
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    std::printf("%s", cgen::emit_c(program).c_str());
    return 0;
}

/// Runs one `cmd model.pn` command; failures exit with the status's wire
/// code (so `pn_tool schedule bad.pn; echo $?` and a service "code" field
/// agree about what happened).
int run_single(int argc, char** argv, int (*handler)(const pn::petri_net&))
{
    if (argc != 3) {
        std::fprintf(stderr, "%s takes exactly one model file\n", argv[1]);
        return 2;
    }
    try {
        const pn::petri_net net = pnio::load_net(argv[2]);
        return handler(net);
    } catch (...) {
        std::string diagnosis;
        const pipeline::pipeline_status status =
            pipeline::status_of_current_exception(diagnosis);
        std::fprintf(stderr, "error (%s): %s\n", pipeline::to_string(status),
                     diagnosis.c_str());
        return pipeline::wire_code(status);
    }
}

int cmd_analyze(int argc, char** argv)
{
    return run_single(argc, argv, analyze_net);
}

int cmd_schedule(int argc, char** argv)
{
    return run_single(argc, argv, schedule_net);
}

int cmd_report(int argc, char** argv)
{
    return run_single(argc, argv, [](const pn::petri_net& net) {
        std::printf("%s", qss::synthesis_report(net).c_str());
        return 0;
    });
}

int cmd_codegen(int argc, char** argv)
{
    return run_single(argc, argv, codegen_net);
}

int cmd_dot(int argc, char** argv)
{
    return run_single(argc, argv, [](const pn::petri_net& net) {
        std::printf("%s", pnio::to_dot(net).c_str());
        return 0;
    });
}

// --------------------------------------------------------------- explore --

/// The --reduce spellings, shared between the flag table and the synopsis.
enum class reduce_mode { none, stubborn, stubborn_ltlx };

constexpr cli::enum_choice<reduce_mode> reduce_choices[] = {
    {"none", reduce_mode::none},
    {"stubborn", reduce_mode::stubborn},
    {"stubborn-ltlx", reduce_mode::stubborn_ltlx},
};

/// The --order spellings: level-synchronous BFS vs barrier-free expansion
/// with a BFS renumber pass.  Both produce bit-identical graphs.
constexpr cli::enum_choice<pn::exploration_order> order_choices[] = {
    {"ordered", pn::exploration_order::ordered},
    {"unordered", pn::exploration_order::unordered},
};

constexpr cli::enum_choice<pipeline::net_family> family_choices[] = {
    {"fc", pipeline::net_family::free_choice},
    {"mg", pipeline::net_family::marked_graph},
    {"choice", pipeline::net_family::choice_heavy},
    {"client", pipeline::net_family::client_server},
    {"layered", pipeline::net_family::layered_pipeline},
    {"bursty", pipeline::net_family::bursty_multirate},
};

int cmd_explore(int argc, char** argv)
{
    pn::reachability_options options;
    options.threads = 1;
    cli::telemetry_options telemetry;
    std::string path;
    for (int i = 2; i < argc; ++i) {
        long value = 0;
        unsigned long long bytes = 0;
        reduce_mode mode = reduce_mode::none;
        if (cli::int_option(argc, argv, i, "--threads", value)) {
            options.threads = value >= 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--max-states", value)) {
            options.max_markings = value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--max-tokens", value)) {
            options.max_tokens_per_place = value > 0 ? value : 1;
        } else if (cli::byte_option(argc, argv, i, "--max-bytes", bytes)) {
            options.max_bytes = static_cast<std::size_t>(bytes);
        } else if (cli::enum_option(argc, argv, i, "--reduce", reduce_choices, mode)) {
            options.reduction = mode == reduce_mode::none
                                    ? pn::reduction_kind::none
                                    : pn::reduction_kind::stubborn;
            options.strength = mode == reduce_mode::stubborn_ltlx
                                   ? pn::reduction_strength::ltl_x
                                   : pn::reduction_strength::deadlock;
        } else if (cli::enum_option(argc, argv, i, "--order", order_choices,
                                    options.order)) {
        } else if (telemetry.parse(argv[i])) {
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown explore option '%s'\n", argv[i]);
            return 2;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "explore takes one model file\n");
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "explore: no input file\n");
        return 2;
    }
    if (const int status = telemetry.enable()) {
        return status;
    }

    const pn::petri_net net = pnio::load_net(path);
    const bool reduced = options.reduction == pn::reduction_kind::stubborn;
    const bool ltlx = reduced && options.strength == pn::reduction_strength::ltl_x;
    const pn::state_space space = pn::explore_space(net, options);
    if (space.unordered_fallback()) {
        std::fprintf(stderr,
                     "note: unordered exploration hit the state budget; "
                     "re-ran level-synchronous for exact truncation\n");
    }
    std::printf("net '%s': explored %zu states, %zu edges%s%s\n", net.name().c_str(),
                space.state_count(), space.edge_count(),
                !reduced ? ""
                : ltlx   ? " (stubborn reduction: liveness-preserving ltl_x fragment)"
                         : " (stubborn reduction: deadlock-preserving fragment)",
                space.truncated() ? " (truncated by budget)" : "");
    std::printf("  store: %.2f MiB arena+table\n",
                static_cast<double>(space.store().memory_bytes()) / (1024.0 * 1024.0));
    if (options.max_bytes != 0) {
        std::printf("  spill: %.2f MiB arena under a %.2f MiB resident budget\n",
                    static_cast<double>(space.store().arena_bytes()) /
                        (1024.0 * 1024.0),
                    static_cast<double>(options.max_bytes) / (1024.0 * 1024.0));
    }

    const auto dead = pn::find_deadlock(net, space);
    if (dead) {
        std::printf("  deadlock: state %u reachable via %zu firings\n", *dead,
                    pn::shortest_path_to(net, space, space.marking_of(*dead))
                        .value_or(pn::firing_sequence{})
                        .size());
    } else {
        std::printf("  deadlock: none%s\n",
                    space.truncated() ? " in the explored region" : "");
    }

    const std::vector<std::int64_t> bounds = pn::place_bounds(space);
    std::int64_t max_bound = 0;
    for (const std::int64_t b : bounds) {
        max_bound = std::max(max_bound, b);
    }
    std::printf("  max tokens in any place: %lld%s\n",
                static_cast<long long>(max_bound),
                reduced ? " (over the reduced fragment only)" : "");
    return telemetry.emit();
}

// ----------------------------------------------------------------- batch --

int cmd_batch(int argc, char** argv)
{
    pipeline::pipeline_options options;
    cli::telemetry_options telemetry;
    bool verbose = false;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        long value = 0;
        if (cli::int_option(argc, argv, i, "--jobs", value)) {
            options.jobs = value > 0 ? static_cast<std::size_t>(value) : 0;
        } else if (cli::int_option(argc, argv, i, "--max-allocations", value)) {
            options.scheduler.max_allocations =
                value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (std::strcmp(argv[i], "--no-codegen") == 0) {
            options.generate_code = false;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (telemetry.parse(argv[i])) {
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown batch option '%s'\n", argv[i]);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "batch: no input files\n");
        return 2;
    }
    if (const int status = telemetry.enable()) {
        return status;
    }

    const pipeline::synthesis_pipeline pipe(options);
    const pipeline::batch_report report = pipe.run_files(paths);

    bool hard_failure = false;
    for (const pipeline::pipeline_result& r : report.results) {
        const bool rejected = r.status != pipeline::pipeline_status::ok;
        if (verbose || rejected) {
            std::printf("%-16s %s", pipeline::to_string(r.status), r.name.c_str());
            if (r.ok()) {
                std::printf("  (%zu cycles, %zu tasks, %d C lines, %.2f ms)",
                            r.cycles, r.tasks, r.code_lines,
                            r.timings.total() / 1000.0);
            } else if (!r.diagnosis.empty()) {
                std::printf("\n    %s", r.diagnosis.c_str());
            }
            std::printf("\n");
        }
        hard_failure = hard_failure ||
                       r.status == pipeline::pipeline_status::load_failed ||
                       r.status == pipeline::pipeline_status::parse_failed ||
                       r.status == pipeline::pipeline_status::invalid_model ||
                       r.status == pipeline::pipeline_status::failed;
    }
    std::printf("%s", report.summary().c_str());
    if (const int status = telemetry.emit()) {
        return status;
    }
    return hard_failure ? 1 : 0;
}

// -------------------------------------------------------------- generate --

int cmd_generate(int argc, char** argv)
{
    long seed = 1;
    long count = 10;
    std::string out_dir;
    pipeline::generator_options options;
    for (int i = 2; i < argc; ++i) {
        long value = 0;
        if (cli::int_option(argc, argv, i, "--seed", value)) {
            seed = value;
        } else if (cli::int_option(argc, argv, i, "--count", value)) {
            count = value;
        } else if (cli::int_option(argc, argv, i, "--sources", value)) {
            options.sources = static_cast<int>(value);
        } else if (cli::int_option(argc, argv, i, "--depth", value)) {
            options.depth = static_cast<int>(value);
        } else if (cli::int_option(argc, argv, i, "--tokens", value)) {
            options.token_load = static_cast<int>(value);
        } else if (cli::int_option(argc, argv, i, "--defects", value)) {
            options.defect_percent = static_cast<int>(value);
        } else if (cli::int_option(argc, argv, i, "--credit", value)) {
            options.source_credit = static_cast<int>(value);
        } else if (cli::enum_option(argc, argv, i, "--family", family_choices,
                                    options.family)) {
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::fprintf(stderr, "unknown generate option '%s'\n", argv[i]);
            return 2;
        }
    }
    if (out_dir.empty() || count <= 0) {
        std::fprintf(stderr, "generate: --out DIR is required and --count must be > 0\n");
        return 2;
    }
    std::filesystem::create_directories(out_dir);
    pipeline::net_generator generator(static_cast<std::uint64_t>(seed), options);
    for (long i = 0; i < count; ++i) {
        const pn::petri_net net = generator.next();
        pnio::save_net(net, out_dir + "/" + net.name() + ".pn");
    }
    std::printf("wrote %ld nets to %s\n", count, out_dir.c_str());
    return 0;
}

// ------------------------------------------------------------------ fuzz --

int cmd_fuzz(int argc, char** argv)
{
    pipeline::fuzz_options options;
    cli::telemetry_options telemetry;
    std::string out_dir = "fuzz-reproducers";
    bool verbose = false;
    for (int i = 2; i < argc; ++i) {
        long value = 0;
        unsigned long long bytes = 0;
        pipeline::net_family family = pipeline::net_family::free_choice;
        if (cli::int_option(argc, argv, i, "--seeds", value)) {
            options.seeds = value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--seed-begin", value)) {
            options.seed_begin = value >= 0 ? static_cast<std::uint64_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--mutations", value)) {
            options.mutation.count = value >= 0 ? static_cast<int>(value) : 0;
        } else if (cli::int_option(argc, argv, i, "--max-states", value)) {
            options.max_states = value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::byte_option(argc, argv, i, "--max-bytes", bytes)) {
            options.max_bytes = static_cast<std::size_t>(bytes);
        } else if (cli::int_option(argc, argv, i, "--threads", value)) {
            options.threads = value > 1 ? static_cast<std::size_t>(value) : 2;
        } else if (cli::int_option(argc, argv, i, "--max-allocations", value)) {
            options.max_allocations = value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::enum_option(argc, argv, i, "--family", family_choices,
                                    family)) {
            options.families.push_back(family);
        } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
            options.shrink = false;
        } else if (std::strcmp(argv[i], "--no-synthesis") == 0) {
            options.run_synthesis = false;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (telemetry.parse(argv[i])) {
        } else {
            std::fprintf(stderr, "unknown fuzz option '%s'\n", argv[i]);
            return 2;
        }
    }
    if (const int status = telemetry.enable()) {
        return status;
    }

    // Reproducers stream to disk as they are minimized, so even a run
    // killed by a CI timeout leaves its findings behind.
    bool write_failed = false;
    const auto save_finding = [&](const pipeline::fuzz_finding& finding) {
        std::filesystem::create_directories(out_dir);
        const std::string path = out_dir + "/" + finding.net_name + "_seed" +
                                 std::to_string(finding.seed) + ".pn";
        std::fprintf(stderr, "FINDING seed %llu family %s: %s\n  reproducer: %s\n",
                     static_cast<unsigned long long>(finding.seed),
                     pipeline::to_string(finding.family), finding.reason.c_str(),
                     path.c_str());
        write_failed = cli::write_text_file(path, finding.reproducer) != 0 ||
                       write_failed;
    };

    const pipeline::fuzz_report report = pipeline::run_fuzz(options, save_finding);
    if (verbose || !report.clean()) {
        for (const pipeline::fuzz_finding& finding : report.findings) {
            std::printf("disagreement at seed %llu (%s, %zu mutations, %zu shrink "
                        "steps): %s\n",
                        static_cast<unsigned long long>(finding.seed),
                        pipeline::to_string(finding.family),
                        finding.mutations_applied, finding.shrink_steps,
                        finding.reason.c_str());
        }
    }
    std::printf("fuzz: %zu mutants, %zu matrix runs, %zu disagreements\n",
                report.mutants, report.matrix_runs, report.findings.size());
    if (const int status = telemetry.emit()) {
        return status;
    }
    return report.clean() && !write_failed ? 0 : 1;
}

// ----------------------------------------------------------------- serve --

int cmd_serve(int argc, char** argv)
{
    pipeline::service_options options;
    svc::server_options server;
    cli::telemetry_options telemetry;
    long tcp_port = -1;
    for (int i = 2; i < argc; ++i) {
        long value = 0;
        unsigned long long bytes = 0;
        if (cli::int_option(argc, argv, i, "--jobs", value)) {
            options.jobs = value > 0 ? static_cast<std::size_t>(value) : 0;
        } else if (cli::int_option(argc, argv, i, "--queue", value)) {
            options.max_queue = value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--cache", value)) {
            options.result_cache = value >= 0 ? static_cast<std::size_t>(value) : 0;
        } else if (cli::int_option(argc, argv, i, "--max-allocations", value)) {
            options.pipeline.scheduler.max_allocations =
                value > 0 ? static_cast<std::size_t>(value) : 1;
        } else if (cli::int_option(argc, argv, i, "--max-input-bytes", value)) {
            options.pipeline.limits.max_input_bytes =
                value > 0 ? static_cast<std::size_t>(value) : 1;
            server.max_line_bytes =
                std::max(server.max_line_bytes,
                         2 * options.pipeline.limits.max_input_bytes);
        } else if (std::strcmp(argv[i], "--no-codegen") == 0) {
            options.pipeline.generate_code = false;
        } else if (std::strcmp(argv[i], "--no-code") == 0) {
            server.session.include_code = false;
        } else if (cli::byte_option(argc, argv, i, "--max-bytes", bytes)) {
            server.session.explore.max_bytes = static_cast<std::size_t>(bytes);
        } else if (cli::int_option(argc, argv, i, "--tcp", value)) {
            tcp_port = value;
        } else if (telemetry.parse(argv[i])) {
        } else {
            std::fprintf(stderr, "unknown serve option '%s'\n", argv[i]);
            return 2;
        }
    }
    if (const int status = telemetry.enable()) {
        return status;
    }

    pipeline::service service(options);
    int exit_code = 0;
    if (tcp_port >= 0) {
        unsigned short bound = 0;
        std::fprintf(stderr, "pn_tool serve: %zu workers, queue %zu\n",
                     service.jobs(), service.options().max_queue);
        exit_code = svc::serve_tcp(service, static_cast<unsigned short>(tcp_port),
                                   server, &bound);
        if (exit_code == 0) {
            std::fprintf(stderr, "pn_tool serve: stopped (port %u)\n", bound);
        } else {
            std::fprintf(stderr, "pn_tool serve: cannot listen on 127.0.0.1:%ld\n",
                         tcp_port);
        }
    } else {
        exit_code = svc::serve_stdio(service, STDIN_FILENO, STDOUT_FILENO, server);
    }
    service.drain();

    if (const int status = telemetry.emit()) {
        return status;
    }
    return exit_code;
}

// -------------------------------------------------------------- registry --

constexpr cli::command commands[] = {
    {"analyze", "model.pn", cmd_analyze},
    {"schedule", "model.pn", cmd_schedule},
    {"report", "model.pn", cmd_report},
    {"codegen", "model.pn", cmd_codegen},
    {"dot", "model.pn", cmd_dot},
    {"explore",
     "[--threads N] [--max-states S] [--max-tokens K] [--max-bytes B]\n"
     "                  [--reduce none|stubborn|stubborn-ltlx]\n"
     "                  [--order ordered|unordered]\n"
     "                  [--stats[=FILE]] [--trace=FILE] model.pn",
     cmd_explore},
    {"batch",
     "[--jobs N] [--max-allocations A] [--no-codegen] [--verbose]\n"
     "                  [--stats[=FILE]] [--trace=FILE] model.pn...",
     cmd_batch},
    {"generate",
     "[--seed S] [--count N] [--family fc|mg|choice|client|layered|bursty]\n"
     "                  [--sources K] [--depth D] [--tokens L] [--defects P] "
     "[--credit C]\n"
     "                  --out DIR",
     cmd_generate},
    {"fuzz",
     "[--seeds N] [--seed-begin S] [--family F]... [--mutations M]\n"
     "                  [--max-states S] [--max-bytes B] [--threads N] "
     "[--max-allocations A]\n"
     "                  [--no-shrink] [--no-synthesis] [--verbose] [--out DIR]\n"
     "                  [--stats[=FILE]] [--trace=FILE]",
     cmd_fuzz},
    {"serve",
     "[--jobs N] [--queue N] [--cache N] [--max-allocations A]\n"
     "                  [--no-codegen] [--no-code] [--max-input-bytes B] "
     "[--max-bytes B]\n"
     "                  [--tcp PORT]\n"
     "                  [--stats[=FILE]] [--trace=FILE]",
     cmd_serve},
};

} // namespace

int main(int argc, char** argv)
{
    return cli::dispatch("pn_tool", commands, std::size(commands), argc, argv);
}
