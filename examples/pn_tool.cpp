// pn_tool: command-line front end for the whole pipeline.
//
//   pn_tool analyze  model.pn      structural + behavioural analysis
//   pn_tool schedule model.pn      quasi-static schedulability + cycles
//   pn_tool report   model.pn      full synthesis report
//   pn_tool codegen  model.pn      emit the synthesized C to stdout
//   pn_tool dot      model.pn      emit graphviz
//
// Example model files can be produced with pnio::save_net or written by
// hand; see the grammar in src/pnio/lexer.hpp.
#include <cstdio>
#include <cstring>

#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/coverability.hpp"
#include "pn/invariants.hpp"
#include "pn/net_class.hpp"
#include "pn/structure.hpp"
#include "pnio/dot.hpp"
#include "pnio/parser.hpp"
#include "qss/report.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "qss/valid_schedule.hpp"

namespace {

using namespace fcqss;

int analyze(const pn::petri_net& net)
{
    const pn::net_statistics stats = pn::statistics(net);
    std::printf("net '%s': %zu places, %zu transitions, %zu arcs\n", net.name().c_str(),
                stats.places, stats.transitions, stats.arcs);
    std::printf("  class: %s\n", to_string(pn::classify(net)).c_str());
    std::printf("  choices: %zu, merges: %zu, sources: %zu, sinks: %zu\n", stats.choices,
                stats.merges, stats.source_transitions, stats.sink_transitions);
    std::printf("  consistent: %s, conservative: %s\n",
                pn::is_consistent(net) ? "yes" : "no",
                pn::is_conservative(net) ? "yes" : "no");

    const auto tree = pn::build_coverability_tree(net);
    if (tree.truncated) {
        std::printf("  boundedness: unknown (coverability tree truncated)\n");
    } else {
        std::printf("  bounded under arbitrary firing: %s\n",
                    pn::is_bounded(tree) ? "yes" : "no");
    }

    std::printf("  minimal T-invariants:\n");
    for (const auto& x : pn::t_invariants(net)) {
        std::printf("    (");
        for (std::size_t i = 0; i < x.size(); ++i) {
            std::printf("%s%lld", i ? "," : "", static_cast<long long>(x[i]));
        }
        std::printf(")\n");
    }
    return 0;
}

int schedule(const pn::petri_net& net)
{
    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::printf("NOT quasi-statically schedulable.\n%s\n", result.diagnosis.c_str());
        return 1;
    }
    std::printf("quasi-statically schedulable: %zu finite complete cycles\n",
                result.entries.size());
    for (const qss::schedule_entry& entry : result.entries) {
        std::printf("  %s\n", to_string(net, entry.analysis.cycle).c_str());
    }
    const auto violation = qss::check_valid_schedule(net, result.cycles());
    std::printf("Definition 3.1 check: %s\n",
                violation ? violation->describe(net).c_str() : "valid");
    const qss::task_partition partition = qss::partition_tasks(net, result);
    std::printf("tasks: %zu\n", partition.tasks.size());
    for (const qss::task_group& task : partition.tasks) {
        std::printf("  %s (%zu transitions)\n", task.name.c_str(), task.members.size());
    }
    return 0;
}

int codegen(const pn::petri_net& net)
{
    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::fprintf(stderr, "not schedulable: %s\n", result.diagnosis.c_str());
        return 1;
    }
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    std::printf("%s", cgen::emit_c(program).c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: pn_tool {analyze|schedule|report|codegen|dot} model.pn\n");
        return 2;
    }
    try {
        const pn::petri_net net = pnio::load_net(argv[2]);
        if (std::strcmp(argv[1], "analyze") == 0) {
            return analyze(net);
        }
        if (std::strcmp(argv[1], "schedule") == 0) {
            return schedule(net);
        }
        if (std::strcmp(argv[1], "report") == 0) {
            std::printf("%s", qss::synthesis_report(net).c_str());
            return 0;
        }
        if (std::strcmp(argv[1], "codegen") == 0) {
            return codegen(net);
        }
        if (std::strcmp(argv[1], "dot") == 0) {
            std::printf("%s", pnio::to_dot(net).c_str());
            return 0;
        }
        std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
