// A producer/consumer pipeline with data-dependent control and multirate
// arcs — the while-do pattern of the paper, executed in-process through the
// generated-code interpreter so you can watch counters evolve.
//
// A packetizer consumes 3 words per packet (multirate join of a stream),
// and a parity choice routes packets to a fast path or a retry path that
// emits two retransmissions per bad packet.
#include <cstdio>

#include "codegen/c_emitter.hpp"
#include "codegen/interpreter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/builder.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

int main()
{
    using namespace fcqss;

    pn::net_builder builder("producer_consumer");
    const auto word = builder.add_transition("word_in"); // source: one word
    const auto pack = builder.add_transition("pack");    // 3 words -> packet
    const auto good = builder.add_transition("good");
    const auto bad = builder.add_transition("bad");
    const auto send = builder.add_transition("send");
    const auto retry = builder.add_transition("retry");

    const auto buffer = builder.add_place("buffer");
    const auto parity = builder.add_place("parity");
    const auto out = builder.add_place("out");
    const auto retx = builder.add_place("retx");

    builder.add_arc(word, buffer);
    builder.add_arc(buffer, pack, 3); // multirate: pack waits for 3 words
    builder.add_arc(pack, parity);
    builder.add_arc(parity, good);
    builder.add_arc(parity, bad);
    builder.add_arc(good, out);
    builder.add_arc(out, send);
    builder.add_arc(bad, retx, 2); // a bad packet costs two retransmissions
    builder.add_arc(retx, retry);
    const pn::petri_net net = std::move(builder).build();

    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::printf("not schedulable: %s\n", result.diagnosis.c_str());
        return 1;
    }
    std::printf("valid schedule:\n");
    for (const qss::schedule_entry& entry : result.entries) {
        std::printf("  %s\n", to_string(net, entry.analysis.cycle).c_str());
    }

    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);

    // Execute 9 word arrivals; parity alternates good/bad deterministically.
    cgen::program_instance instance(program);
    int packet_count = 0;
    const cgen::choice_oracle oracle = [&](pn::place_id) { return packet_count++ % 2; };
    const cgen::action_observer trace = [&](pn::transition_id t) {
        std::printf("    fired %s\n", net.transition_name(t).c_str());
    };

    for (int i = 1; i <= 9; ++i) {
        std::printf("word %d arrives (buffer=%lld)\n", i,
                    static_cast<long long>(instance.counter(buffer)));
        instance.run_source(word, oracle, trace);
    }
    std::printf("final counters: buffer=%lld retx=%lld\n",
                static_cast<long long>(instance.counter(buffer)),
                static_cast<long long>(instance.counter(retx)));

    std::printf("\n----- generated C -----\n%s", cgen::emit_c(program).c_str());
    return 0;
}
