// The paper's Sec. 5 case study end to end: build the ATM server FCPN,
// verify its statistics, run quasi-static scheduling, synthesize the 2-task
// implementation, and execute the 50-cell testbench on the RTOS simulator —
// then compare with the 5-task functional partitioning (Table I).
#include <cstdio>

#include "apps/atm/atm_net.hpp"
#include "apps/atm/table1.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/structure.hpp"
#include "pnio/writer.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

int main()
{
    using namespace fcqss;

    const pn::petri_net net = atm::build_atm_net();
    const pn::net_statistics stats = pn::statistics(net);
    std::printf("ATM server FCPN: %zu transitions, %zu places, %zu choices\n",
                stats.transitions, stats.places, stats.choices);

    const qss::qss_result result = qss::quasi_static_schedule(net);
    std::printf("schedulable: %s; %zu finite complete cycles (one per T-reduction)\n",
                result.schedulable ? "yes" : "no", result.entries.size());
    if (!result.schedulable) {
        return 1;
    }

    const qss::task_partition partition = qss::partition_tasks(net, result);
    std::printf("tasks:\n");
    for (const qss::task_group& task : partition.tasks) {
        std::printf("  %-12s sources:", task.name.c_str());
        for (pn::transition_id s : task.sources) {
            std::printf(" %s", net.transition_name(s).c_str());
        }
        std::printf("  (%zu transitions)\n", task.members.size());
    }

    // Run both implementations on the 50-cell testbench.
    atm::testbench_options options;
    options.cell_count = 50;
    const auto events = atm::make_testbench(options);
    const auto qss_impl = atm::run_qss_implementation(events, options.flow_count);
    const auto fun_impl = atm::run_functional_implementation(events, options.flow_count);

    std::printf("\n%-22s %12s %12s\n", "", "QSS", "functional");
    std::printf("%-22s %12d %12d\n", "tasks", qss_impl.task_count, fun_impl.task_count);
    std::printf("%-22s %12d %12d\n", "lines of C", qss_impl.lines_of_c,
                fun_impl.lines_of_c);
    std::printf("%-22s %12lld %12lld\n", "clock cycles",
                static_cast<long long>(qss_impl.clock_cycles),
                static_cast<long long>(fun_impl.clock_cycles));
    std::printf("%-22s %12zu %12zu\n", "cells emitted", qss_impl.emitted.size(),
                fun_impl.emitted.size());
    std::printf("%-22s %12lld %12lld\n", "cells discarded",
                static_cast<long long>(qss_impl.dropped_cells),
                static_cast<long long>(fun_impl.dropped_cells));

    std::printf("\nfirst emitted cells (id@vc):");
    for (std::size_t i = 0; i < qss_impl.emitted.size() && i < 12; ++i) {
        std::printf(" %d@%d", qss_impl.emitted[i].id, qss_impl.emitted[i].vc);
    }
    std::printf("\n");

    // Persist the model and the synthesized code next to the binary.
    pnio::save_net(net, "atm_server.pn");
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    std::printf("\nwrote atm_server.pn; generated C is %d non-blank lines\n",
                cgen::emitted_line_count(program));
    return 0;
}
