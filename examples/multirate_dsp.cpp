// Multirate dataflow: the workload class the paper says Lin's safe-net
// method cannot handle ("multirate specifications, like FFT computations
// and downsampling").  A 2:1 downsampler followed by an 8-point block FFT
// stage, modeled as SDF, statically scheduled, then pushed through the QSS
// pipeline (a marked graph is the choice-free special case).
#include <cstdio>

#include "pnio/dot.hpp"
#include "qss/scheduler.hpp"
#include "sdf/buffer_bounds.hpp"
#include "sdf/sdf_graph.hpp"
#include "sdf/static_schedule.hpp"

int main()
{
    using namespace fcqss;

    // adc -> down(2:1) -> block(1:8 collect) -> fft(8 in, 8 out) -> dac
    sdf::sdf_graph graph("downsample_fft");
    const auto adc = graph.add_actor("adc");
    const auto down = graph.add_actor("down");
    const auto fft = graph.add_actor("fft");
    const auto dac = graph.add_actor("dac");
    graph.add_channel(adc, down, 1, 2);  // consume 2 samples, keep 1
    graph.add_channel(down, fft, 1, 8);  // collect an 8-point block
    graph.add_channel(fft, dac, 8, 1);   // emit the block samplewise

    const sdf::static_schedule schedule = sdf::compute_static_schedule(graph);
    if (!schedule.ok()) {
        std::printf("static scheduling failed: %s\n",
                    to_string(schedule.failure).c_str());
        return 1;
    }

    std::printf("repetition vector:");
    for (std::size_t a = 0; a < graph.actor_count(); ++a) {
        std::printf(" %s=%lld", graph.actor_name(a).c_str(),
                    static_cast<long long>(schedule.repetitions.counts[a]));
    }
    std::printf("\nstatic schedule: %s\n", to_string(graph, schedule).c_str());

    const auto bounds = sdf::buffer_bounds(graph, schedule);
    std::printf("buffer bounds (tokens):");
    for (std::size_t c = 0; c < bounds.size(); ++c) {
        std::printf(" ch%zu=%lld", c, static_cast<long long>(bounds[c]));
    }
    std::printf("\ntotal buffer memory at 4 bytes/sample: %lld bytes\n",
                static_cast<long long>(sdf::total_buffer_bytes(bounds, 4)));

    // The same graph as a Petri net: QSS degenerates to static scheduling.
    const pn::petri_net net = sdf::to_petri_net(graph);
    const qss::qss_result result = qss::quasi_static_schedule(net);
    std::printf("QSS on the marked-graph view: %s, %zu reduction(s)\n",
                result.schedulable ? "schedulable" : "NOT schedulable",
                result.entries.size());

    std::printf("\n----- graphviz dot -----\n%s", pnio::to_dot(net).c_str());
    return 0;
}
