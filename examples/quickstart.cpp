// Quickstart: model a small reactive system as a free-choice Petri net,
// check quasi-static schedulability, inspect the valid schedule, and emit
// the C implementation.
//
// The system: a sensor delivers readings (source `sample`); each reading is
// either normal — logged — or an outlier — filtered and logged with a
// correction pass.  This is the paper's if-then-else pattern.
#include <cstdio>

#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/builder.hpp"
#include "pn/firing.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

int main()
{
    using namespace fcqss;

    // 1. Build the net.
    pn::net_builder builder("sensor_filter");
    const auto sample = builder.add_transition("sample"); // input (source)
    const auto classify = builder.add_transition("classify");
    const auto normal = builder.add_transition("normal");
    const auto outlier = builder.add_transition("outlier");
    const auto correct = builder.add_transition("correct");
    const auto log_value = builder.add_transition("log_value");

    const auto raw = builder.add_place("raw");
    const auto kind = builder.add_place("kind"); // data-dependent choice
    const auto bad = builder.add_place("bad");
    const auto ready = builder.add_place("ready"); // merge of both paths

    builder.add_arc(sample, raw);
    builder.add_arc(raw, classify);
    builder.add_arc(classify, kind);
    builder.add_arc(kind, normal);  // choice branch 0
    builder.add_arc(kind, outlier); // choice branch 1
    builder.add_arc(normal, ready);
    builder.add_arc(outlier, bad);
    builder.add_arc(bad, correct);
    builder.add_arc(correct, ready);
    builder.add_arc(ready, log_value);
    const pn::petri_net net = std::move(builder).build();

    // 2. Quasi-static scheduling (Sec. 3 of the paper).
    const qss::qss_result result = qss::quasi_static_schedule(net);
    if (!result.schedulable) {
        std::printf("not schedulable: %s\n", result.diagnosis.c_str());
        return 1;
    }
    std::printf("schedulable; %zu finite complete cycles:\n", result.entries.size());
    for (const qss::schedule_entry& entry : result.entries) {
        std::printf("  %s\n", to_string(net, entry.analysis.cycle).c_str());
    }

    // 3. Task partition: one task per independent input rate.
    const qss::task_partition partition = qss::partition_tasks(net, result);
    std::printf("tasks: %zu\n", partition.tasks.size());
    for (const qss::task_group& task : partition.tasks) {
        std::printf("  %s (%zu transitions)\n", task.name.c_str(), task.members.size());
    }

    // 4. Generate C (Sec. 4).
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    std::printf("\n----- generated C -----\n%s", cgen::emit_c(program).c_str());
    return 0;
}
