// A voice-codec front end mixing all three scheduling regimes the paper
// discusses: a multirate framing stage (static), a voice-activity decision
// (data-dependent control, quasi-static), and silence suppression with
// comfort-noise updates every few frames (multirate behind a choice).
// Demonstrates the full pipeline plus the looped-schedule view of the
// framing stage.
#include <cstdio>

#include "codegen/c_emitter.hpp"
#include "codegen/interpreter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/builder.hpp"
#include "qss/report.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "sdf/looped_schedule.hpp"
#include "sdf/sdf_graph.hpp"
#include "sdf/static_schedule.hpp"

int main()
{
    using namespace fcqss;

    // ---- The control-laden part as a FCPN --------------------------------
    pn::net_builder b("codec_frontend");
    const auto sample = b.add_transition("sample");     // 1 PCM sample (input)
    const auto frame = b.add_transition("frame");       // 4 samples -> 1 frame
    const auto vad = b.add_transition("vad");           // voice activity detect
    const auto voiced = b.add_transition("voiced");
    const auto silent = b.add_transition("silent");
    const auto encode = b.add_transition("encode");     // code the frame
    const auto packet = b.add_transition("packet");     // 2 coded frames -> 1 pkt
    const auto sid_update = b.add_transition("sid_update"); // comfort noise

    const auto pcm = b.add_place("pcm");
    const auto frames = b.add_place("frames");
    const auto decision = b.add_place("decision");
    const auto active = b.add_place("active");
    const auto coded = b.add_place("coded");
    const auto sid = b.add_place("sid");

    b.add_arc(sample, pcm);
    b.add_arc(pcm, frame, 4);       // multirate: framing
    b.add_arc(frame, frames);
    b.add_arc(frames, vad);
    b.add_arc(vad, decision);
    b.add_arc(decision, voiced);    // choice: speech present?
    b.add_arc(decision, silent);
    b.add_arc(voiced, active);
    b.add_arc(active, encode);
    b.add_arc(encode, coded);
    b.add_arc(coded, packet, 2);    // multirate: packetization
    b.add_arc(silent, sid, 2);      // a silent frame schedules 2 SID ticks
    b.add_arc(sid, sid_update);
    const pn::petri_net net = std::move(b).build();

    std::printf("%s\n", qss::synthesis_report(net).c_str());

    const qss::qss_result result = qss::quasi_static_schedule(net);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);

    // Run 16 samples with a deterministic 3-voiced-then-1-silent pattern.
    cgen::program_instance instance(program);
    int frames_seen = 0;
    const cgen::choice_oracle vad_oracle = [&](pn::place_id) {
        return (frames_seen++ % 4 == 3) ? 1 : 0;
    };
    std::int64_t fired_encode = 0;
    std::int64_t fired_sid = 0;
    const cgen::action_observer count = [&](pn::transition_id t) {
        if (t == encode) {
            ++fired_encode;
        }
        if (t == sid_update) {
            ++fired_sid;
        }
    };
    for (int i = 0; i < 16; ++i) {
        instance.run_source(sample, vad_oracle, count);
    }
    std::printf("after 16 samples: %lld frames encoded, %lld SID updates, "
                "%lld coded frames waiting for packetization\n",
                static_cast<long long>(fired_encode),
                static_cast<long long>(fired_sid),
                static_cast<long long>(instance.counter(coded)));

    // ---- The pure framing stage as SDF with a looped schedule -------------
    sdf::sdf_graph stage("framing");
    const auto s = stage.add_actor("sample");
    const auto f = stage.add_actor("frame");
    const auto e = stage.add_actor("encode");
    stage.add_channel(s, f, 1, 4);
    stage.add_channel(f, e, 1, 1);
    const auto flat = sdf::compute_static_schedule(stage);
    const auto looped = sdf::compress(flat.firing_order);
    const auto sas = sdf::single_appearance_schedule(stage);
    std::printf("\nframing stage flat schedule:   %s\n",
                to_string(stage, flat).c_str());
    std::printf("compressed loop form:          %s\n",
                to_string(stage, looped).c_str());
    std::printf("single-appearance schedule:    %s\n", to_string(stage, sas).c_str());
    return 0;
}
