#!/bin/sh
# Mechanical clang-format sweep over every tracked C++ source, matching the
# CI format gate (`clang-format --dry-run -Werror`).  Run it after touching
# the tree on a machine without format-on-save:
#
#   tools/format.sh              # rewrite in place
#   CLANG_FORMAT=clang-format-18 tools/format.sh
set -e
cd "$(dirname "$0")/.."
git ls-files '*.cpp' '*.hpp' | xargs "${CLANG_FORMAT:-clang-format}" -i
git diff --stat
