#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and report throughput movement.

The bench binaries emit one JSON object per row::

    {"bench": "<heading>", "label": "<row label>", "value": "<text>"}

This tool joins two such files on (bench, label), keeps the rows whose
values parse as numbers and whose labels look like throughput or speedup
metrics (states/s, nets/s, speedup, ... — configurable with --metric), and
prints old vs new with the relative change.  With --fail-below PCT the exit
status is 1 when any tracked metric regressed by more than PCT percent,
which makes the script usable both as a local trajectory viewer::

    tools/bench_diff.py /tmp/prev/BENCH_scaling.json BENCH_scaling.json

and as a CI regression tripwire alongside the hard speedup gates::

    tools/bench_diff.py old.json new.json --fail-below 30

Rows present in only one artifact are reported informationally (added /
removed) and never fail the run: benches grow and retire rows across PRs,
and a diff spanning such a change must still compare what it can.  A second
label class, --info-metric (engine-health rows like probe rate or the obs
idle overhead), is displayed with deltas but exempt from --fail-below —
those metrics legitimately move both ways, so a drop is not a regression.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def load_rows(path: str) -> dict[tuple[str, str], float]:
    """(bench, label) -> numeric value, for every parseable row."""
    rows: dict[tuple[str, str], float] = {}
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(row, dict):
                    continue
                bench = row.get("bench")
                label = row.get("label")
                value = row.get("value")
                if not isinstance(bench, str) or not isinstance(label, str):
                    continue
                try:
                    rows[(bench, label)] = float(value)
                except (TypeError, ValueError):
                    continue
    except OSError as error:
        sys.exit(f"bench_diff: cannot read {path}: {error}")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff throughput rows across two BENCH_*.json artifacts."
    )
    parser.add_argument("old", help="baseline artifact (e.g. from the previous run)")
    parser.add_argument("new", help="current artifact")
    parser.add_argument(
        "--metric",
        default=(
            r"(states/s|nets/s|nodes/s|st/s|requests/s|mutants/s|nets/second"
            r"|/second|speedup|throughput|reduction ratio|ltlx ratio"
            r"|unord4 vs par4|unord identical|spill identical)"
        ),
        help="regex selecting the labels to track (default: throughput-ish rows "
        "— which includes the external-memory 'spill states/s @…' series — "
        "the stubborn-reduction and ltl_x ratios, and the unordered-engine "
        "and spill bit-identity rows)",
    )
    parser.add_argument(
        "--info-metric",
        default=r"(probe rate|shard imbalance|overhead pct|dedupe? hit rate|latency ms)",
        metavar="REGEX",
        help="regex selecting labels shown with deltas but exempt from "
        "--fail-below (default: the obs engine-health and service latency "
        "rows); empty disables",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        metavar="PCT",
        help="exit 1 when any tracked metric drops by more than PCT percent",
    )
    args = parser.parse_args()

    metric = re.compile(args.metric)
    info = re.compile(args.info_metric) if args.info_metric else None

    def classify(label: str) -> str | None:
        """'info' beats 'tracked': health rows stay exempt even when they
        also look like throughput (e.g. "obs idle overhead pct")."""
        if info is not None and info.search(label):
            return "info"
        if metric.search(label):
            return "tracked"
        return None

    old_rows = load_rows(args.old)
    new_rows = load_rows(args.new)

    common = sorted(
        key for key in (old_rows.keys() & new_rows.keys()) if classify(key[1])
    )
    added = sorted(
        key for key in (new_rows.keys() - old_rows.keys()) if classify(key[1])
    )
    removed = sorted(
        key for key in (old_rows.keys() - new_rows.keys()) if classify(key[1])
    )
    if not common and not added and not removed:
        print("bench_diff: no tracked metrics in either artifact")
        return 0

    width = max(len(label) for _, label in common + added + removed)
    width = max(width, len("metric"))
    regressions: list[tuple[str, float]] = []
    print(f"{'metric':<{width}} {'old':>14} {'new':>14} {'delta':>9}")
    for bench, label in common:
        old = old_rows[(bench, label)]
        new = new_rows[(bench, label)]
        delta = (new - old) / old * 100.0 if old != 0 else float("inf")
        suffix = "   (info)" if classify(label) == "info" else ""
        print(f"{label:<{width}} {old:>14.2f} {new:>14.2f} {delta:>+8.1f}%{suffix}")
        if (
            classify(label) == "tracked"
            and args.fail_below is not None
            and delta < -args.fail_below
        ):
            regressions.append((label, delta))

    # One-sided rows are informational: a freshly added or just-retired row
    # has no trajectory to judge, so it can never fail the run.
    for bench, label in added:
        print(f"{label:<{width}} {'-':>14} {new_rows[(bench, label)]:>14.2f}    added")
    for bench, label in removed:
        print(f"{label:<{width}} {old_rows[(bench, label)]:>14.2f} {'-':>14}  removed")

    if regressions:
        print()
        for label, delta in regressions:
            print(f"REGRESSION: {label} fell {delta:+.1f}% "
                  f"(threshold -{args.fail_below}%)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
