// Applicability comparison against the Sec. 1 related work: Lin's safe-net
// synthesis (DAC'98).  The paper's claims, demonstrated concretely:
//   (1) safeness excludes multirate specifications (Fig. 2 / Fig. 4 cores),
//   (2) safeness excludes source/sink transitions (every reactive spec),
//   (3) where both apply, the safe-net state machine grows with the state
//       count while QSS code stays linear in the net.
#include "bench_util.hpp"

#include "baselines/lin_synthesis.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "nets/paper_nets.hpp"
#include "pn/builder.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace {

using namespace fcqss;

// k independent 1-token choice rings joined in one net: safe, autonomous,
// with 3^k reachable markings... actually 3k places but product state space.
pn::petri_net safe_rings(int k)
{
    pn::net_builder b("rings" + std::to_string(k));
    for (int i = 0; i < k; ++i) {
        const std::string suffix = std::to_string(i);
        const auto p1 = b.add_place("p1_" + suffix, 1);
        const auto p2 = b.add_place("p2_" + suffix);
        const auto split = b.add_transition("split_" + suffix);
        const auto back = b.add_transition("back_" + suffix);
        b.add_arc(p1, split);
        b.add_arc(split, p2);
        b.add_arc(p2, back);
        b.add_arc(back, p1);
    }
    return std::move(b).build();
}

void report()
{
    benchutil::heading("Applicability: Lin safe-net baseline vs QSS");
    const struct {
        const char* label;
        pn::petri_net net;
    } cases[] = {
        {"fig2 (multirate)", nets::figure_2()},
        {"fig3a (reactive choice)", nets::figure_3a()},
        {"fig4 (multirate choice)", nets::figure_4()},
        {"fig5", nets::figure_5()},
    };
    std::printf("  %-26s %-44s %s\n", "net", "Lin baseline", "QSS");
    for (const auto& c : cases) {
        const baselines::lin_program lin = baselines::lin_synthesize(c.net);
        const bool qss_ok = qss::quasi_static_schedule(c.net).schedulable;
        std::printf("  %-26s %-44s %s\n", c.label,
                    lin.ok() ? "ok" : to_string(lin.failure).c_str(),
                    qss_ok ? "schedulable" : "rejected");
    }

    benchutil::heading("Code growth: state machine vs quasi-static code");
    std::printf("  %8s %14s %14s\n", "rings", "Lin states", "Lin code size");
    for (int k = 1; k <= 6; ++k) {
        const pn::petri_net net = safe_rings(k);
        const baselines::lin_program lin = baselines::lin_synthesize(net);
        if (!lin.ok()) {
            std::printf("  %8d %14s %14s\n", k, "-", to_string(lin.failure).c_str());
            continue;
        }
        std::printf("  %8d %14zu %14zu   (2^%d product states)\n", k, lin.states.size(),
                    lin.code_size(), k);
    }
    std::printf("  QSS code for the same nets is linear: %d / %d / %d lines for "
                "k = 2 / 4 / 6.\n",
                [](int k) {
                    const auto net = safe_rings(k);
                    const auto r = qss::quasi_static_schedule(net);
                    const auto p = qss::partition_tasks(net, r);
                    return cgen::emitted_line_count(cgen::generate_program(net, r, p));
                }(2),
                [](int k) {
                    const auto net = safe_rings(k);
                    const auto r = qss::quasi_static_schedule(net);
                    const auto p = qss::partition_tasks(net, r);
                    return cgen::emitted_line_count(cgen::generate_program(net, r, p));
                }(4),
                [](int k) {
                    const auto net = safe_rings(k);
                    const auto r = qss::quasi_static_schedule(net);
                    const auto p = qss::partition_tasks(net, r);
                    return cgen::emitted_line_count(cgen::generate_program(net, r, p));
                }(6));
}

void bm_lin_synthesis(benchmark::State& state)
{
    const auto net = safe_rings(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::lin_synthesize(net));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_lin_synthesis)->DenseRange(1, 6)->Complexity();

void bm_qss_on_same_nets(benchmark::State& state)
{
    const auto net = safe_rings(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_qss_on_same_nets)->DenseRange(1, 6)->Complexity();

} // namespace

FCQSS_BENCH_MAIN(report)
