// Extension bench (the paper's proposed future work, Sec. 6): explore
// different schedules and evaluate the tradeoff between code size and buffer
// size.  Unrolling the cycles k-fold batches k input events into straight-
// line code: schedule length (static code) grows linearly while peak token
// counts (buffer memory) grow with the batch size.  Also runs the footnote-2
// executability check on every paper net.
#include "bench_util.hpp"

#include "apps/atm/atm_net.hpp"
#include "nets/paper_nets.hpp"
#include "qss/executability.hpp"
#include "qss/scheduler.hpp"
#include "qss/tradeoff.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Code size vs buffer size across schedule unrollings");
    for (const pn::petri_net& net :
         {nets::figure_4(), nets::figure_5(), atm::build_atm_net()}) {
        const auto result = qss::quasi_static_schedule(net);
        std::printf("  net %-12s %8s %16s %16s %12s\n", net.name().c_str(), "unroll",
                    "schedule len", "buffer tokens", "max place");
        for (const qss::tradeoff_point& point :
             qss::explore_tradeoff(net, result, 4)) {
            std::printf("  %16s %8lld %16lld %16lld %12lld\n", "",
                        static_cast<long long>(point.unroll),
                        static_cast<long long>(point.schedule_length),
                        static_cast<long long>(point.total_buffer_tokens),
                        static_cast<long long>(point.max_place_tokens));
        }
    }

    benchutil::heading("Footnote-2 executability check");
    for (const pn::petri_net& net : {nets::figure_2(), nets::figure_3a(),
                                     nets::figure_4(), nets::figure_5(),
                                     atm::build_atm_net()}) {
        const auto result = qss::quasi_static_schedule(net);
        const auto failure = qss::check_executability(net, result);
        benchutil::row(net.name(),
                       failure ? ("BLOCKS: " + failure->context) : "executable");
    }
}

void bm_tradeoff_fig5(benchmark::State& state)
{
    const auto net = nets::figure_5();
    const auto result = qss::quasi_static_schedule(net);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            qss::explore_tradeoff(net, result, state.range(0)));
    }
}
BENCHMARK(bm_tradeoff_fig5)->Arg(2)->Arg(4)->Arg(8);

void bm_executability_atm(benchmark::State& state)
{
    const auto net = atm::build_atm_net();
    const auto result = qss::quasi_static_schedule(net);
    qss::executability_options options;
    options.random_rounds = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::check_executability(net, result, options));
    }
}
BENCHMARK(bm_executability_atm);

} // namespace

FCQSS_BENCH_MAIN(report)
