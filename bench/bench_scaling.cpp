// Complexity claims of Secs. 3-4: the number of T-reductions is exponential
// in the number of (reachable, independent) choices, per-reduction static
// scheduling is polynomial, and the size of the generated C code is linear
// in the size of the net.  This bench constructs parameterized net families
// and prints the measured series.
#include "bench_util.hpp"

#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/builder.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace {

using namespace fcqss;

// One source fanning into `choices` sequential binary choices: every choice
// place is reachable under every allocation, so the reduction count is
// exactly 2^choices.
pn::petri_net parallel_choices(int choices)
{
    pn::net_builder b("choices_" + std::to_string(choices));
    const auto src = b.add_transition("src");
    for (int i = 0; i < choices; ++i) {
        const auto p = b.add_place("c" + std::to_string(i));
        b.add_arc(src, p);
        const auto yes = b.add_transition("yes" + std::to_string(i));
        const auto no = b.add_transition("no" + std::to_string(i));
        b.add_arc(p, yes);
        b.add_arc(p, no);
    }
    return std::move(b).build();
}

// A plain processing pipeline of `length` stages (no choices): generated
// code should grow linearly with it.
pn::petri_net pipeline(int length)
{
    pn::net_builder b("pipe_" + std::to_string(length));
    auto prev = b.add_transition("src");
    for (int i = 0; i < length; ++i) {
        const auto p = b.add_place("p" + std::to_string(i));
        b.add_arc(prev, p);
        prev = b.add_transition("t" + std::to_string(i));
        b.add_arc(p, prev);
    }
    return std::move(b).build();
}

void report()
{
    benchutil::heading("T-reduction count vs number of choices (exponential)");
    std::printf("  %8s %12s %12s\n", "choices", "allocations", "reductions");
    for (int choices = 1; choices <= 10; ++choices) {
        const auto net = parallel_choices(choices);
        const auto result = qss::quasi_static_schedule(net);
        std::printf("  %8d %12zu %12zu\n", choices, result.allocations_enumerated,
                    result.entries.size());
    }

    benchutil::heading("Generated code size vs net size (linear, Sec. 4 claim)");
    std::printf("  %8s %12s %12s %14s\n", "stages", "transitions", "C lines",
                "lines/stage");
    for (int length : {4, 8, 16, 32, 64, 128}) {
        const auto net = pipeline(length);
        const auto result = qss::quasi_static_schedule(net);
        const auto partition = qss::partition_tasks(net, result);
        const auto program = cgen::generate_program(net, result, partition);
        const int lines = cgen::emitted_line_count(program);
        std::printf("  %8d %12zu %12d %14.2f\n", length, net.transition_count(), lines,
                    static_cast<double>(lines) / length);
    }
}

void bm_qss_vs_choices(benchmark::State& state)
{
    const auto net = parallel_choices(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_qss_vs_choices)->DenseRange(2, 10, 2)->Complexity();

void bm_codegen_vs_pipeline(benchmark::State& state)
{
    const auto net = pipeline(static_cast<int>(state.range(0)));
    const auto result = qss::quasi_static_schedule(net);
    const auto partition = qss::partition_tasks(net, result);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgen::generate_program(net, result, partition));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_codegen_vs_pipeline)->RangeMultiplier(2)->Range(8, 128)->Complexity();

} // namespace

FCQSS_BENCH_MAIN(report)
