// Complexity claims of Secs. 3-4: the number of T-reductions is exponential
// in the number of (reachable, independent) choices, per-reduction static
// scheduling is polynomial, and the size of the generated C code is linear
// in the size of the net.  This bench constructs parameterized net families
// and prints the measured series.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>

#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "obs/obs.hpp"
#include "pipeline/fuzz.hpp"
#include "pipeline/net_generator.hpp"
#include "pn/builder.hpp"
#include "pn/coverability.hpp"
#include "pn/parallel_explore.hpp"
#include "pn/reachability.hpp"
#include "pn/state_space.hpp"
#include "pn/stubborn.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace {

using namespace fcqss;

// One source fanning into `choices` sequential binary choices: every choice
// place is reachable under every allocation, so the reduction count is
// exactly 2^choices.
pn::petri_net parallel_choices(int choices)
{
    pn::net_builder b("choices_" + std::to_string(choices));
    const auto src = b.add_transition("src");
    for (int i = 0; i < choices; ++i) {
        const auto p = b.add_place("c" + std::to_string(i));
        b.add_arc(src, p);
        const auto yes = b.add_transition("yes" + std::to_string(i));
        const auto no = b.add_transition("no" + std::to_string(i));
        b.add_arc(p, yes);
        b.add_arc(p, no);
    }
    return std::move(b).build();
}

// A plain processing pipeline of `length` stages (no choices): generated
// code should grow linearly with it.
pn::petri_net pipeline(int length)
{
    pn::net_builder b("pipe_" + std::to_string(length));
    auto prev = b.add_transition("src");
    for (int i = 0; i < length; ++i) {
        const auto p = b.add_place("p" + std::to_string(i));
        b.add_arc(prev, p);
        prev = b.add_transition("t" + std::to_string(i));
        b.add_arc(p, prev);
    }
    return std::move(b).build();
}

// The first generated net of `family` with at least `min_transitions`
// transitions, growing the generator knobs until one appears (the growth is
// random, so single draws can come up short).  `source_credit` > 0 bounds
// every source to that many firings (finite state space — the reduction
// rows need full exploration to mean something).
pn::petri_net generated_net(pipeline::net_family family, std::size_t min_transitions,
                            int source_credit = 0)
{
    pipeline::generator_options options;
    options.family = family;
    options.token_load = 2;
    options.source_credit = source_credit;
    // Start each family just under the floor (growth is exponential in depth
    // for the branching families, linear for marked graphs) so the nets land
    // near min_transitions instead of far above it.
    switch (family) {
    case pipeline::net_family::marked_graph:
        options.sources = 10;
        options.depth = 50;
        break;
    case pipeline::net_family::free_choice:
        options.sources = 4;
        options.depth = 12;
        break;
    case pipeline::net_family::choice_heavy:
        options.sources = 3;
        options.depth = 7;
        break;
    case pipeline::net_family::client_server:
    case pipeline::net_family::layered_pipeline:
    case pipeline::net_family::bursty_multirate:
        // The production families size by sources x depth directly; the
        // growth loop below widens them the same way.
        options.sources = 8;
        options.depth = 8;
        break;
    }
    for (;;) {
        pipeline::net_generator generator(99, options);
        for (int i = 0; i < 4; ++i) {
            pn::petri_net net = generator.next();
            if (net.transition_count() >= min_transitions) {
                return net;
            }
        }
        options.depth += 2;
        ++options.sources;
    }
}

// Best-of-`runs` wall-clock states/second of one exploration function.
template <typename Explore>
double states_per_second(const pn::petri_net& net,
                         const pn::reachability_options& options, Explore&& explore_fn,
                         int runs, std::size_t& states_out)
{
    double best_seconds = 0.0;
    for (int run = 0; run < runs; ++run) {
        const auto start = std::chrono::steady_clock::now();
        const pn::reachability_graph graph = explore_fn(net, options);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        states_out = graph.size();
        benchmark::DoNotOptimize(graph);
        if (run == 0 || elapsed.count() < best_seconds) {
            best_seconds = elapsed.count();
        }
    }
    return static_cast<double>(states_out) / best_seconds;
}

// Before/after rows for the arena-interned state-space engine (this PR's
// tentpole): explore() now runs on pn/state_space.hpp, explore_reference()
// is the pre-refactor naive BFS kept for exactly this comparison.
void report_state_space_engine()
{
    benchutil::heading("state-space engine states/second (arena vs naive reference)");
    std::printf("  %8s %8s %8s %12s %12s %9s\n", "family", "|T|", "states", "ref st/s",
                "arena st/s", "speedup");
    const pn::reachability_options options{.max_markings = 4000,
                                           .max_tokens_per_place = 1 << 20};
    for (const pipeline::net_family family :
         {pipeline::net_family::free_choice, pipeline::net_family::choice_heavy,
          pipeline::net_family::marked_graph}) {
        const pn::petri_net net = generated_net(family, 500);
        std::size_t states = 0;
        // One reference run (it is the slow side by orders of magnitude),
        // best-of-three for the arena engine.
        const double reference =
            states_per_second(net, options, pn::explore_reference, 1, states);
        const double arena = states_per_second(net, options, pn::explore, 3, states);
        std::printf("  %8s %8zu %8zu %12.0f %12.0f %8.1fx\n",
                    pipeline::to_string(family), net.transition_count(), states,
                    reference, arena, arena / reference);
        const std::string prefix = std::string(pipeline::to_string(family)) + " ";
        benchutil::row(prefix + "transitions", std::to_string(net.transition_count()));
        benchutil::row(prefix + "states explored", std::to_string(states));
        benchutil::row(prefix + "reference states/s",
                       std::to_string(static_cast<long long>(reference)));
        benchutil::row(prefix + "arena states/s",
                       std::to_string(static_cast<long long>(arena)));
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2f", arena / reference);
        benchutil::row(prefix + "speedup", speedup);
    }
}

// Best-of-`runs` wall-clock states/second of the engine itself (compact
// state space, no graph materialization), at a given thread count.
// `truncated_out`, when given, reports whether the exploration hit a budget.
double engine_states_per_second(const pn::petri_net& net,
                                const pn::reachability_options& options, int runs,
                                std::size_t& states_out,
                                bool* truncated_out = nullptr)
{
    double best_seconds = 0.0;
    for (int run = 0; run < runs; ++run) {
        const auto start = std::chrono::steady_clock::now();
        const pn::state_space space = pn::explore_space(net, options);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        states_out = space.state_count();
        if (truncated_out != nullptr) {
            *truncated_out = space.truncated();
        }
        benchmark::DoNotOptimize(space);
        if (run == 0 || elapsed.count() < best_seconds) {
            best_seconds = elapsed.count();
        }
    }
    return static_cast<double>(states_out) / best_seconds;
}

// Thread-scaling rows for the sharded parallel engine (PR 3 tentpole): the
// same exploration at 1/2/4 threads against the sequential engine, on
// >= 500-transition generated nets.  CI gates on the best "par4 speedup"
// row staying >= 2x.
void report_parallel_engine()
{
    benchutil::heading(
        "parallel engine states/second (sharded workers vs sequential engine)");
    std::printf("  %8s %8s %8s %12s %12s %12s %9s\n", "family", "|T|", "states",
                "seq st/s", "par2 st/s", "par4 st/s", "par4 x");
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    for (const pipeline::net_family family :
         {pipeline::net_family::free_choice, pipeline::net_family::choice_heavy,
          pipeline::net_family::marked_graph}) {
        const pn::petri_net net = generated_net(family, 500);
        std::size_t states = 0;
        options.threads = 1;
        const double sequential = engine_states_per_second(net, options, 3, states);
        options.threads = 2;
        const double par2 = engine_states_per_second(net, options, 3, states);
        options.threads = 4;
        const double par4 = engine_states_per_second(net, options, 3, states);
        std::printf("  %8s %8zu %8zu %12.0f %12.0f %12.0f %8.2fx\n",
                    pipeline::to_string(family), net.transition_count(), states,
                    sequential, par2, par4, par4 / sequential);
        const std::string prefix = std::string(pipeline::to_string(family)) + " ";
        benchutil::row(prefix + "par transitions",
                       std::to_string(net.transition_count()));
        benchutil::row(prefix + "seq states/s",
                       std::to_string(static_cast<long long>(sequential)));
        benchutil::row(prefix + "par2 states/s",
                       std::to_string(static_cast<long long>(par2)));
        benchutil::row(prefix + "par4 states/s",
                       std::to_string(static_cast<long long>(par4)));
        char speedup[32];
        std::snprintf(speedup, sizeof speedup, "%.2f", par2 / sequential);
        benchutil::row(prefix + "par2 speedup", speedup);
        std::snprintf(speedup, sizeof speedup, "%.2f", par4 / sequential);
        benchutil::row(prefix + "par4 speedup", speedup);
    }
}

// Bit-identity of two compact state spaces: same ids, token spans, CSR
// rows, truncation verdict.
bool identical_spaces(const pn::state_space& a, const pn::state_space& b)
{
    if (a.state_count() != b.state_count() || a.edge_count() != b.edge_count() ||
        a.truncated() != b.truncated()) {
        return false;
    }
    for (pn::state_id s = 0; s < static_cast<pn::state_id>(a.state_count()); ++s) {
        const auto at = a.tokens(s);
        const auto bt = b.tokens(s);
        if (!std::equal(at.begin(), at.end(), bt.begin(), bt.end())) {
            return false;
        }
        const auto ae = a.successors(s);
        const auto be = b.successors(s);
        if (!std::equal(ae.begin(), ae.end(), be.begin(), be.end())) {
            return false;
        }
    }
    return true;
}

// Unordered-mode rows (this PR's tentpole): the barrier-free engine (free-
// running shards over work-stealing inboxes plus a deterministic BFS
// renumber pass) at 4 threads against the level-synchronous engine at 4
// threads on the same nets, plus a bit-identity column checking the
// renumbered result against the sequential engine.  CI gates on the
// choice-heavy "unord4 vs par4" row staying >= 1.0 — killing the level
// barrier must not lose throughput where levels are shallow and wide — and
// on every "unord identical" row staying 1.
void report_unordered_engine()
{
    benchutil::heading("unordered exploration (barrier-free workers + BFS renumber "
                       "vs level-synchronous engine, 4 threads)");
    std::printf("  %8s %8s %8s %12s %12s %9s %10s\n", "family", "|T|", "states",
                "par4 st/s", "unord4 st/s", "unord x", "identical");
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    for (const pipeline::net_family family :
         {pipeline::net_family::free_choice, pipeline::net_family::choice_heavy,
          pipeline::net_family::marked_graph}) {
        const pn::petri_net net = generated_net(family, 500);
        std::size_t states = 0;
        options.threads = 4;
        options.order = pn::exploration_order::ordered;
        const double leveled = engine_states_per_second(net, options, 3, states);
        options.order = pn::exploration_order::unordered;
        const double unordered = engine_states_per_second(net, options, 3, states);

        pn::reachability_options check = options;
        check.threads = 1;
        check.order = pn::exploration_order::ordered;
        const pn::state_space sequential = pn::explore_space(net, check);
        check.threads = 4;
        check.order = pn::exploration_order::unordered;
        const bool identical =
            identical_spaces(sequential, pn::explore_space(net, check));

        std::printf("  %8s %8zu %8zu %12.0f %12.0f %8.2fx %10s\n",
                    pipeline::to_string(family), net.transition_count(), states,
                    leveled, unordered, unordered / leveled,
                    identical ? "yes" : "NO");
        const std::string prefix = std::string(pipeline::to_string(family)) + " ";
        benchutil::row(prefix + "unord4 states/s",
                       std::to_string(static_cast<long long>(unordered)));
        char ratio[32];
        std::snprintf(ratio, sizeof ratio, "%.2f", unordered / leveled);
        benchutil::row(prefix + "unord4 vs par4", ratio);
        benchutil::row(prefix + "unord identical", identical ? "1" : "0");
    }
}

// External-memory rows (this PR's tentpole): the sequential engine on a
// free-choice net at increasing spill pressure.  The budget is derived from
// the unlimited run's own arena size B: @0 runs with 2B (pager engaged, no
// eviction), @0.5 with B/2 and @0.9 with B/10 (nearly everything cold).
// Bit-identity of the @0.5 run against the unlimited run is reported as a
// 0/1 row and gated by CI; bench_diff tracks "spill states/s @0.5" with a
// fail-below floor so the decode path cannot quietly collapse.
void report_spill()
{
    benchutil::heading("external-memory exploration (mmap spill, sequential "
                       "engine, budget from the unlimited run's arena)");
    std::printf("  %8s %8s %12s %12s %12s %10s\n", "|T|", "states", "st/s @0",
                "st/s @0.5", "st/s @0.9", "identical");
    const pn::petri_net net = generated_net(pipeline::net_family::free_choice, 500);
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    options.threads = 1;
    const pn::state_space unlimited = pn::explore_space(net, options);
    const std::size_t arena = unlimited.store().arena_bytes();

    std::size_t states = 0;
    options.max_bytes = arena * 2;
    const double rate0 = engine_states_per_second(net, options, 3, states);
    options.max_bytes = std::max<std::size_t>(arena / 2, 4096);
    const double rate50 = engine_states_per_second(net, options, 3, states);
    const bool identical =
        identical_spaces(unlimited, pn::explore_space(net, options));
    options.max_bytes = std::max<std::size_t>(arena / 10, 4096);
    const double rate90 = engine_states_per_second(net, options, 3, states);

    std::printf("  %8zu %8zu %12.0f %12.0f %12.0f %10s\n", net.transition_count(),
                states, rate0, rate50, rate90, identical ? "yes" : "NO");
    benchutil::row("spill arena bytes", std::to_string(arena));
    benchutil::row("spill states/s @0", std::to_string(static_cast<long long>(rate0)));
    benchutil::row("spill states/s @0.5",
                   std::to_string(static_cast<long long>(rate50)));
    benchutil::row("spill states/s @0.9",
                   std::to_string(static_cast<long long>(rate90)));
    benchutil::row("spill identical @0.5", identical ? "1" : "0");
}

// Row labels of one reduction report block; the label strings are load-
// bearing — CI gates and tools/bench_diff.py grep them verbatim.
struct reduction_row_labels {
    const char* rate_column;  ///< human-readable throughput column header
    const char* states_label; ///< reduced-state-count row ("<family> " prefixed)
    const char* ratio_label;  ///< ratio row; emitted only on complete reduced runs
    const char* rate_label;   ///< reduced-throughput row
    bool emit_full_states;    ///< emit the "<family> full states" rows too
};

// Shared body of the two reduction report blocks: full vs reduced state
// counts and reduced-engine throughput at `strength`, on >= 500-transition
// credit-bounded nets.  The ratio is only emitted when the *reduced* run
// completed: it then reads "the reduction covers the whole space in
// 1/ratio of the states the full exploration burns before the budget" (a
// lower bound whenever the full side truncates).  A reduced run that also
// truncates would make the row a meaningless 1.00, so it is reported as
// n/a instead — bench_diff tracks the ratio rows, and a degenerate value
// would read as a real trajectory.
void report_reduction_block(const char* heading, pn::reduction_strength strength,
                            const reduction_row_labels& labels)
{
    benchutil::heading(heading);
    std::printf("  %8s %8s %10s %10s %9s %12s\n", "family", "|T|", "full st",
                "reduced st", "ratio", labels.rate_column);
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    for (const pipeline::net_family family :
         {pipeline::net_family::free_choice, pipeline::net_family::choice_heavy,
          pipeline::net_family::marked_graph}) {
        const pn::petri_net net = generated_net(family, 500, 1);
        std::size_t full_states = 0;
        std::size_t reduced_states = 0;
        bool reduced_truncated = false;
        options.reduction = pn::reduction_kind::none;
        engine_states_per_second(net, options, 1, full_states);
        options.reduction = pn::reduction_kind::stubborn;
        options.strength = strength;
        const double reduced_rate = engine_states_per_second(
            net, options, 3, reduced_states, &reduced_truncated);
        const double ratio =
            static_cast<double>(full_states) /
            static_cast<double>(std::max<std::size_t>(1, reduced_states));
        char ratio_text[32];
        if (reduced_truncated) {
            std::snprintf(ratio_text, sizeof ratio_text, "n/a");
        } else {
            std::snprintf(ratio_text, sizeof ratio_text, "%.2f", ratio);
        }
        std::printf("  %8s %8zu %10zu %10zu %9s %12.0f\n",
                    pipeline::to_string(family), net.transition_count(), full_states,
                    reduced_states, ratio_text, reduced_rate);
        const std::string prefix = std::string(pipeline::to_string(family)) + " ";
        if (labels.emit_full_states) {
            benchutil::row(prefix + "full states", std::to_string(full_states));
        }
        benchutil::row(prefix + labels.states_label, std::to_string(reduced_states));
        if (!reduced_truncated) {
            benchutil::row(prefix + labels.ratio_label, ratio_text);
        }
        benchutil::row(prefix + labels.rate_label,
                       std::to_string(static_cast<long long>(reduced_rate)));
    }
}

// Stubborn-set reduction rows (PR 4's tentpole): CI gates on the
// choice-heavy "reduction ratio" row staying >= 2x.
void report_stubborn_reduction()
{
    report_reduction_block("stubborn-set reduction (full vs deadlock-preserving "
                           "reduced exploration)",
                           pn::reduction_strength::deadlock,
                           {.rate_column = "red st/s",
                            .states_label = "reduced states",
                            .ratio_label = "reduction ratio",
                            .rate_label = "reduced states/s",
                            .emit_full_states = true});
}

// ltl_x strength rows (this PR's tentpole): the liveness-preserving
// reduction — visibility + ignoring fix-up on top of the deadlock-strength
// sets — against the full exploration, on the same nets.  CI gates on the
// choice-heavy "ltlx ratio" row staying >= 1.5x: the fix-up may only
// re-expand states in cycle-capable SCCs, so on these (acyclic-state-graph)
// workloads it must not give back the deadlock-strength savings.  "live
// red st/s" is the throughput of the exploration check_live now runs
// (reduction included), tracked by bench_diff alongside the ratio.
void report_ltlx_reduction()
{
    report_reduction_block("ltl_x stubborn reduction (liveness-preserving "
                           "fragment vs full exploration)",
                           pn::reduction_strength::ltl_x,
                           {.rate_column = "live st/s",
                            .states_label = "ltlx states",
                            .ratio_label = "ltlx ratio",
                            .rate_label = "live red st/s",
                            .emit_full_states = false});
}

// Karp–Miller timing row: build_coverability_tree now reuses the engines'
// incremental enabled-set index instead of rescanning all of T per node
// (tracked by bench_diff as "km nodes/s").
void report_coverability()
{
    benchutil::heading("coverability (Karp–Miller) nodes/second");
    std::printf("  %8s %8s %8s %12s\n", "family", "|T|", "nodes", "nodes/s");
    for (const pipeline::net_family family :
         {pipeline::net_family::free_choice, pipeline::net_family::marked_graph}) {
        const pn::petri_net net = generated_net(family, 500);
        const pn::coverability_options options{.max_nodes = 20000};
        double best_seconds = 0.0;
        std::size_t nodes = 0;
        for (int run = 0; run < 3; ++run) {
            const auto start = std::chrono::steady_clock::now();
            const pn::coverability_tree tree = pn::build_coverability_tree(net, options);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            nodes = tree.size();
            benchmark::DoNotOptimize(tree);
            if (run == 0 || elapsed.count() < best_seconds) {
                best_seconds = elapsed.count();
            }
        }
        const double rate = static_cast<double>(nodes) / best_seconds;
        std::printf("  %8s %8zu %8zu %12.0f\n", pipeline::to_string(family),
                    net.transition_count(), nodes, rate);
        const std::string prefix = std::string(pipeline::to_string(family)) + " ";
        benchutil::row(prefix + "km nodes", std::to_string(nodes));
        benchutil::row(prefix + "km nodes/s",
                       std::to_string(static_cast<long long>(rate)));
    }
}

// Telemetry overhead rows (this PR's tentpole): the same single-threaded
// choice-heavy exploration with obs runtime-disabled (each instrumentation
// site costs one predicted branch) vs enabled-but-idle (counters increment,
// nobody snapshots).  CI gates on the overhead staying < 2%.  Compile-time
// off (FCQSS_OBS_ENABLED=0) removes even the branch, so it is strictly
// cheaper than the "off" column measured here.
void report_obs_overhead()
{
    benchutil::heading("obs overhead: telemetry runtime-off vs enabled-but-idle");
    std::printf("  %8s %12s %12s %10s\n", "states", "off st/s", "idle st/s",
                "overhead");
    const pn::petri_net net = generated_net(pipeline::net_family::choice_heavy, 500, 1);
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    options.threads = 1;
    std::size_t states = 0;
    obs::set_stats_enabled(false);
    obs::set_tracing_enabled(false);
    const double off = engine_states_per_second(net, options, 5, states);
    obs::set_stats_enabled(true);
    const double idle = engine_states_per_second(net, options, 5, states);
    obs::set_stats_enabled(false);
    obs::reset();
    const double pct = off > 0 ? (off - idle) / off * 100.0 : 0.0;
    std::printf("  %8zu %12.0f %12.0f %+9.2f%%\n", states, off, idle, pct);
    benchutil::row("obs off st/s", std::to_string(static_cast<long long>(off)));
    benchutil::row("obs idle st/s", std::to_string(static_cast<long long>(idle)));
    char pct_text[32];
    std::snprintf(pct_text, sizeof pct_text, "%.2f", pct);
    benchutil::row("obs idle overhead pct", pct_text);
}

// Engine-internals rows from the obs counters: one ltl_x-reduced 4-thread
// exploration of a choice-heavy net, then derived health metrics.  These
// are informational for tools/bench_diff.py (--info-metric): probe rate can
// legitimately move either way, so it must never trip --fail-below.
void report_obs_counters()
{
    benchutil::heading("engine telemetry (obs counters, choice-heavy ltl_x run)");
    const pn::petri_net net = generated_net(pipeline::net_family::choice_heavy, 500, 1);
    pn::reachability_options options{.max_markings = 60000,
                                     .max_tokens_per_place = 1 << 20};
    options.threads = 4;
    options.reduction = pn::reduction_kind::stubborn;
    options.strength = pn::reduction_strength::ltl_x;
    obs::reset();
    obs::set_stats_enabled(true);
    std::size_t states = 0;
    engine_states_per_second(net, options, 1, states);
    const double probes =
        static_cast<double>(obs::get_counter("pn.store.hash_probes").value());
    const double hits =
        static_cast<double>(obs::get_counter("pn.store.dedup_hits").value());
    const double inserts =
        static_cast<double>(obs::get_counter("pn.store.inserts").value());
    const double imbalance = obs::get_gauge("pn.par.shard_imbalance").value();
    obs::set_stats_enabled(false);
    obs::reset();
    const double interns = std::max(1.0, hits + inserts);
    const double probe_rate = probes / interns;
    const double hit_rate = hits / interns;
    std::printf("  %8s %12s %12s %14s\n", "states", "probe rate", "hit rate",
                "shard imbal");
    std::printf("  %8zu %12.3f %12.3f %14.3f\n", states, probe_rate, hit_rate,
                imbalance);
    char text[32];
    std::snprintf(text, sizeof text, "%.3f", probe_rate);
    benchutil::row("choice probe rate", text);
    std::snprintf(text, sizeof text, "%.3f", hit_rate);
    benchutil::row("choice dedup hit rate", text);
    std::snprintf(text, sizeof text, "%.3f", imbalance);
    benchutil::row("choice shard imbalance", text);
}

// Differential fuzz throughput (this PR's tentpole): full verdict-matrix
// runs per second over generated+mutated nets of all six families, under
// the harness's default tight budgets.  Tracked by bench_diff as "fuzz
// mutants/s" — a drop means the seq/par/reduced matrix itself got slower,
// which directly shrinks how many mutants a CI fuzz minute covers.  The
// findings count is printed too; anything nonzero is a correctness bug.
void report_fuzz_throughput()
{
    benchutil::heading("differential fuzz throughput (verdict matrix, 6 families)");
    pipeline::fuzz_options options;
    options.seeds = 96;
    double best_seconds = 0.0;
    std::size_t mutants = 0;
    std::size_t findings = 0;
    for (int run = 0; run < 3; ++run) {
        const auto start = std::chrono::steady_clock::now();
        const pipeline::fuzz_report fuzzed = pipeline::run_fuzz(options);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        mutants = fuzzed.mutants;
        findings = fuzzed.findings.size();
        benchmark::DoNotOptimize(fuzzed);
        if (run == 0 || elapsed.count() < best_seconds) {
            best_seconds = elapsed.count();
        }
    }
    const double rate = static_cast<double>(mutants) / best_seconds;
    std::printf("  %8s %12s %10s\n", "mutants", "mutants/s", "findings");
    std::printf("  %8zu %12.0f %10zu\n", mutants, rate, findings);
    benchutil::row("fuzz mutants", std::to_string(mutants));
    benchutil::row("fuzz mutants/s", std::to_string(static_cast<long long>(rate)));
    benchutil::row("fuzz findings", std::to_string(findings));
}

void report()
{
    report_state_space_engine();
    report_parallel_engine();
    report_unordered_engine();
    report_spill();
    report_stubborn_reduction();
    report_ltlx_reduction();
    report_coverability();
    report_obs_overhead();
    report_obs_counters();
    report_fuzz_throughput();

    benchutil::heading("T-reduction count vs number of choices (exponential)");
    std::printf("  %8s %12s %12s\n", "choices", "allocations", "reductions");
    for (int choices = 1; choices <= 10; ++choices) {
        const auto net = parallel_choices(choices);
        const auto result = qss::quasi_static_schedule(net);
        std::printf("  %8d %12zu %12zu\n", choices, result.allocations_enumerated,
                    result.entries.size());
    }

    benchutil::heading("Generated code size vs net size (linear, Sec. 4 claim)");
    std::printf("  %8s %12s %12s %14s\n", "stages", "transitions", "C lines",
                "lines/stage");
    for (int length : {4, 8, 16, 32, 64, 128}) {
        const auto net = pipeline(length);
        const auto result = qss::quasi_static_schedule(net);
        const auto partition = qss::partition_tasks(net, result);
        const auto program = cgen::generate_program(net, result, partition);
        const int lines = cgen::emitted_line_count(program);
        std::printf("  %8d %12zu %12d %14.2f\n", length, net.transition_count(), lines,
                    static_cast<double>(lines) / length);
    }
}

void bm_explore_arena(benchmark::State& state)
{
    const auto net = generated_net(pipeline::net_family::free_choice, 500);
    const pn::reachability_options options{.max_markings =
                                               static_cast<std::size_t>(state.range(0)),
                                           .max_tokens_per_place = 1 << 20};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::explore(net, options));
    }
}
BENCHMARK(bm_explore_arena)->Arg(1000)->Arg(4000);

void bm_explore_reference(benchmark::State& state)
{
    const auto net = generated_net(pipeline::net_family::free_choice, 500);
    const pn::reachability_options options{.max_markings =
                                               static_cast<std::size_t>(state.range(0)),
                                           .max_tokens_per_place = 1 << 20};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::explore_reference(net, options));
    }
}
// The reference is ~two orders of magnitude slower; keep its timing loop
// small so default bench runs stay bounded.
BENCHMARK(bm_explore_reference)->Arg(1000);

void bm_explore_parallel(benchmark::State& state)
{
    const auto net = generated_net(pipeline::net_family::free_choice, 500);
    const pn::parallel_explore_options options{
        .threads = static_cast<std::size_t>(state.range(0)),
        .max_states = 20000,
        .max_tokens_per_place = 1 << 20};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::explore_parallel(net, options));
    }
}
BENCHMARK(bm_explore_parallel)->Arg(1)->Arg(2)->Arg(4);

void bm_explore_stubborn(benchmark::State& state)
{
    const auto net = generated_net(pipeline::net_family::choice_heavy, 500, 2);
    const pn::state_space_options options{
        .max_states = static_cast<std::size_t>(state.range(0)),
        .max_tokens_per_place = 1 << 20,
        .reduction = pn::reduction_kind::stubborn};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::explore_state_space(net, options));
    }
}
BENCHMARK(bm_explore_stubborn)->Arg(20000);

void bm_explore_stubborn_ltlx(benchmark::State& state)
{
    const auto net = generated_net(pipeline::net_family::choice_heavy, 500, 2);
    const pn::state_space_options options{
        .max_states = static_cast<std::size_t>(state.range(0)),
        .max_tokens_per_place = 1 << 20,
        .reduction = pn::reduction_kind::stubborn,
        .strength = pn::reduction_strength::ltl_x};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::explore_state_space(net, options));
    }
}
BENCHMARK(bm_explore_stubborn_ltlx)->Arg(20000);

void bm_qss_vs_choices(benchmark::State& state)
{
    const auto net = parallel_choices(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_qss_vs_choices)->DenseRange(2, 10, 2)->Complexity();

void bm_codegen_vs_pipeline(benchmark::State& state)
{
    const auto net = pipeline(static_cast<int>(state.range(0)));
    const auto result = qss::quasi_static_schedule(net);
    const auto partition = qss::partition_tasks(net, result);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgen::generate_program(net, result, partition));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_codegen_vs_pipeline)->RangeMultiplier(2)->Range(8, 128)->Complexity();

} // namespace

FCQSS_BENCH_MAIN(report)
