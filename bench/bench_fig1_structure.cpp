// Figure 1 reproduction: free-choice vs non-free-choice structure.  The
// paper's Fig. 1a is free choice (enabling one consumer of the place enables
// all); Fig. 1b is not (t3 also depends on a second place).  The benchmark
// times the structural check, which is linear in the net.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "pn/net_class.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 1: free choice vs not free choice");
    benchutil::row("fig1a is free choice (paper: yes)",
                   pn::is_free_choice(nets::figure_1a()) ? "yes" : "no");
    benchutil::row("fig1b is free choice (paper: no)",
                   pn::is_free_choice(nets::figure_1b()) ? "yes" : "no");
    benchutil::row("fig1b violation",
                   pn::describe_free_choice_violation(nets::figure_1b()));
}

void bm_is_free_choice_1a(benchmark::State& state)
{
    const auto net = nets::figure_1a();
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::is_free_choice(net));
    }
}
BENCHMARK(bm_is_free_choice_1a);

void bm_is_free_choice_1b(benchmark::State& state)
{
    const auto net = nets::figure_1b();
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::is_free_choice(net));
    }
}
BENCHMARK(bm_is_free_choice_1b);

} // namespace

FCQSS_BENCH_MAIN(report)
