// Figure 2 reproduction: the cyclic schedule of the multirate marked graph
// t1 ->(1,2) t2 ->(1,2) t3.  The paper prints the minimal T-invariant
// f(sigma) = (4,2,1)^T and the periodic schedule sigma = t1 t1 t1 t1 t2 t2 t3.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "sdf/buffer_bounds.hpp"
#include "sdf/sdf_graph.hpp"
#include "sdf/static_schedule.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 2: cyclic schedule of a multirate marked graph");
    const auto net = nets::figure_2();
    const auto graph = sdf::from_marked_graph(net);
    const auto schedule = sdf::compute_static_schedule(graph);

    std::string vector_text = "(";
    for (std::size_t i = 0; i < schedule.repetitions.counts.size(); ++i) {
        vector_text += (i ? ", " : "") + std::to_string(schedule.repetitions.counts[i]);
    }
    vector_text += ")";
    benchutil::row("T-invariant f(sigma)  (paper: (4, 2, 1))", vector_text);
    benchutil::row("schedule sigma  (paper: t1 t1 t1 t1 t2 t2 t3)",
                   to_string(graph, schedule));

    const auto bounds = sdf::buffer_bounds(graph, schedule);
    std::string bounds_text;
    for (std::size_t c = 0; c < bounds.size(); ++c) {
        bounds_text += (c ? ", " : "") + std::to_string(bounds[c]);
    }
    benchutil::row("channel buffer bounds (tokens)", bounds_text);
}

void bm_repetition_vector(benchmark::State& state)
{
    const auto graph = sdf::from_marked_graph(nets::figure_2());
    for (auto _ : state) {
        benchmark::DoNotOptimize(sdf::repetition_vector(graph));
    }
}
BENCHMARK(bm_repetition_vector);

void bm_static_schedule(benchmark::State& state)
{
    const auto graph = sdf::from_marked_graph(nets::figure_2());
    for (auto _ : state) {
        benchmark::DoNotOptimize(sdf::compute_static_schedule(graph));
    }
}
BENCHMARK(bm_static_schedule);

// Scaling series: chains of n multirate actors (the per-reduction cost the
// paper calls polynomial).
void bm_static_schedule_chain(benchmark::State& state)
{
    sdf::sdf_graph graph("chain");
    const int actors = static_cast<int>(state.range(0));
    for (int i = 0; i < actors; ++i) {
        (void)graph.add_actor("a" + std::to_string(i));
    }
    for (int i = 0; i + 1 < actors; ++i) {
        graph.add_channel(static_cast<sdf::actor_id>(i),
                          static_cast<sdf::actor_id>(i + 1), 1 + i % 2, 1 + (i + 1) % 2);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(sdf::compute_static_schedule(graph));
    }
    state.SetComplexityN(actors);
}
BENCHMARK(bm_static_schedule_chain)->RangeMultiplier(2)->Range(4, 64)->Complexity();

} // namespace

FCQSS_BENCH_MAIN(report)
