// The per-reduction analysis cost the paper calls polynomial: Farkas
// T-invariant enumeration and cycle simulation on conflict-free nets of
// growing size.
#include "bench_util.hpp"

#include "pn/builder.hpp"
#include "pn/invariants.hpp"
#include "qss/scheduler.hpp"

namespace {

using namespace fcqss;

// A conflict-free net shaped like a T-reduction: `width` parallel
// source->chain->sink paths of `depth` stages each.
pn::petri_net cf_net(int width, int depth)
{
    pn::net_builder b("cf_" + std::to_string(width) + "x" + std::to_string(depth));
    for (int w = 0; w < width; ++w) {
        auto prev = b.add_transition("src" + std::to_string(w));
        for (int d = 0; d < depth; ++d) {
            const auto p = b.add_place("p" + std::to_string(w) + "_" + std::to_string(d));
            b.add_arc(prev, p, 1 + (d % 2));
            prev = b.add_transition("t" + std::to_string(w) + "_" + std::to_string(d));
            b.add_arc(p, prev, 1 + (d % 2));
        }
    }
    return std::move(b).build();
}

void report()
{
    benchutil::heading("Farkas T-invariant enumeration on conflict-free nets");
    std::printf("  %8s %8s %12s %12s\n", "width", "depth", "transitions", "invariants");
    for (int width : {2, 4, 8}) {
        for (int depth : {4, 8, 16}) {
            const auto net = cf_net(width, depth);
            const auto invariants = pn::t_invariants(net);
            std::printf("  %8d %8d %12zu %12zu\n", width, depth, net.transition_count(),
                        invariants.size());
        }
    }
}

void bm_t_invariants(benchmark::State& state)
{
    const auto net = cf_net(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(1)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::t_invariants(net));
    }
    state.SetComplexityN(state.range(0) * state.range(1));
}
BENCHMARK(bm_t_invariants)
    ->Args({2, 4})
    ->Args({4, 8})
    ->Args({8, 16})
    ->Args({8, 32})
    ->Complexity();

void bm_schedule_cf_net(benchmark::State& state)
{
    const auto net = cf_net(4, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_schedule_cf_net)->RangeMultiplier(2)->Range(4, 32)->Complexity();

} // namespace

FCQSS_BENCH_MAIN(report)
