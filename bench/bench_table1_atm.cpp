// Table I reproduction: the ATM server for Virtual Private Networks (Sec. 5
// / Fig. 8).  Compares the QSS implementation (2 tasks) against functional
// task partitioning (5 module tasks) on the 50-cell testbench, reporting the
// paper's three rows: number of tasks, lines of C code, clock cycles.
//
//   Paper:                    QSS      functional
//     Number of tasks           2               5
//     Lines of C code        1664            2187
//     Clock cycles         197526          249726
//
// Absolute numbers depend on the authors' testbed and code generator; the
// reproduced claims are the row *relationships* (QSS smaller and faster) and
// the task counts, which match exactly.
#include "bench_util.hpp"

#include "apps/atm/atm_net.hpp"
#include "apps/atm/table1.hpp"
#include "pn/structure.hpp"
#include "qss/scheduler.hpp"
#include "qss/valid_schedule.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 8 / net statistics");
    const auto net = atm::build_atm_net();
    const auto stats = pn::statistics(net);
    benchutil::row("transitions (paper: 49)", std::to_string(stats.transitions));
    benchutil::row("places (paper: 41)", std::to_string(stats.places));
    benchutil::row("non-deterministic choices (paper: 11)",
                   std::to_string(stats.choices));
    const auto schedule = qss::quasi_static_schedule(net);
    benchutil::row("finite complete cycles in valid schedule (paper: 120)",
                   std::to_string(schedule.entries.size()));
    benchutil::row("Definition 3.1 validity check",
                   qss::check_valid_schedule(net, schedule.cycles()) ? "VIOLATED" : "ok");

    benchutil::heading("Table I: QSS vs functional task partitioning (50 ATM cells)");
    atm::testbench_options options;
    options.cell_count = 50;
    const auto events = atm::make_testbench(options);
    const auto qss_impl = atm::run_qss_implementation(events, options.flow_count);
    const auto fun_impl = atm::run_functional_implementation(events, options.flow_count);

    std::printf("  %-24s %14s %14s\n", "Sw implementation", "QSS",
                "Functional part.");
    std::printf("  %-24s %14d %14d   (paper: 2 vs 5)\n", "Number of tasks",
                qss_impl.task_count, fun_impl.task_count);
    std::printf("  %-24s %14d %14d   (paper: 1664 vs 2187)\n", "Lines of C code",
                qss_impl.lines_of_c, fun_impl.lines_of_c);
    std::printf("  %-24s %14lld %14lld   (paper: 197526 vs 249726)\n", "Clock cycles",
                static_cast<long long>(qss_impl.clock_cycles),
                static_cast<long long>(fun_impl.clock_cycles));
    std::printf("  %-24s %14.3f %14.3f   (paper: 1.000 vs 1.264)\n", "Cycle ratio",
                1.0,
                static_cast<double>(fun_impl.clock_cycles) /
                    static_cast<double>(qss_impl.clock_cycles));

    benchutil::heading("Cross-implementation functional equivalence");
    bool identical = qss_impl.emitted.size() == fun_impl.emitted.size();
    for (std::size_t i = 0; identical && i < qss_impl.emitted.size(); ++i) {
        identical = qss_impl.emitted[i].id == fun_impl.emitted[i].id;
    }
    benchutil::row("emitted cell streams identical", identical ? "yes" : "NO");
    benchutil::row("cells emitted",
                   std::to_string(qss_impl.emitted.size()) + " of " +
                       std::to_string(options.cell_count));
    benchutil::row("cells discarded (MSD)", std::to_string(qss_impl.dropped_cells));
    benchutil::row("idle slots", std::to_string(qss_impl.idle_slots));

    benchutil::heading("Per-task activation accounting");
    for (const auto& [name, task] : qss_impl.rtos.tasks) {
        benchutil::row("QSS " + name,
                       std::to_string(task.activations) + " activations, " +
                           std::to_string(task.cycles) + " cycles");
    }
    for (const auto& [name, task] : fun_impl.rtos.tasks) {
        benchutil::row("functional " + name,
                       std::to_string(task.activations) + " activations, " +
                           std::to_string(task.cycles) + " cycles, " +
                           std::to_string(task.messages_sent) + " msgs sent");
    }
}

void bm_qss_implementation(benchmark::State& state)
{
    atm::testbench_options options;
    options.cell_count = static_cast<int>(state.range(0));
    const auto events = atm::make_testbench(options);
    for (auto _ : state) {
        benchmark::DoNotOptimize(atm::run_qss_implementation(events, options.flow_count));
    }
    state.SetComplexityN(options.cell_count);
}
BENCHMARK(bm_qss_implementation)->Arg(10)->Arg(50)->Arg(200)->Complexity();

void bm_functional_implementation(benchmark::State& state)
{
    atm::testbench_options options;
    options.cell_count = static_cast<int>(state.range(0));
    const auto events = atm::make_testbench(options);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            atm::run_functional_implementation(events, options.flow_count));
    }
    state.SetComplexityN(options.cell_count);
}
BENCHMARK(bm_functional_implementation)->Arg(10)->Arg(50)->Arg(200)->Complexity();

void bm_atm_full_qss_analysis(benchmark::State& state)
{
    const auto net = atm::build_atm_net();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_atm_full_qss_analysis);

} // namespace

FCQSS_BENCH_MAIN(report)
