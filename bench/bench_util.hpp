// Shared helpers for the reproduction benches: each bench binary first
// prints the paper-facing report (the rows/series the paper's figure or
// table shows), then runs its google-benchmark timings.
#ifndef FCQSS_BENCH_BENCH_UTIL_HPP
#define FCQSS_BENCH_BENCH_UTIL_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace fcqss::benchutil {

inline void heading(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value)
{
    std::printf("  %-44s %s\n", (label + ":").c_str(), value.c_str());
}

/// Standard main body: print the report, then run benchmarks.
#define FCQSS_BENCH_MAIN(report_fn)                                                      \
    int main(int argc, char** argv)                                                     \
    {                                                                                    \
        report_fn();                                                                     \
        ::benchmark::Initialize(&argc, argv);                                            \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {                      \
            return 1;                                                                    \
        }                                                                                \
        ::benchmark::RunSpecifiedBenchmarks();                                           \
        ::benchmark::Shutdown();                                                         \
        return 0;                                                                        \
    }

} // namespace fcqss::benchutil

#endif // FCQSS_BENCH_BENCH_UTIL_HPP
