// Shared helpers for the reproduction benches: each bench binary first
// prints the paper-facing report (the rows/series the paper's figure or
// table shows), then runs its google-benchmark timings.
//
// Passing --json (or setting FCQSS_BENCH_JSON in the environment) makes
// every row() additionally emit one machine-readable JSON line
//   {"bench":"<heading>","label":"...","value":"..."}
// so BENCH_*.json trajectories can be scraped straight from bench output.
#ifndef FCQSS_BENCH_BENCH_UTIL_HPP
#define FCQSS_BENCH_BENCH_UTIL_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace fcqss::benchutil {

inline bool& json_mode()
{
    static bool enabled = std::getenv("FCQSS_BENCH_JSON") != nullptr;
    return enabled;
}

inline std::string& current_heading()
{
    static std::string heading;
    return heading;
}

inline std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

inline void heading(const std::string& title)
{
    current_heading() = title;
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value)
{
    std::printf("  %-44s %s\n", (label + ":").c_str(), value.c_str());
    if (json_mode()) {
        std::printf("{\"bench\":\"%s\",\"label\":\"%s\",\"value\":\"%s\"}\n",
                    json_escape(current_heading()).c_str(), json_escape(label).c_str(),
                    json_escape(value).c_str());
    }
}

/// Consumes a leading --json flag (google-benchmark rejects flags it does
/// not know), leaving the rest of argv for benchmark::Initialize.
inline void parse_json_flag(int& argc, char** argv)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_mode() = true;
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;
}

/// Standard main body: print the report, then run benchmarks.
#define FCQSS_BENCH_MAIN(report_fn)                                                      \
    int main(int argc, char** argv)                                                     \
    {                                                                                    \
        ::fcqss::benchutil::parse_json_flag(argc, argv);                                 \
        report_fn();                                                                     \
        ::benchmark::Initialize(&argc, argv);                                            \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {                      \
            return 1;                                                                    \
        }                                                                                \
        ::benchmark::RunSpecifiedBenchmarks();                                           \
        ::benchmark::Shutdown();                                                         \
        return 0;                                                                        \
    }

} // namespace fcqss::benchutil

#endif // FCQSS_BENCH_BENCH_UTIL_HPP
