// Ablation: what makes the ATM net tractable despite 11 choices?  The raw
// allocation space has prod(cluster sizes) = 4608 points, but choices inside
// removed branches are moot, so only 120 distinct T-reductions remain.  This
// bench quantifies the deduplication and its cost.
#include "bench_util.hpp"

#include <set>

#include "apps/atm/atm_net.hpp"
#include "qss/reduction.hpp"
#include "qss/scheduler.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Ablation: allocation enumeration vs reduction dedup (ATM net)");
    const auto net = atm::build_atm_net();
    const auto clusters = qss::choice_clusters(net);
    benchutil::row("choice clusters", std::to_string(clusters.size()));
    benchutil::row("allocation space", std::to_string(qss::allocation_count(clusters)));

    // Count distinct reductions by their kept-transition bitmaps.
    std::set<std::vector<bool>> distinct;
    for (const qss::t_allocation& a : qss::enumerate_allocations(clusters)) {
        distinct.insert(qss::reduce(net, clusters, a).keep_transition);
    }
    benchutil::row("distinct T-reductions (paper: 120)", std::to_string(distinct.size()));
    benchutil::row("dedup factor",
                   std::to_string(static_cast<double>(qss::allocation_count(clusters)) /
                                  static_cast<double>(distinct.size())));
}

void bm_enumerate_allocations(benchmark::State& state)
{
    const auto net = atm::build_atm_net();
    const auto clusters = qss::choice_clusters(net);
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::enumerate_allocations(clusters));
    }
}
BENCHMARK(bm_enumerate_allocations);

void bm_reduce_all_allocations(benchmark::State& state)
{
    const auto net = atm::build_atm_net();
    const auto clusters = qss::choice_clusters(net);
    const auto allocations = qss::enumerate_allocations(clusters);
    for (auto _ : state) {
        std::size_t kept = 0;
        for (const qss::t_allocation& a : allocations) {
            kept += qss::reduce(net, clusters, a).kept_transition_count();
        }
        benchmark::DoNotOptimize(kept);
    }
}
BENCHMARK(bm_reduce_all_allocations);

void bm_full_scheduler_with_dedup(benchmark::State& state)
{
    const auto net = atm::build_atm_net();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_full_scheduler_with_dedup);

} // namespace

FCQSS_BENCH_MAIN(report)
