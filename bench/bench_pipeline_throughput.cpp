// Throughput of the parallel batch-synthesis pipeline: nets/sec over a
// generated free-choice workload at 1, 2, 4, and 8 worker threads.  The
// report section prints the measured scaling series (plus the workload's
// status mix, so the numbers are interpretable); the google-benchmark
// section times the same batches.  Per-net statuses are independent of the
// thread count — test_pipeline pins that — so the series differ only in
// wall time.
#include "bench_util.hpp"

#include <memory>
#include <vector>

#include "pipeline/net_generator.hpp"
#include "pipeline/synthesis_pipeline.hpp"

namespace {

using namespace fcqss;

constexpr std::uint64_t kSeed = 20260728;
constexpr std::size_t kBatch = 96;

const std::vector<pipeline::net_source>& workload()
{
    static const std::vector<pipeline::net_source> sources = [] {
        pipeline::generator_options options;
        options.family = pipeline::net_family::free_choice;
        options.sources = 2;
        options.depth = 5;
        options.token_load = 2;
        options.defect_percent = 10; // keep the rejection paths in the mix
        pipeline::net_generator generator(kSeed, options);
        std::vector<pipeline::net_source> out;
        out.reserve(kBatch);
        for (std::size_t i = 0; i < kBatch; ++i) {
            out.push_back(pipeline::net_source::from_net(generator.next()));
        }
        return out;
    }();
    return sources;
}

pipeline::batch_report run_batch(std::size_t jobs)
{
    pipeline::pipeline_options options;
    options.jobs = jobs;
    // Cap the allocation enumeration so the occasional cluster-rich net is
    // reported as resource-limit instead of dominating the whole batch.
    options.scheduler.max_allocations = 1u << 12;
    const pipeline::synthesis_pipeline pipe(options);
    return pipe.run(workload());
}

void report()
{
    benchutil::heading("Generated workload (seed " + std::to_string(kSeed) + ")");
    const pipeline::batch_report serial = run_batch(1);
    benchutil::row("nets", std::to_string(serial.results.size()));
    benchutil::row("synthesized ok",
                   std::to_string(serial.count(pipeline::pipeline_status::ok)));
    benchutil::row(
        "rejected not-free-choice",
        std::to_string(serial.count(pipeline::pipeline_status::not_free_choice)));
    benchutil::row(
        "rejected not-schedulable",
        std::to_string(serial.count(pipeline::pipeline_status::not_schedulable)));
    benchutil::row(
        "capped resource-limit",
        std::to_string(serial.count(pipeline::pipeline_status::resource_limit)));

    benchutil::heading("Batch synthesis throughput vs worker threads");
    const double base = serial.nets_per_second();
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        // The jobs=1 probe above doubles as the serial baseline row.
        const pipeline::batch_report r = jobs == 1 ? serial : run_batch(jobs);
        char value[96];
        std::snprintf(value, sizeof value, "%.1f nets/sec (%.2fx)",
                      r.nets_per_second(),
                      base > 0 ? r.nets_per_second() / base : 0.0);
        benchutil::row("jobs=" + std::to_string(jobs), value);
    }
}

void bm_batch_throughput(benchmark::State& state)
{
    const auto jobs = static_cast<std::size_t>(state.range(0));
    std::size_t nets = 0;
    for (auto _ : state) {
        const pipeline::batch_report r = run_batch(jobs);
        nets += r.results.size();
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(nets));
    state.counters["nets_per_sec"] =
        benchmark::Counter(static_cast<double>(nets), benchmark::Counter::kIsRate);
}
BENCHMARK(bm_batch_throughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void bm_generator(benchmark::State& state)
{
    pipeline::net_generator generator(kSeed);
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.next());
    }
}
BENCHMARK(bm_generator);

} // namespace

FCQSS_BENCH_MAIN(report)
