// Figure 5 reproduction: T-allocations A1/A2 and their T-reductions R1/R2,
// the published T-invariants of R1 — (1,1,0,2,0,4,0,0,0) and
// (0,0,0,0,0,1,0,1,1) — and the published valid schedule.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "pn/firing.hpp"
#include "qss/reduction.hpp"
#include "qss/scheduler.hpp"

namespace {

using namespace fcqss;

std::string vector_text(const linalg::int_vector& v)
{
    std::string text = "(";
    for (std::size_t i = 0; i < v.size(); ++i) {
        text += (i ? "," : "") + std::to_string(v[i]);
    }
    return text + ")";
}

std::string kept_names(const pn::petri_net& net, const qss::t_reduction& r)
{
    std::string text = "{";
    bool first = true;
    for (pn::transition_id t : net.transitions()) {
        if (r.keep_transition[t.index()]) {
            text += (first ? "" : ",") + net.transition_name(t);
            first = false;
        }
    }
    return text + "}";
}

void report()
{
    benchutil::heading("Figure 5: T-allocations and T-reductions");
    const auto net = nets::figure_5();
    const auto clusters = qss::choice_clusters(net);

    const qss::t_allocation a1{{net.find_transition("t2")}};
    const qss::t_allocation a2{{net.find_transition("t3")}};
    const auto r1 = qss::reduce(net, clusters, a1);
    const auto r2 = qss::reduce(net, clusters, a2);
    benchutil::row("R1 transitions (paper: t1 t2 t4 t6 + t8 t9)", kept_names(net, r1));
    benchutil::row("R2 transitions (paper: t1 t3 t5 t7 + t8 t9 t6)", kept_names(net, r2));

    const auto result = qss::quasi_static_schedule(net);
    for (const qss::schedule_entry& entry : result.entries) {
        const bool is_r1 = entry.reduction.same_subnet(r1);
        std::string invariants;
        for (const auto& x : entry.analysis.invariants) {
            invariants += vector_text(x) + " ";
        }
        benchutil::row(std::string(is_r1 ? "R1" : "R2") + " minimal T-invariants" +
                           (is_r1 ? "  (paper: (1,1,0,2,0,4,0,0,0) (0,0,0,0,0,1,0,1,1))"
                                  : ""),
                       invariants);
        benchutil::row(std::string(is_r1 ? "R1" : "R2") + " finite complete cycle" +
                           (is_r1 ? "  (paper: t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6)"
                                  : "  (paper: t1 t3 t5 t7 t7 t8 t9 t6)"),
                       to_string(net, entry.analysis.cycle));
    }
}

void bm_reduce_r1(benchmark::State& state)
{
    const auto net = nets::figure_5();
    const auto clusters = qss::choice_clusters(net);
    const qss::t_allocation a1{{net.find_transition("t2")}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::reduce(net, clusters, a1));
    }
}
BENCHMARK(bm_reduce_r1);

void bm_full_qss_fig5(benchmark::State& state)
{
    const auto net = nets::figure_5();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_full_qss_fig5);

} // namespace

FCQSS_BENCH_MAIN(report)
