// Figure 7 reproduction: the non-schedulable FCPN whose two T-reductions are
// both inconsistent because each keeps a producerless ("source") place — the
// starved input of the join t6 — which can only support finite execution.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "pn/structure.hpp"
#include "qss/reduction.hpp"
#include "qss/schedulability.hpp"
#include "qss/scheduler.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 7: non-schedulable FCPN (inconsistent reductions)");
    const auto net = nets::figure_7();
    const auto result = qss::quasi_static_schedule(net);
    benchutil::row("schedulable (paper: no)", result.schedulable ? "yes" : "no");
    benchutil::row("distinct T-reductions", std::to_string(result.entries.size()));
    for (const qss::schedule_entry& entry : result.entries) {
        const auto sub = materialize(net, entry.reduction);
        std::string source_places;
        for (pn::place_id p : pn::source_places(sub.net)) {
            source_places += sub.net.place_name(p) + " ";
        }
        benchutil::row("reduction for " + to_string(net, result.clusters,
                                                    entry.reduction.allocation),
                       to_string(entry.analysis.failure) +
                           (source_places.empty() ? "" : " — kept source place(s): " +
                                                             source_places));
    }
    benchutil::row("diagnosis", result.diagnosis);
}

void bm_diagnose_fig7(benchmark::State& state)
{
    const auto net = nets::figure_7();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_diagnose_fig7);

} // namespace

FCQSS_BENCH_MAIN(report)
