// Service throughput under a bursty, hot-key-skewed request trace — the
// workload the resident server exists for.  A fixed trace of synthesis
// requests is drawn from a pool of distinct nets with a deliberately hot
// subset (a few nets receive most of the traffic, as happens when many
// clients re-submit the same design), then driven through
// pipeline::service in bursts.  Reported against the one-shot batch
// pipeline over the identical trace, which re-synthesizes every duplicate
// from scratch — the dedupe table is the service's whole advantage.
//
// Rows: requests/s (tracked), speedup vs the one-shot batch (tracked),
// dedupe hit rate and p50/p99 latency (informational).
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/net_generator.hpp"
#include "pipeline/service.hpp"
#include "pipeline/synthesis_pipeline.hpp"
#include "pnio/writer.hpp"

namespace {

using namespace fcqss;
using clock_type = std::chrono::steady_clock;

constexpr std::size_t distinct_nets = 24;
constexpr std::size_t hot_nets = 4;       // the skew target
constexpr std::size_t hot_percent = 70;   // share of requests hitting them
constexpr std::size_t trace_length = 400;
constexpr std::size_t burst_size = 32;

/// xorshift* PRNG — deterministic trace, no std::random_device.
std::uint64_t next_random(std::uint64_t& state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
}

std::vector<std::string> make_net_pool()
{
    pipeline::generator_options options;
    options.depth = 3;
    pipeline::net_generator generator(2024, options);
    std::vector<std::string> pool;
    pool.reserve(distinct_nets);
    for (std::size_t i = 0; i < distinct_nets; ++i) {
        pool.push_back(pnio::write_net(generator.next()));
    }
    return pool;
}

/// The request trace: indices into the pool, hot-key skewed.
std::vector<std::size_t> make_trace(std::size_t length)
{
    std::uint64_t state = 0x51ce5ca17ed1ceULL;
    std::vector<std::size_t> trace;
    trace.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        if (next_random(state) % 100 < hot_percent) {
            trace.push_back(next_random(state) % hot_nets);
        } else {
            trace.push_back(hot_nets + next_random(state) % (distinct_nets - hot_nets));
        }
    }
    return trace;
}

struct trace_outcome {
    double wall_seconds = 0;
    double dedupe_ratio = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    std::uint64_t retries = 0;
};

/// Drives the trace through a service in bursts; on backpressure the
/// producer retries (counting every rejection) instead of blocking.
trace_outcome drive_service(const std::vector<std::string>& pool,
                            const std::vector<std::size_t>& trace)
{
    pipeline::service_options options;
    options.max_queue = 64; // small enough that bursts can actually overflow
    pipeline::service service(options);

    std::mutex latency_mutex;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(trace.size());

    trace_outcome outcome;
    const auto start = clock_type::now();
    std::size_t in_burst = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto submitted_at = clock_type::now();
        const auto on_reply = [&latency_mutex, &latencies_ms,
                               submitted_at](const pipeline::synthesis_reply&) {
            const double ms = std::chrono::duration<double, std::milli>(
                                  clock_type::now() - submitted_at)
                                  .count();
            std::lock_guard lock(latency_mutex);
            latencies_ms.push_back(ms);
        };
        pipeline::net_source source = pipeline::net_source::from_text(
            "req" + std::to_string(i), pool[trace[i]]);
        while (service.submit(source, on_reply).status !=
               pipeline::submit_status::accepted) {
            ++outcome.retries; // explicit backpressure: retry, never block
            std::this_thread::yield();
        }
        if (++in_burst == burst_size) {
            in_burst = 0;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    service.drain();
    outcome.wall_seconds =
        std::chrono::duration<double>(clock_type::now() - start).count();

    const pipeline::service::stats_snapshot stats = service.stats();
    outcome.dedupe_ratio =
        static_cast<double>(stats.cache_hits + stats.inflight_hits) /
        static_cast<double>(stats.replied);

    std::sort(latencies_ms.begin(), latencies_ms.end());
    if (!latencies_ms.empty()) {
        outcome.p50_ms = latencies_ms[latencies_ms.size() / 2];
        outcome.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
    }
    return outcome;
}

/// The same trace through the one-shot batch pipeline: every duplicate is
/// synthesized again, the baseline the service's dedupe is measured against.
double drive_batch(const std::vector<std::string>& pool,
                   const std::vector<std::size_t>& trace)
{
    std::vector<pipeline::net_source> sources;
    sources.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        sources.push_back(pipeline::net_source::from_text(
            "req" + std::to_string(i), pool[trace[i]]));
    }
    const pipeline::synthesis_pipeline pipe{pipeline::pipeline_options{}};
    const auto start = clock_type::now();
    const pipeline::batch_report report = pipe.run(sources);
    const double seconds =
        std::chrono::duration<double>(clock_type::now() - start).count();
    return seconds + (report.results.empty() ? 1.0 : 0.0);
}

void report()
{
    using benchutil::heading;
    using benchutil::row;

    const std::vector<std::string> pool = make_net_pool();
    const std::vector<std::size_t> trace = make_trace(trace_length);

    heading("service: bursty trace, hot-key skew");
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%zu over %zu nets (%zu hot)",
                  trace.size(), distinct_nets, hot_nets);
    row("requests", buffer);

    const trace_outcome outcome = drive_service(pool, trace);
    const double batch_seconds = drive_batch(pool, trace);

    std::snprintf(buffer, sizeof buffer, "%.0f",
                  static_cast<double>(trace.size()) / outcome.wall_seconds);
    row("service requests/s", buffer);
    std::snprintf(buffer, sizeof buffer, "%.2f",
                  batch_seconds / outcome.wall_seconds);
    row("service speedup vs one-shot batch", buffer);
    std::snprintf(buffer, sizeof buffer, "%.3f", outcome.dedupe_ratio);
    row("dedupe hit rate", buffer);
    std::snprintf(buffer, sizeof buffer, "%.3f", outcome.p50_ms);
    row("request p50 latency ms", buffer);
    std::snprintf(buffer, sizeof buffer, "%.3f", outcome.p99_ms);
    row("request p99 latency ms", buffer);
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(outcome.retries));
    row("backpressure retries", buffer);
}

/// Round-trip latency of one request through the resident service
/// (submit -> synthesize -> reply), dedupe disabled by unique names.
void BM_service_round_trip(benchmark::State& state)
{
    pipeline::generator_options options;
    options.depth = 3;
    pipeline::net_generator generator(7, options);
    const std::string text = pnio::write_net(generator.next());

    pipeline::service_options service_options;
    service_options.jobs = 1;
    service_options.result_cache = 0; // measure synthesis, not the cache
    pipeline::service service(service_options);

    std::mutex mutex;
    std::condition_variable done;
    bool replied = false;
    for (auto _ : state) {
        {
            std::lock_guard lock(mutex);
            replied = false;
        }
        const auto submitted = service.submit(
            pipeline::net_source::from_text("bench", text),
            [&](const pipeline::synthesis_reply&) {
                std::lock_guard lock(mutex);
                replied = true;
                done.notify_one();
            });
        if (submitted.status != pipeline::submit_status::accepted) {
            state.SkipWithError("submission rejected");
            break;
        }
        std::unique_lock lock(mutex);
        done.wait(lock, [&] { return replied; });
    }
    service.drain();
}
BENCHMARK(BM_service_round_trip)->Unit(benchmark::kMillisecond);

} // namespace

FCQSS_BENCH_MAIN(report)
