// Figure 4 + Sec. 4 reproduction: the weighted-arc FCPN with valid schedule
// {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)} and the C code synthesized from it — the
// paper's listing with count(p2)/count(p3) and the if/while tests.
#include "bench_util.hpp"

#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "nets/paper_nets.hpp"
#include "pn/firing.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "qss/valid_schedule.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 4: schedulable net with weighted arcs");
    const auto net = nets::figure_4();
    const auto result = qss::quasi_static_schedule(net);
    benchutil::row("schedulable (paper: yes)", result.schedulable ? "yes" : "no");
    for (std::size_t i = 0; i < result.entries.size(); ++i) {
        benchutil::row("cycle " + std::to_string(i) +
                           (i == 0 ? " (paper: t1 t2 t1 t2 t4)"
                                     : " (paper: t1 t3 t5 t5)"),
                       to_string(net, result.entries[i].analysis.cycle));
    }
    benchutil::row("Definition 3.1 validity check",
                   qss::check_valid_schedule(net, result.cycles()) ? "VIOLATED" : "ok");

    benchutil::heading("Section 4: C code generated for Figure 4");
    const auto partition = qss::partition_tasks(net, result);
    const auto program = cgen::generate_program(net, result, partition);
    std::printf("%s", cgen::emit_c(program).c_str());
}

void bm_qss_fig4(benchmark::State& state)
{
    const auto net = nets::figure_4();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_qss_fig4);

void bm_codegen_fig4(benchmark::State& state)
{
    const auto net = nets::figure_4();
    const auto result = qss::quasi_static_schedule(net);
    const auto partition = qss::partition_tasks(net, result);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgen::generate_program(net, result, partition));
    }
}
BENCHMARK(bm_codegen_fig4);

void bm_emit_c_fig4(benchmark::State& state)
{
    const auto net = nets::figure_4();
    const auto result = qss::quasi_static_schedule(net);
    const auto partition = qss::partition_tasks(net, result);
    const auto program = cgen::generate_program(net, result, partition);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgen::emit_c(program));
    }
}
BENCHMARK(bm_emit_c_fig4);

} // namespace

FCQSS_BENCH_MAIN(report)
