// Figure 6 reproduction: the step-by-step trace of the Reduction Algorithm
// deriving R1 from the Figure 5 net.  The paper's steps: remove t3
// (unallocated), remove p3, remove t5, remove p5+p6, remove t7.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "qss/reduction.hpp"

namespace {

using namespace fcqss;

void report()
{
    benchutil::heading("Figure 6: Reduction Algorithm trace (R1 from Figure 5)");
    const auto net = nets::figure_5();
    const auto clusters = qss::choice_clusters(net);
    const qss::t_allocation a1{{net.find_transition("t2")}};
    const auto r1 = qss::reduce(net, clusters, a1, /*record_trace=*/true);

    benchutil::row("paper's steps", "t3 (unallocated), p3, t5, p5+p6, t7");
    int step = 1;
    for (const qss::reduction_step& s : r1.trace) {
        benchutil::row("step " + std::to_string(step++),
                       "remove " + s.node + " (" + s.reason + ")");
    }
}

void bm_traced_reduction(benchmark::State& state)
{
    const auto net = nets::figure_5();
    const auto clusters = qss::choice_clusters(net);
    const qss::t_allocation a1{{net.find_transition("t2")}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::reduce(net, clusters, a1, true));
    }
}
BENCHMARK(bm_traced_reduction);

void bm_untraced_reduction(benchmark::State& state)
{
    const auto net = nets::figure_5();
    const auto clusters = qss::choice_clusters(net);
    const qss::t_allocation a1{{net.find_transition("t2")}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::reduce(net, clusters, a1, false));
    }
}
BENCHMARK(bm_untraced_reduction);

} // namespace

FCQSS_BENCH_MAIN(report)
