// Figure 3 reproduction: the schedulable net (a) with valid schedule
// {(t1 t2 t4), (t1 t3 t5)} and T-invariant space a(1,1,0,1,0) + b(1,0,1,0,1),
// and the non-schedulable net (b) whose only balanced vector is (2,1,1,1) —
// a one-sided adversary accumulates tokens without bound.
#include "bench_util.hpp"

#include "nets/paper_nets.hpp"
#include "pn/firing.hpp"
#include "pn/invariants.hpp"
#include "qss/scheduler.hpp"

namespace {

using namespace fcqss;

std::string vector_text(const linalg::int_vector& v)
{
    std::string text = "(";
    for (std::size_t i = 0; i < v.size(); ++i) {
        text += (i ? "," : "") + std::to_string(v[i]);
    }
    return text + ")";
}

void report()
{
    benchutil::heading("Figure 3a: schedulable FCPN");
    {
        const auto net = nets::figure_3a();
        const auto invariants = pn::t_invariants(net);
        std::string inv_text;
        for (const auto& x : invariants) {
            inv_text += vector_text(x) + " ";
        }
        benchutil::row("minimal T-invariants (paper: (1,1,0,1,0),(1,0,1,0,1))", inv_text);
        const auto result = qss::quasi_static_schedule(net);
        benchutil::row("schedulable (paper: yes)", result.schedulable ? "yes" : "no");
        for (std::size_t i = 0; i < result.entries.size(); ++i) {
            benchutil::row("cycle " + std::to_string(i),
                           to_string(net, result.entries[i].analysis.cycle));
        }
    }

    benchutil::heading("Figure 3b: NOT schedulable (join after choice)");
    {
        const auto net = nets::figure_3b();
        const auto invariants = pn::t_invariants(net);
        std::string inv_text;
        for (const auto& x : invariants) {
            inv_text += vector_text(x) + " ";
        }
        benchutil::row("minimal T-invariants (paper: only (2,1,1,1))", inv_text);
        const auto result = qss::quasi_static_schedule(net);
        benchutil::row("schedulable (paper: no)", result.schedulable ? "yes" : "no");
        benchutil::row("diagnosis", result.diagnosis);
    }
}

void bm_schedule_fig3a(benchmark::State& state)
{
    const auto net = nets::figure_3a();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_schedule_fig3a);

void bm_diagnose_fig3b(benchmark::State& state)
{
    const auto net = nets::figure_3b();
    for (auto _ : state) {
        benchmark::DoNotOptimize(qss::quasi_static_schedule(net));
    }
}
BENCHMARK(bm_diagnose_fig3b);

void bm_t_invariants_fig3a(benchmark::State& state)
{
    const auto net = nets::figure_3a();
    for (auto _ : state) {
        benchmark::DoNotOptimize(pn::t_invariants(net));
    }
}
BENCHMARK(bm_t_invariants_fig3a);

} // namespace

FCQSS_BENCH_MAIN(report)
