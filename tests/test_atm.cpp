// Tests for the ATM-server case study: the net reproduces the paper's
// statistics, the semantics behave (EPD/PPD discard, WFQ service), the
// functional partition is well-formed, and both implementations agree.
#include <gtest/gtest.h>

#include <set>

#include "base/error.hpp"
#include "apps/atm/atm_net.hpp"
#include "apps/atm/atm_semantics.hpp"
#include "apps/atm/functional_partition.hpp"
#include "apps/atm/table1.hpp"
#include "apps/atm/testbench.hpp"
#include "pn/net_class.hpp"
#include "pn/structure.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "qss/valid_schedule.hpp"

namespace fcqss::atm {
namespace {

TEST(atm_net, paper_statistics)
{
    // Sec. 5: "a FCPN containing 49 transitions and 41 places, of which 11
    // non-deterministic choices".
    const pn::petri_net net = build_atm_net();
    const pn::net_statistics stats = pn::statistics(net);
    EXPECT_EQ(stats.transitions, 49u);
    EXPECT_EQ(stats.places, 41u);
    EXPECT_EQ(stats.choices, 11u);
    EXPECT_EQ(stats.source_transitions, 2u); // Cell and Tick
    EXPECT_TRUE(pn::is_free_choice(net));
    EXPECT_TRUE(pn::is_equal_conflict_free_choice(net));
}

TEST(atm_net, schedulable_with_120_reductions)
{
    // Sec. 5: "a valid schedule containing 120 finite complete cycles, one
    // for each different T-reduction".
    const pn::petri_net net = build_atm_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable) << result.diagnosis;
    EXPECT_EQ(result.entries.size(), 120u);
    EXPECT_EQ(qss::check_valid_schedule(net, result.cycles()), std::nullopt);
}

TEST(atm_net, two_tasks)
{
    // Sec. 5: "a software implementation composed of two tasks, one for each
    // input with independent firing rate".
    const pn::petri_net net = build_atm_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    ASSERT_EQ(partition.tasks.size(), 2u);
    EXPECT_EQ(partition.tasks[0].name, "task_Cell");
    EXPECT_EQ(partition.tasks[1].name, "task_Tick");
    // The two rate families share no transition.
    std::set<std::int32_t> cell_members;
    for (pn::transition_id t : partition.tasks[0].members) {
        cell_members.insert(t.value());
    }
    for (pn::transition_id t : partition.tasks[1].members) {
        EXPECT_FALSE(cell_members.contains(t.value()));
    }
    EXPECT_EQ(partition.tasks[0].members.size() + partition.tasks[1].members.size(), 49u);
}

TEST(atm_net, module_map_partitions_transitions)
{
    const pn::petri_net net = build_atm_net();
    std::size_t total = 0;
    for (module m : {module::msd, module::buffer, module::wfq, module::cell_extract,
                     module::arbiter_counter}) {
        total += transitions_of(net, m).size();
    }
    EXPECT_EQ(total, 49u);
    EXPECT_EQ(module_of("Cell"), module::msd);
    EXPECT_EQ(module_of("Tick"), module::arbiter_counter);
    EXPECT_EQ(module_of("emit_cell"), module::cell_extract);
    EXPECT_THROW((void)module_of("unknown_t"), fcqss::model_error);
    EXPECT_EQ(to_string(module::wfq), "WFQ_SCHEDULING");
}

TEST(semantics, epd_rejects_above_threshold)
{
    atm_state state(2);
    state.epd_threshold = 0; // everything rejected
    state.current_cell = atm_cell{0, 0, cell_kind::start_of_message, false};
    const pn::petri_net net = build_atm_net();
    const auto oracle = make_choice_oracle(net, state);
    EXPECT_EQ(oracle(net.find_place("som_check")), 1); // reject
    apply_action("som_reject", state);
    EXPECT_TRUE(state.flows[0].dropping);
    EXPECT_EQ(state.dropped_cells, 1);

    // Continuations of the dropped message are discarded too (PPD)...
    state.current_cell = atm_cell{1, 0, cell_kind::continuation, false};
    EXPECT_EQ(oracle(net.find_place("com_check")), 1);
    // ...and the end of message resets the mark.
    state.current_cell = atm_cell{2, 0, cell_kind::end_of_message, false};
    EXPECT_EQ(oracle(net.find_place("eom_check")), 1);
    apply_action("eom_drop", state);
    EXPECT_FALSE(state.flows[0].dropping);
}

TEST(semantics, store_and_wfq_selection)
{
    atm_state state(3);
    const pn::petri_net net = build_atm_net();
    const auto oracle = make_choice_oracle(net, state);

    EXPECT_TRUE(state.buffer_empty());
    EXPECT_EQ(oracle(net.find_place("ce_state")), 0); // empty

    // Store a SOM on VC 1 and stamp it.
    state.current_cell = atm_cell{0, 1, cell_kind::start_of_message, false};
    apply_action("som_accept", state);
    apply_action("buf_store_som", state);
    EXPECT_EQ(state.occupancy, 1);
    EXPECT_FALSE(state.buffer_empty());
    EXPECT_EQ(oracle(net.find_place("ce_state")), 1); // nonempty
    EXPECT_TRUE(state.flows[1].backlogged);

    // Select and dequeue it.
    apply_action("ce_select", state);
    EXPECT_EQ(state.selected_vc, 1);
    EXPECT_EQ(oracle(net.find_place("flow_after")), 0); // goes empty
    apply_action("flow_close", state);
    apply_action("ce_dequeue", state);
    ASSERT_TRUE(state.out_cell.has_value());
    apply_action("emit_cell", state);
    EXPECT_EQ(state.emitted.size(), 1u);
    EXPECT_EQ(state.occupancy, 0);
}

TEST(semantics, wfq_picks_minimum_finish_time)
{
    atm_state state(3);
    state.flows[0].queue.push_back({0, 0, cell_kind::start_of_message, false});
    state.flows[0].finish_time = 90;
    state.flows[2].queue.push_back({1, 2, cell_kind::start_of_message, false});
    state.flows[2].finish_time = 30;
    EXPECT_EQ(state.pick_min_finish(), 2);
    state.flows[2].queue.clear();
    EXPECT_EQ(state.pick_min_finish(), 0);
    state.flows[0].queue.clear();
    EXPECT_EQ(state.pick_min_finish(), -1);
}

TEST(semantics, tick_slot_counting)
{
    atm_state state(1);
    state.ticks_per_slot = 3;
    const pn::petri_net net = build_atm_net();
    const auto oracle = make_choice_oracle(net, state);
    // Phase advances before the choice is read: boundary only when the
    // counter wraps to zero.
    apply_action("tick_count", state);
    EXPECT_EQ(oracle(net.find_place("tick_kind")), 1); // phase 1 -> mid
    apply_action("tick_count", state);
    EXPECT_EQ(oracle(net.find_place("tick_kind")), 1); // phase 2 -> mid
    apply_action("tick_count", state);
    EXPECT_EQ(oracle(net.find_place("tick_kind")), 0); // wrapped -> boundary
}

TEST(semantics, unknown_names_throw)
{
    atm_state state(1);
    EXPECT_THROW(apply_action("no_such_transition", state), fcqss::model_error);
    EXPECT_THROW((void)atm_state(0), fcqss::model_error);
}

TEST(testbench, deterministic_and_well_formed)
{
    const testbench_options options;
    const auto a = make_testbench(options);
    const auto b = make_testbench(options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].is_cell, b[i].is_cell);
        EXPECT_EQ(a[i].cell.id, b[i].cell.id);
    }

    int cells = 0;
    std::int64_t last_time = -1;
    std::vector<int> open_message(static_cast<std::size_t>(options.flow_count), 0);
    for (const input_event& event : a) {
        EXPECT_GE(event.time, last_time);
        last_time = event.time;
        if (!event.is_cell) {
            EXPECT_EQ(event.time % 2, 0) << "ticks on even instants";
            continue;
        }
        EXPECT_EQ(event.time % 2, 1) << "cells on odd instants";
        ++cells;
        auto& open = open_message[static_cast<std::size_t>(event.cell.vc)];
        switch (event.cell.kind) {
        case cell_kind::start_of_message:
            EXPECT_EQ(open, 0) << "SOM while a message is open";
            open = 1;
            break;
        case cell_kind::continuation:
            EXPECT_EQ(open, 1);
            break;
        case cell_kind::end_of_message:
            EXPECT_EQ(open, 1);
            open = 0;
            break;
        }
    }
    EXPECT_EQ(cells, options.cell_count);
}

TEST(testbench, validates_options)
{
    testbench_options bad;
    bad.tick_period = 7;
    EXPECT_THROW((void)make_testbench(bad), fcqss::model_error);
    bad = {};
    bad.cell_count = 0;
    EXPECT_THROW((void)make_testbench(bad), fcqss::model_error);
}

TEST(functional, partition_is_closed_and_schedulable)
{
    const pn::petri_net net = build_atm_net();
    const functional_partition partition = build_functional_partition(net);
    ASSERT_EQ(partition.modules.size(), 5u);
    EXPECT_FALSE(partition.channels.empty());

    std::size_t total_transitions = 0;
    for (const module_task& m : partition.modules) {
        EXPECT_TRUE(m.schedule.schedulable) << m.name;
        // Module transitions = original members + one recv per cut-in place.
        total_transitions += m.subnet.transition_count() - m.recv_source_of_place.size();
    }
    EXPECT_EQ(total_transitions, 49u);

    // Every cut channel has a producer-side send and a consumer-side recv.
    for (const cut_channel& channel : partition.channels) {
        const module_task& consumer = partition.module_named(channel.consumer_module);
        EXPECT_TRUE(consumer.recv_source_of_place.contains(channel.place_name));
        const module_task& producer = partition.module_named(channel.producer_module);
        bool sends = false;
        for (const auto& [transition, sends_list] : producer.sends_of_transition) {
            for (const cut_channel& c : sends_list) {
                sends = sends || c.place_name == channel.place_name;
            }
        }
        EXPECT_TRUE(sends) << channel.place_name;
    }
    EXPECT_THROW((void)partition.module_named("NOPE"), fcqss::model_error);
}

TEST(functional, msd_owns_cell_and_counter_owns_tick)
{
    const functional_partition partition = build_functional_partition(build_atm_net());
    EXPECT_EQ(partition.module_named("MSD").external_sources,
              (std::vector<std::string>{"Cell"}));
    EXPECT_EQ(partition.module_named("ARBITER_COUNTER").external_sources,
              (std::vector<std::string>{"Tick"}));
}

TEST(table1, implementations_agree_and_qss_wins)
{
    testbench_options options;
    options.cell_count = 50; // the paper's testbench
    const auto events = make_testbench(options);

    const implementation_report qss = run_qss_implementation(events, options.flow_count);
    const implementation_report fun =
        run_functional_implementation(events, options.flow_count);

    // Table I row 1: number of tasks.
    EXPECT_EQ(qss.task_count, 2);
    EXPECT_EQ(fun.task_count, 5);

    // Functional equivalence: identical emission order and discard counts.
    ASSERT_EQ(qss.emitted.size(), fun.emitted.size());
    for (std::size_t i = 0; i < qss.emitted.size(); ++i) {
        EXPECT_EQ(qss.emitted[i].id, fun.emitted[i].id);
        EXPECT_EQ(qss.emitted[i].vc, fun.emitted[i].vc);
    }
    EXPECT_EQ(qss.dropped_cells, fun.dropped_cells);
    EXPECT_EQ(qss.idle_slots, fun.idle_slots);

    // Every arriving cell is accounted for: emitted or dropped.
    EXPECT_EQ(static_cast<std::int64_t>(qss.emitted.size()) + qss.dropped_cells, 50);

    // Table I rows 2 and 3: QSS is smaller and faster (the paper's shape).
    EXPECT_LT(qss.lines_of_c, fun.lines_of_c);
    EXPECT_LT(qss.clock_cycles, fun.clock_cycles);

    // The whole gap is activation + queue overhead: the functional split
    // processes the same events with strictly more activations.
    EXPECT_GT(fun.rtos.events_processed, qss.rtos.events_processed);
}

TEST(table1, robust_across_seeds)
{
    for (std::uint64_t seed : {7ull, 42ull, 2024ull}) {
        testbench_options options;
        options.seed = seed;
        options.cell_count = 30;
        const auto events = make_testbench(options);
        const implementation_report qss =
            run_qss_implementation(events, options.flow_count);
        const implementation_report fun =
            run_functional_implementation(events, options.flow_count);
        ASSERT_EQ(qss.emitted.size(), fun.emitted.size()) << "seed " << seed;
        EXPECT_EQ(qss.dropped_cells, fun.dropped_cells) << "seed " << seed;
        EXPECT_LT(qss.clock_cycles, fun.clock_cycles) << "seed " << seed;
    }
}

} // namespace
} // namespace fcqss::atm
