#!/bin/sh
# End-to-end smoke test for `pn_tool serve`: pipes a JSONL batch with a
# duplicate net and a malformed request through a fresh daemon over stdio,
# then checks the replies, the dedupe flags, and a clean shutdown.
#
# Usage: serve_smoke.sh /path/to/pn_tool
set -eu

pn_tool=${1:?usage: serve_smoke.sh /path/to/pn_tool}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Two textually different spellings of the same net: the dedupe key is a
# content hash of the parsed net, so the second submission must be flagged
# `"deduplicated":true` without a second synthesis.
net='net smoke { places { p1; p2; p3; } transitions { t1; t2; t3; t4; t5; } arcs { t1 -> p1; p1 -> t2; t2 -> p2; p1 -> t3; t3 -> p3; p2 -> t4; p3 -> t5; } }'
same_net='net smoke {  places { p1 ; p2 ; p3 ; }  transitions { t1 ; t2 ; t3 ; t4 ; t5 ; }  arcs { t1 -> p1 ; p1 -> t2 ; t2 -> p2 ; p1 -> t3 ; t3 -> p3 ; p2 -> t4 ; p3 -> t5 ; } }'

{
    printf '{"op":"synthesize","id":"a","net":"%s"}\n' "$net"
    printf '{"op":"synthesize","id":"b","net":"%s"}\n' "$same_net"
    printf 'this is not json\n'
    printf '{"op":"synthesize","id":"c"}\n'
    printf '{"op":"stats"}\n'
    printf '{"op":"shutdown"}\n'
} | "$pn_tool" serve --jobs 2 --max-allocations 4096 > "$workdir/replies.jsonl" \
    || { echo "FAIL: serve exited non-zero"; exit 1; }

replies=$workdir/replies.jsonl
check() {
    pattern=$1
    expected=$2
    what=$3
    got=$(grep -c -- "$pattern" "$replies" || true)
    if [ "$got" -ne "$expected" ]; then
        echo "FAIL: expected $expected x $what, got $got"
        echo "--- replies ---"
        cat "$replies"
        exit 1
    fi
}

check '"event":"accepted"' 2 'accepted events'
check '"event":"done"' 2 'done events'
check '"status":"ok"' 2 'successful syntheses'
check '"deduplicated":true' 1 'deduplicated reply'
check '"deduplicated":false' 1 'reply that ran the one synthesis'
check '"event":"error"' 2 'error events (bad JSON + missing net)'
check '"event":"stats"' 1 'stats event'
check '"event":"bye"' 1 'bye event'

# The bye must be the final line: shutdown drains before closing the stream.
last=$(tail -n 1 "$replies")
case $last in
    *'"event":"bye"'*) ;;
    *) echo "FAIL: last line is not the bye event: $last"; exit 1 ;;
esac

echo "PASS: serve smoke"
