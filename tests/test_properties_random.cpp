// Property-based sweeps over seeded random free-choice nets: the synthesized
// schedules, invariants and generated code must satisfy their defining
// invariants on every instance.
#include <gtest/gtest.h>

#include <map>

#include "codegen/interpreter.hpp"
#include "codegen/task_codegen.hpp"
#include "pn/firing.hpp"
#include "pn/invariants.hpp"
#include "pn/net_class.hpp"
#include "pn/structure.hpp"
#include "qss/reduction.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"
#include "qss/valid_schedule.hpp"
#include "test_util.hpp"

namespace fcqss {
namespace {

class random_net_property : public ::testing::TestWithParam<int> {
protected:
    pn::petri_net make_net() const
    {
        return testutil::random_free_choice_net(
            static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    }
};

TEST_P(random_net_property, generator_produces_equal_conflict_free_choice)
{
    const pn::petri_net net = make_net();
    EXPECT_TRUE(pn::is_free_choice(net));
    EXPECT_TRUE(pn::is_equal_conflict_free_choice(net));
    EXPECT_FALSE(pn::source_transitions(net).empty());
}

TEST_P(random_net_property, p_invariants_conserved_under_random_firing)
{
    const pn::petri_net net = make_net();
    const auto invariants = pn::p_invariants(net);
    pn::marking m = pn::initial_marking(net);
    std::vector<std::int64_t> sums;
    for (const auto& y : invariants) {
        sums.push_back(pn::weighted_token_sum(y, m.vector()));
    }
    testutil::prng rng(GetParam() + 99);
    for (int step = 0; step < 60; ++step) {
        const auto enabled = pn::enabled_transitions(net, m);
        if (enabled.empty()) {
            break;
        }
        pn::fire(net, m, enabled[rng.below(enabled.size())]);
        for (std::size_t i = 0; i < invariants.size(); ++i) {
            EXPECT_EQ(pn::weighted_token_sum(invariants[i], m.vector()), sums[i]);
        }
    }
}

TEST_P(random_net_property, every_reduction_is_conflict_free_subnet)
{
    const pn::petri_net net = make_net();
    const auto clusters = qss::choice_clusters(net);
    for (const qss::t_allocation& a : qss::enumerate_allocations(clusters)) {
        const qss::t_reduction r = qss::reduce(net, clusters, a);
        const qss::reduced_net sub = materialize(net, r);
        EXPECT_TRUE(pn::is_conflict_free(sub.net));
        // Sources of the original always survive.
        for (pn::transition_id s : pn::source_transitions(net)) {
            EXPECT_TRUE(r.keep_transition[s.index()]);
        }
    }
}

TEST_P(random_net_property, scheduler_produces_valid_schedule)
{
    const pn::petri_net net = make_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable) << net.name() << ": " << result.diagnosis;

    // Every cycle is a finite complete cycle realizing its cycle vector.
    for (const qss::schedule_entry& entry : result.entries) {
        EXPECT_TRUE(pn::is_finite_complete_cycle(net, entry.analysis.cycle));
        EXPECT_EQ(pn::firing_count_vector(net, entry.analysis.cycle),
                  entry.analysis.cycle_vector);
    }

    // Definition 3.1 holds for the whole set.
    const auto violation = qss::check_valid_schedule(net, result.cycles());
    EXPECT_EQ(violation, std::nullopt)
        << net.name() << ": " << (violation ? violation->describe(net) : "");
}

TEST_P(random_net_property, codegen_matches_eager_reference)
{
    const pn::petri_net net = make_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    cgen::program_instance instance(program);

    // Per-place decision streams make choice resolution independent of the
    // order in which different places query.
    std::map<std::int32_t, testutil::prng> code_streams;
    std::map<std::int32_t, testutil::prng> ref_streams;
    const auto stream_choice = [&](std::map<std::int32_t, testutil::prng>& streams,
                                   pn::place_id p) {
        auto [it, inserted] = streams.try_emplace(
            p.value(), static_cast<std::uint64_t>(p.value()) * 31337 + GetParam());
        return static_cast<int>(it->second.below(net.consumers(p).size()));
    };

    std::map<std::int32_t, std::int64_t> code_fired;
    std::map<std::int32_t, std::int64_t> ref_fired;
    pn::marking reference = pn::initial_marking(net);

    const auto sources = pn::source_transitions(net);
    testutil::prng source_picker(GetParam() + 5);
    for (int round = 0; round < 12; ++round) {
        const pn::transition_id source = sources[source_picker.below(sources.size())];
        instance.run_source(
            source, [&](pn::place_id p) { return stream_choice(code_streams, p); },
            [&](pn::transition_id t) { ++code_fired[t.value()]; });
        testutil::eager_react(
            net, reference, source,
            [&](pn::place_id p) { return stream_choice(ref_streams, p); },
            [&](pn::transition_id t) { ++ref_fired[t.value()]; });
    }

    EXPECT_EQ(code_fired, ref_fired) << "fired multisets diverge on " << net.name();

    // Counter state must equal the reference marking on every counted place;
    // elided places must be empty in the reference too.
    for (pn::place_id p : net.places()) {
        bool counted = false;
        for (const cgen::counter_decl& counter : program.counters) {
            counted = counted || counter.place == p;
        }
        if (counted) {
            EXPECT_EQ(instance.counter(p), reference.tokens(p))
                << net.name() << " place " << net.place_name(p);
        } else {
            EXPECT_EQ(reference.tokens(p), 0)
                << net.name() << " elided place " << net.place_name(p)
                << " should never hold tokens at quiescence";
        }
    }
}

TEST_P(random_net_property, task_partition_covers_all_fired_transitions)
{
    const pn::petri_net net = make_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    EXPECT_TRUE(partition.detached.empty());

    std::vector<bool> owned(net.transition_count(), false);
    for (const qss::task_group& task : partition.tasks) {
        for (pn::transition_id t : task.members) {
            EXPECT_FALSE(owned[t.index()]) << "transition in two tasks";
            owned[t.index()] = true;
        }
    }
    // Everything fired by some cycle is owned by exactly one task.
    for (const qss::schedule_entry& entry : result.entries) {
        for (pn::transition_id t : entry.analysis.cycle) {
            EXPECT_TRUE(owned[t.index()]) << net.transition_name(t);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_net_property, ::testing::Range(0, 30));

} // namespace
} // namespace fcqss
