// Shared test utilities: a seeded random free-choice net generator (for
// property-style sweeps) and an eager reference simulator that mirrors the
// generated code's operational semantics on the net itself.
#ifndef FCQSS_TESTS_TEST_UTIL_HPP
#define FCQSS_TESTS_TEST_UTIL_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "base/prng.hpp"
#include "codegen/interpreter.hpp"
#include "pn/builder.hpp"
#include "pn/firing.hpp"
#include "pn/petri_net.hpp"

namespace fcqss::testutil {

/// The shared deterministic PRNG (see base/prng.hpp).
using fcqss::prng;

struct random_net_options {
    int sources = 2;          // independent inputs
    int depth = 4;            // layers of processing
    int width = 3;            // transitions per layer
    int choice_percent = 35;  // probability a place becomes a choice
    int max_weight = 2;       // arc weights in [1, max_weight]
    bool allow_joins = true;
};

/// Generates a schedulable-by-construction free-choice net: layered forward
/// chains from source transitions, choices branch to per-alternative chains
/// that all terminate in sink transitions, weights paired so every path is
/// balanced (producer weight w feeds a consumer of weight w or 1xw / wx1
/// pairs that the QSS cycle covers).
[[nodiscard]] pn::petri_net
random_free_choice_net(std::uint64_t seed, const random_net_options& options = {});

/// Eager reference semantics: fire `source`, then repeatedly fire any
/// enabled non-source transition (choices resolved by the oracle, keyed by
/// the choice place), until quiescent.  Mirrors the generated code's
/// reaction semantics; every fired transition is reported in order.
void eager_react(const pn::petri_net& net, pn::marking& m, pn::transition_id source,
                 const std::function<int(pn::place_id)>& choose,
                 const std::function<void(pn::transition_id)>& on_fire,
                 int max_steps = 100000);

} // namespace fcqss::testutil

#endif // FCQSS_TESTS_TEST_UTIL_HPP
