// Tests for the extension modules: the code/buffer tradeoff explorer (the
// paper's proposed future work) and the footnote-2 executability check.
#include <gtest/gtest.h>

#include "base/error.hpp"
#include "nets/paper_nets.hpp"
#include "pn/builder.hpp"
#include "qss/executability.hpp"
#include "qss/scheduler.hpp"
#include "qss/tradeoff.hpp"
#include "test_util.hpp"

namespace fcqss::qss {
namespace {

TEST(tradeoff, buffer_bounds_of_fig4)
{
    const pn::petri_net net = nets::figure_4();
    const qss_result result = quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const auto bounds = schedule_buffer_bounds(net, result);
    // p1 holds at most 1 token, p2 at most 2 (t4 waits for two), p3 at most 2.
    EXPECT_EQ(bounds[net.find_place("p1").index()], 1);
    EXPECT_EQ(bounds[net.find_place("p2").index()], 2);
    EXPECT_EQ(bounds[net.find_place("p3").index()], 2);
}

TEST(tradeoff, curve_is_monotone_in_unroll)
{
    const pn::petri_net net = nets::figure_4();
    const qss_result result = quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const auto curve = explore_tradeoff(net, result, 4);
    ASSERT_EQ(curve.size(), 4u);
    for (std::size_t i = 0; i < curve.size(); ++i) {
        EXPECT_EQ(curve[i].unroll, static_cast<std::int64_t>(i + 1));
        if (i > 0) {
            // More unrolling: strictly more static code...
            EXPECT_GT(curve[i].schedule_length, curve[i - 1].schedule_length);
            // ...and at least as much buffering (input bursts accumulate).
            EXPECT_GE(curve[i].total_buffer_tokens, curve[i - 1].total_buffer_tokens);
        }
    }
    // Unrolling Fig. 4 genuinely buffers more: the k=4 batch stores 4 tokens
    // in p1 before draining.
    EXPECT_GT(curve[3].total_buffer_tokens, curve[0].total_buffer_tokens);
    EXPECT_GE(curve[3].max_place_tokens, 4);
}

TEST(tradeoff, schedule_length_scales_linearly)
{
    const pn::petri_net net = nets::figure_3a();
    const qss_result result = quasi_static_schedule(net);
    const auto curve = explore_tradeoff(net, result, 3);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_EQ(curve[1].schedule_length, 2 * curve[0].schedule_length);
    EXPECT_EQ(curve[2].schedule_length, 3 * curve[0].schedule_length);
}

TEST(tradeoff, rejects_unschedulable_input)
{
    const pn::petri_net net = nets::figure_3b();
    const qss_result result = quasi_static_schedule(net);
    EXPECT_THROW((void)schedule_buffer_bounds(net, result), domain_error);
    EXPECT_THROW((void)explore_tradeoff(net, result), domain_error);
    const qss_result ok = quasi_static_schedule(nets::figure_3a());
    EXPECT_THROW((void)explore_tradeoff(nets::figure_3a(), ok, 0), domain_error);
}

TEST(executability, paper_nets_are_executable)
{
    for (const pn::petri_net& net :
         {nets::figure_2(), nets::figure_3a(), nets::figure_4(), nets::figure_5()}) {
        const qss_result result = quasi_static_schedule(net);
        ASSERT_TRUE(result.schedulable) << net.name();
        EXPECT_EQ(check_executability(net, result), std::nullopt) << net.name();
    }
}

TEST(executability, random_nets_are_executable)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const pn::petri_net net = testutil::random_free_choice_net(seed * 131 + 3);
        const qss_result result = quasi_static_schedule(net);
        ASSERT_TRUE(result.schedulable);
        executability_options options;
        options.random_rounds = 16;
        EXPECT_EQ(check_executability(net, result, options), std::nullopt)
            << net.name();
    }
}

TEST(executability, detects_cross_cycle_blocking)
{
    // A hand-built pathological witness for the check itself: two "cycles"
    // over a shared marked fragment where one ordering blocks.  The second
    // sequence consumes the shared token and fails to restore it before the
    // first sequence needs it, so the mixed replay must be flagged.
    pn::net_builder b("blocker");
    const auto src = b.add_transition("src");
    const auto p = b.add_place("p");
    const auto shared = b.add_place("shared", 1);
    const auto take = b.add_transition("take");
    const auto give = b.add_transition("give");
    const auto p2 = b.add_place("p2");
    b.add_arc(src, p);
    b.add_arc(p, take);
    b.add_arc(shared, take);
    b.add_arc(take, p2);
    b.add_arc(p2, give);
    b.add_arc(give, shared);
    const pn::petri_net net = std::move(b).build();

    // Forge a result whose second "cycle" leaves the shared token consumed.
    qss_result forged = quasi_static_schedule(net);
    ASSERT_TRUE(forged.schedulable);
    ASSERT_EQ(forged.entries.size(), 1u);
    schedule_entry broken = forged.entries.front();
    broken.analysis.cycle = {src, take}; // no give: token not restored
    forged.entries.push_back(broken);

    const auto failure = check_executability(net, forged);
    ASSERT_TRUE(failure.has_value());
    EXPECT_FALSE(failure->context.empty());
}

} // namespace
} // namespace fcqss::qss
