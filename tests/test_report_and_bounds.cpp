// Tests for the synthesis report, structural place bounds, counter-bound
// annotations in generated code, and the ATM wrap/priority branches that the
// default testbench rarely exercises.
#include <gtest/gtest.h>

#include "apps/atm/atm_net.hpp"
#include "apps/atm/atm_semantics.hpp"
#include "apps/atm/testbench.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/task_codegen.hpp"
#include "nets/paper_nets.hpp"
#include "pn/builder.hpp"
#include "pn/structural_bounds.hpp"
#include "qss/report.hpp"
#include "qss/scheduler.hpp"
#include "qss/task_partition.hpp"

namespace fcqss {
namespace {

TEST(report, schedulable_net_content)
{
    const std::string report = qss::synthesis_report(nets::figure_4());
    EXPECT_NE(report.find("VERDICT: schedulable"), std::string::npos);
    EXPECT_NE(report.find("t1 t2 t1 t2 t4"), std::string::npos);
    EXPECT_NE(report.find("Definition 3.1 validity: ok"), std::string::npos);
    EXPECT_NE(report.find("executability (footnote 2): ok"), std::string::npos);
    EXPECT_NE(report.find("task_t1"), std::string::npos);
    EXPECT_NE(report.find("buffer bounds"), std::string::npos);
}

TEST(report, unschedulable_net_content)
{
    const std::string report = qss::synthesis_report(nets::figure_7());
    EXPECT_NE(report.find("VERDICT: NOT quasi-statically schedulable"),
              std::string::npos);
    EXPECT_NE(report.find("inconsistent"), std::string::npos);
    EXPECT_NE(report.find("bounded memory"), std::string::npos);
}

TEST(report, cycle_preview_limits_output)
{
    qss::report_options options;
    options.cycle_preview = 2;
    options.check_executability = false; // 120 cycles: keep the test quick
    const std::string report = qss::synthesis_report(atm::build_atm_net(), options);
    EXPECT_NE(report.find("120 finite complete cycles, showing 2"), std::string::npos);
}

TEST(structural_bounds, conservative_ring_bounded)
{
    pn::net_builder b("ring");
    const auto p1 = b.add_place("p1", 3);
    const auto p2 = b.add_place("p2");
    const auto a = b.add_transition("a");
    const auto c = b.add_transition("c");
    b.add_arc(p1, a);
    b.add_arc(a, p2);
    b.add_arc(p2, c);
    b.add_arc(c, p1);
    const pn::petri_net net = std::move(b).build();

    EXPECT_TRUE(pn::is_structurally_bounded(net));
    const auto bounds = pn::structural_place_bounds(net);
    EXPECT_EQ(bounds[p1.index()], 3);
    EXPECT_EQ(bounds[p2.index()], 3);
}

TEST(structural_bounds, weighted_invariant_divides)
{
    // a moves one token from p1 to TWO in p2; y = (2,1) is the invariant:
    // 2*m(p1) + m(p2) = 2*2 = 4, so p1 <= 2 and p2 <= 4.
    pn::net_builder b("weighted");
    const auto p1 = b.add_place("p1", 2);
    const auto p2 = b.add_place("p2");
    const auto a = b.add_transition("a");
    const auto c = b.add_transition("c");
    b.add_arc(p1, a);
    b.add_arc(a, p2, 2);
    b.add_arc(p2, c, 2);
    b.add_arc(c, p1);
    const pn::petri_net net = std::move(b).build();

    const auto bounds = pn::structural_place_bounds(net);
    ASSERT_TRUE(bounds[p1.index()].has_value());
    ASSERT_TRUE(bounds[p2.index()].has_value());
    EXPECT_EQ(*bounds[p1.index()], 2);
    EXPECT_EQ(*bounds[p2.index()], 4);
}

TEST(structural_bounds, source_fed_place_unbounded)
{
    const pn::petri_net net = nets::figure_3a();
    EXPECT_FALSE(pn::is_structurally_bounded(net));
    const auto bounds = pn::structural_place_bounds(net);
    for (const auto& bound : bounds) {
        EXPECT_FALSE(bound.has_value()); // every place is source-reachable
    }
}

TEST(counter_annotations, peaks_emitted_into_c)
{
    const pn::petri_net net = nets::figure_4();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    for (const cgen::counter_decl& counter : program.counters) {
        EXPECT_EQ(counter.peak_bound, 2) << counter.name; // p2 and p3 peak at 2
    }
    const std::string code = cgen::emit_c(program);
    EXPECT_NE(code.find("/* peak 2 under the schedule */"), std::string::npos);
}

TEST(counter_annotations, can_be_disabled)
{
    const pn::petri_net net = nets::figure_4();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    cgen::codegen_options options;
    options.annotate_counter_bounds = false;
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition, options);
    for (const cgen::counter_decl& counter : program.counters) {
        EXPECT_EQ(counter.peak_bound, -1);
    }
    EXPECT_EQ(cgen::emit_c(program).find("peak"), std::string::npos);
}

TEST(atm_wrap_paths, restamp_wrap_branch)
{
    atm::atm_state state(2);
    state.clock_wrap_limit = 100;
    const pn::petri_net net = atm::build_atm_net();
    const auto oracle = atm::make_choice_oracle(net, state);

    // Two cells queued on VC 0 whose finish time is near the wrap limit.
    state.flows[0].queue.push_back({0, 0, atm::cell_kind::start_of_message, false});
    state.flows[0].queue.push_back({1, 0, atm::cell_kind::end_of_message, false});
    state.flows[0].finish_time = 95; // weight 1 -> step 60: 95 + 60 >= 100
    state.selected_vc = 0;
    EXPECT_EQ(oracle(net.find_place("flow_after")), 2); // restamp_wrap

    apply_action("restamp_wrap", state);
    EXPECT_EQ(state.flows[0].finish_time, 95 + 60 - 100);
}

TEST(atm_wrap_paths, vt_wrap_branch)
{
    atm::atm_state state(1);
    state.clock_wrap_limit = 50;
    state.virtual_time = 55;
    const pn::petri_net net = atm::build_atm_net();
    const auto oracle = atm::make_choice_oracle(net, state);
    EXPECT_EQ(oracle(net.find_place("vt_kind")), 1); // wrap
    apply_action("vt_wrap", state);
    EXPECT_EQ(state.virtual_time, 5);

    state.virtual_time = 10;
    EXPECT_EQ(oracle(net.find_place("vt_kind")), 0); // normal
}

TEST(atm_wrap_paths, clp_bit_counted)
{
    atm::atm_state state(1);
    state.flows[0].queue.push_back({0, 0, atm::cell_kind::start_of_message, true});
    state.selected_vc = 0;
    const pn::petri_net net = atm::build_atm_net();
    const auto oracle = atm::make_choice_oracle(net, state);
    EXPECT_EQ(oracle(net.find_place("sel_clp")), 1);
    apply_action("sel_clp1", state);
    EXPECT_EQ(state.emitted_clp1, 1);
}

TEST(atm_wrap_paths, full_run_exercises_wraps)
{
    // With a tiny wrap limit the 50-cell run must take both wrap branches —
    // and the two implementations must still agree.
    atm::testbench_options options;
    options.cell_count = 40;
    const auto events = atm::make_testbench(options);

    // The wrap limit lives in atm_state, constructed inside the harness;
    // instead verify via a manual QSS run with a wrapped oracle.
    const pn::petri_net net = atm::build_atm_net();
    const qss::qss_result result = qss::quasi_static_schedule(net);
    const qss::task_partition partition = qss::partition_tasks(net, result);
    const cgen::generated_program program =
        cgen::generate_program(net, result, partition);
    cgen::program_instance instance(program);

    atm::atm_state state(options.flow_count);
    state.clock_wrap_limit = 64; // tiny: wraps occur quickly
    const auto oracle = atm::make_choice_oracle(net, state);
    const auto apply = atm::make_action_applier(net, state);

    std::vector<atm::atm_cell> cells;
    for (const atm::input_event& event : events) {
        if (event.is_cell) {
            state.current_cell = event.cell;
            instance.run_source(net.find_transition("Cell"), oracle, apply);
            state.current_cell.reset();
        } else {
            instance.run_source(net.find_transition("Tick"), oracle, apply);
        }
    }
    EXPECT_GT(state.emitted.size(), 0u);
    EXPECT_EQ(static_cast<int>(state.emitted.size() + state.dropped_cells +
                               state.occupancy),
              options.cell_count);
    (void)cells;
}

} // namespace
} // namespace fcqss
