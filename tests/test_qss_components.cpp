// Unit tests for the QSS building blocks: conflict clusters, T-allocations,
// the Reduction Algorithm's rules, per-reduction schedulability and the task
// partition — beyond the end-to-end paper figures in test_qss_paper.cpp.
#include <gtest/gtest.h>

#include "base/error.hpp"
#include "nets/paper_nets.hpp"
#include "pn/builder.hpp"
#include "qss/conflict_clusters.hpp"
#include "qss/reduction.hpp"
#include "qss/schedulability.hpp"
#include "qss/scheduler.hpp"
#include "qss/t_allocation.hpp"
#include "qss/task_partition.hpp"

namespace fcqss::qss {
namespace {

using pn::petri_net;

TEST(clusters, extraction_and_keys)
{
    const petri_net net = nets::figure_3a();
    const auto clusters = choice_clusters(net);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(net.place_name(clusters[0].place), "p1");
    ASSERT_EQ(clusters[0].alternatives.size(), 2u);
    EXPECT_TRUE(in_any_cluster(clusters, net.find_transition("t2")));
    EXPECT_FALSE(in_any_cluster(clusters, net.find_transition("t4")));

    const auto keys = conflict_priority_keys(net);
    // t2 and t3 share the cluster key (t2's id); others keep their own.
    EXPECT_EQ(keys[net.find_transition("t2").index()],
              keys[net.find_transition("t3").index()]);
    EXPECT_EQ(keys[net.find_transition("t4").index()],
              net.find_transition("t4").value());
}

TEST(clusters, rejects_non_free_choice)
{
    EXPECT_THROW((void)choice_clusters(nets::figure_1b()), domain_error);
}

TEST(clusters, rejects_unequal_choice_weights)
{
    pn::net_builder b("uneq");
    const auto p = b.add_place("p");
    const auto src = b.add_transition("s");
    const auto a = b.add_transition("a");
    const auto c = b.add_transition("c");
    b.add_arc(src, p);
    b.add_arc(p, a, 1);
    b.add_arc(p, c, 2);
    EXPECT_THROW((void)choice_clusters(std::move(b).build()), domain_error);
}

TEST(allocations, enumeration_counts)
{
    const petri_net net = nets::figure_3a();
    const auto clusters = choice_clusters(net);
    EXPECT_EQ(allocation_count(clusters), 2u);
    const auto allocations = enumerate_allocations(clusters);
    ASSERT_EQ(allocations.size(), 2u);
    EXPECT_EQ(allocations[0].chosen[0], net.find_transition("t2"));
    EXPECT_EQ(allocations[1].chosen[0], net.find_transition("t3"));
}

TEST(allocations, cap_enforced)
{
    const auto clusters = choice_clusters(nets::figure_3a());
    EXPECT_THROW((void)enumerate_allocations(clusters, 1), error);
}

TEST(allocations, excluded_and_text)
{
    const petri_net net = nets::figure_3a();
    const auto clusters = choice_clusters(net);
    const t_allocation a{{net.find_transition("t2")}};
    const auto excluded = excluded_transitions(clusters, a);
    ASSERT_EQ(excluded.size(), 1u);
    EXPECT_EQ(excluded.front(), net.find_transition("t3"));
    EXPECT_EQ(to_string(net, clusters, a), "{p1 -> t2}");

    t_allocation wrong_size;
    EXPECT_THROW((void)excluded_transitions(clusters, wrong_size), model_error);
}

TEST(allocations, no_choices_single_empty_allocation)
{
    const auto clusters = choice_clusters(nets::figure_2());
    EXPECT_TRUE(clusters.empty());
    const auto allocations = enumerate_allocations(clusters);
    ASSERT_EQ(allocations.size(), 1u);
    EXPECT_TRUE(allocations.front().chosen.empty());
}

TEST(reduction, is_conflict_free_and_subnet)
{
    const petri_net net = nets::figure_5();
    const auto clusters = choice_clusters(net);
    for (const t_allocation& a : enumerate_allocations(clusters)) {
        const t_reduction r = reduce(net, clusters, a);
        const reduced_net sub = materialize(net, r);
        // Every reduction is a conflict-free subnet of the original.
        for (pn::place_id p : sub.net.places()) {
            EXPECT_LE(sub.net.consumers(p).size(), 1u);
        }
        EXPECT_LE(sub.net.transition_count(), net.transition_count());
        for (pn::transition_id t : sub.net.transitions()) {
            EXPECT_TRUE(net.find_transition(sub.net.transition_name(t)).valid());
        }
    }
}

TEST(reduction, counts_and_equality)
{
    const petri_net net = nets::figure_5();
    const auto clusters = choice_clusters(net);
    const t_allocation a1{{net.find_transition("t2")}};
    const t_reduction r1 = reduce(net, clusters, a1);
    EXPECT_EQ(r1.kept_transition_count(), 6u);
    EXPECT_EQ(r1.kept_place_count(), 4u);
    EXPECT_TRUE(r1.same_subnet(reduce(net, clusters, a1)));
    const t_allocation a2{{net.find_transition("t3")}};
    EXPECT_FALSE(r1.same_subnet(reduce(net, clusters, a2)));
}

TEST(reduction, self_loop_state_is_not_an_independent_supply)
{
    // choice (a|b); a's branch reaches t which also holds a self-loop state
    // place.  Allocating b must remove t entirely — the self-loop must not
    // trigger the keep rule b.ii.
    pn::net_builder b("selfloop");
    const auto src = b.add_transition("src");
    const auto pc = b.add_place("pc");
    const auto a = b.add_transition("a");
    const auto alt = b.add_transition("alt");
    const auto pa = b.add_place("pa");
    const auto t = b.add_transition("t");
    const auto state = b.add_place("state", 1);
    b.add_arc(src, pc);
    b.add_arc(pc, a);
    b.add_arc(pc, alt);
    b.add_arc(a, pa);
    b.add_arc(pa, t);
    b.add_arc(state, t);
    b.add_arc(t, state);
    const petri_net net = std::move(b).build();

    const auto clusters = choice_clusters(net);
    const t_allocation choose_alt{{alt}};
    const t_reduction r = reduce(net, clusters, choose_alt);
    EXPECT_FALSE(r.keep_transition[t.index()]);
    EXPECT_FALSE(r.keep_place[pa.index()]);
    EXPECT_FALSE(r.keep_place[state.index()]);
    EXPECT_TRUE(quasi_static_schedule(net).schedulable);
}

TEST(reduction, materialize_validates_dimensions)
{
    const petri_net net = nets::figure_3a();
    t_reduction bogus;
    EXPECT_THROW((void)materialize(net, bogus), model_error);
}

TEST(schedulability, deadlock_detected_in_unmarked_cycle)
{
    // src -> p -> t, where t also needs a cycle place never marked: the
    // reduction is consistent (cycle balances) but simulation deadlocks.
    pn::net_builder b("cycle");
    const auto src = b.add_transition("src");
    const auto p = b.add_place("p");
    const auto t = b.add_transition("t");
    const auto u = b.add_transition("u");
    const auto ring_a = b.add_place("ring_a"); // t -> ring_a -> u
    const auto ring_b = b.add_place("ring_b"); // u -> ring_b -> t, unmarked!
    b.add_arc(src, p);
    b.add_arc(p, t);
    b.add_arc(t, ring_a);
    b.add_arc(ring_a, u);
    b.add_arc(u, ring_b);
    b.add_arc(ring_b, t);
    const petri_net net = std::move(b).build();

    const qss_result result = quasi_static_schedule(net);
    EXPECT_FALSE(result.schedulable);
    ASSERT_EQ(result.entries.size(), 1u);
    EXPECT_EQ(result.entries.front().analysis.failure, reduction_failure::deadlock);
    EXPECT_FALSE(result.entries.front().analysis.offending.empty());
    EXPECT_NE(result.diagnosis.find("deadlock"), std::string::npos);
}

TEST(schedulability, marked_cycle_schedules)
{
    // Same shape but the ring carries a token: schedulable.
    pn::net_builder b("cycle_ok");
    const auto src = b.add_transition("src");
    const auto p = b.add_place("p");
    const auto t = b.add_transition("t");
    const auto u = b.add_transition("u");
    const auto ring_a = b.add_place("ring_a");
    const auto ring_b = b.add_place("ring_b", 1);
    b.add_arc(src, p);
    b.add_arc(p, t);
    b.add_arc(t, ring_a);
    b.add_arc(ring_a, u);
    b.add_arc(u, ring_b);
    b.add_arc(ring_b, t);
    const petri_net net = std::move(b).build();
    const qss_result result = quasi_static_schedule(net);
    EXPECT_TRUE(result.schedulable);
}

TEST(schedulability, cycle_restores_marking_for_every_entry)
{
    for (const petri_net& net :
         {nets::figure_2(), nets::figure_3a(), nets::figure_4(), nets::figure_5()}) {
        const qss_result result = quasi_static_schedule(net);
        ASSERT_TRUE(result.schedulable) << net.name();
        for (const schedule_entry& entry : result.entries) {
            EXPECT_TRUE(pn::is_finite_complete_cycle(net, entry.analysis.cycle))
                << net.name();
            // The cycle realizes exactly its cycle vector.
            EXPECT_EQ(pn::firing_count_vector(net, entry.analysis.cycle),
                      entry.analysis.cycle_vector)
                << net.name();
        }
    }
}

TEST(scheduler, allocation_dedup_merges_moot_choices)
{
    // A choice inside a removed branch is moot: allocations differing only
    // there map to the same reduction.
    pn::net_builder b("nested");
    const auto src = b.add_transition("src");
    const auto pc1 = b.add_place("pc1");
    const auto a = b.add_transition("a");
    const auto c = b.add_transition("c");
    const auto pa = b.add_place("pa");
    const auto pc2 = b.add_place("pc2"); // second choice inside a's branch
    const auto d = b.add_transition("d");
    const auto e = b.add_transition("e");
    b.add_arc(src, pc1);
    b.add_arc(pc1, a);
    b.add_arc(pc1, c);
    b.add_arc(a, pa);
    b.add_arc(pa, b.add_transition("mid"));
    const auto mid = b.build_copy().find_transition("mid");
    b.add_arc(mid, pc2);
    b.add_arc(pc2, d);
    b.add_arc(pc2, e);
    const petri_net net = std::move(b).build();

    const qss_result result = quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    EXPECT_EQ(result.allocations_enumerated, 4u); // 2 x 2
    EXPECT_EQ(result.entries.size(), 3u);         // {a,d}, {a,e}, {c,*} merged
}

TEST(scheduler, options_cap_allocations)
{
    scheduler_options options;
    options.max_allocations = 1;
    EXPECT_THROW((void)quasi_static_schedule(nets::figure_3a(), options), error);
}

TEST(scheduler, records_traces_on_request)
{
    scheduler_options options;
    options.record_traces = true;
    const qss_result result = quasi_static_schedule(nets::figure_5(), options);
    ASSERT_TRUE(result.schedulable);
    bool some_trace = false;
    for (const schedule_entry& entry : result.entries) {
        some_trace = some_trace || !entry.reduction.trace.empty();
    }
    EXPECT_TRUE(some_trace);
}

TEST(task_partition, independent_sources_get_separate_tasks)
{
    // Two disjoint source->sink chains: two tasks.
    pn::net_builder b("two_inputs");
    const auto s1 = b.add_transition("in1");
    const auto s2 = b.add_transition("in2");
    const auto p1 = b.add_place("p1");
    const auto p2 = b.add_place("p2");
    const auto d1 = b.add_transition("out1");
    const auto d2 = b.add_transition("out2");
    b.add_arc(s1, p1);
    b.add_arc(p1, d1);
    b.add_arc(s2, p2);
    b.add_arc(p2, d2);
    const petri_net net = std::move(b).build();

    const qss_result result = quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const task_partition partition = partition_tasks(net, result);
    ASSERT_EQ(partition.tasks.size(), 2u);
    EXPECT_EQ(partition.tasks[0].name, "task_in1");
    EXPECT_EQ(partition.tasks[1].name, "task_in2");
    EXPECT_EQ(partition.tasks[0].members.size(), 2u);
    EXPECT_TRUE(partition.detached.empty());
}

TEST(task_partition, autonomous_net_gets_main_task)
{
    // A sourceless marked-graph ring still yields one runnable task.
    pn::net_builder b("auto");
    const auto p1 = b.add_place("p1", 1);
    const auto p2 = b.add_place("p2");
    const auto a = b.add_transition("a");
    const auto c = b.add_transition("c");
    b.add_arc(p1, a);
    b.add_arc(a, p2);
    b.add_arc(p2, c);
    b.add_arc(c, p1);
    const petri_net net = std::move(b).build();
    const qss_result result = quasi_static_schedule(net);
    ASSERT_TRUE(result.schedulable);
    const task_partition partition = partition_tasks(net, result);
    ASSERT_EQ(partition.tasks.size(), 1u);
    EXPECT_EQ(partition.tasks.front().name, "task_main");
    EXPECT_EQ(partition.tasks.front().members.size(), 2u);
}

TEST(task_partition, requires_schedulable_result)
{
    const petri_net net = nets::figure_3b();
    const qss_result result = quasi_static_schedule(net);
    ASSERT_FALSE(result.schedulable);
    EXPECT_THROW((void)partition_tasks(net, result), domain_error);
}

} // namespace
} // namespace fcqss::qss
